"""Property tests for the qubit-to-core partitioner."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.multicore.partition import (
    PartitionError,
    assignment_signature,
    interaction_graph,
    partition_qubits,
)
from repro.multicore.topology import CoreGraph

Q = [Qubit("q", i) for i in range(12)]


def _statements(pairs):
    """Turn ``[(a, b), ...]`` index pairs into a CNOT statement list
    (``a == b`` becomes a single-qubit gate)."""
    out = []
    for a, b in pairs:
        if a == b:
            out.append(Operation("H", (Q[a],)))
        else:
            out.append(Operation("CNOT", (Q[a], Q[b])))
    return out


pair_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=11),
    ),
    min_size=1,
    max_size=40,
)


class TestInvariants:
    @given(pairs=pair_lists, cores=st.integers(1, 5), seed=st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_every_qubit_assigned_exactly_once(self, pairs, cores, seed):
        stmts = _statements(pairs)
        order, _weights = interaction_graph(stmts)
        report = partition_qubits(
            stmts, CoreGraph.all_to_all(cores), seed=seed
        )
        assert set(report.assignment) == set(order)
        assert all(
            0 <= core < cores for core in report.assignment.values()
        )
        assert sum(report.occupancy) == len(order)

    @given(pairs=pair_lists, cores=st.integers(2, 4), seed=st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, pairs, cores, seed):
        stmts = _statements(pairs)
        order, _weights = interaction_graph(stmts)
        capacity = max(1, -(-len(order) // cores))  # tightest feasible
        report = partition_qubits(
            stmts, CoreGraph.line(cores), capacity=capacity, seed=seed
        )
        assert max(report.occupancy) <= capacity
        assert report.capacity == capacity

    @given(pairs=pair_lists, cores=st.integers(1, 5), seed=st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_same_seed_same_partition(self, pairs, cores, seed):
        stmts = _statements(pairs)
        graph = CoreGraph.mesh(cores)
        a = partition_qubits(stmts, graph, seed=seed)
        b = partition_qubits(stmts, graph, seed=seed)
        assert assignment_signature(a.assignment) == assignment_signature(
            b.assignment
        )
        assert a.cut_weight == b.cut_weight
        assert a.moves == b.moves

    @given(pairs=pair_lists, cores=st.integers(2, 5), seed=st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_topology_independent_objective(self, pairs, cores, seed):
        """The assignment must not depend on the interconnect shape —
        that is what makes makespans pointwise comparable across
        topologies."""
        stmts = _statements(pairs)
        signatures = {
            assignment_signature(
                partition_qubits(stmts, graph, seed=seed).assignment
            )
            for graph in (
                CoreGraph.line(cores),
                CoreGraph.ring(cores),
                CoreGraph.mesh(cores),
                CoreGraph.all_to_all(cores),
            )
        }
        assert len(signatures) == 1

    @given(pairs=pair_lists, cores=st.integers(1, 5), seed=st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_cut_weight_is_consistent(self, pairs, cores, seed):
        stmts = _statements(pairs)
        _order, weights = interaction_graph(stmts)
        report = partition_qubits(
            stmts, CoreGraph.all_to_all(cores), seed=seed
        )
        recomputed = sum(
            w
            for (qa, qb), w in weights.items()
            if report.assignment[qa] != report.assignment[qb]
        )
        assert report.cut_weight == recomputed
        assert report.total_weight == sum(weights.values())
        assert 0.0 <= report.cut_fraction <= 1.0


class TestEdgeCases:
    def test_single_core_fast_path(self):
        stmts = _statements([(0, 1), (1, 2), (3, 3)])
        report = partition_qubits(stmts, CoreGraph.line(1))
        assert set(report.assignment.values()) == {0}
        assert report.cut_weight == 0
        assert report.occupancy == (4,)

    def test_capacity_overflow_raises(self):
        stmts = _statements([(0, 1), (2, 3)])
        with pytest.raises(PartitionError):
            partition_qubits(
                stmts, CoreGraph.line(2), capacity=1
            )

    def test_unbounded_capacity(self):
        stmts = _statements([(0, 1)])
        report = partition_qubits(stmts, CoreGraph.line(2))
        assert math.isinf(report.capacity)

    def test_refinement_reduces_or_keeps_cut(self):
        stmts = _statements(
            [(0, 1)] * 5 + [(2, 3)] * 5 + [(0, 2)]
        )
        graph = CoreGraph.all_to_all(2)
        rough = partition_qubits(stmts, graph, refine=False, seed=0)
        refined = partition_qubits(stmts, graph, refine=True, seed=0)
        assert refined.cut_weight <= rough.cut_weight
        assert refined.refined and not rough.refined

    def test_interaction_graph_counts_repeats(self):
        stmts = _statements([(0, 1), (0, 1), (1, 0)])
        _order, weights = interaction_graph(stmts)
        assert weights == {(Q[0], Q[1]): 3}
