"""Tests for the ``serve``, ``loadtest``, and ``cache-stats`` CLI
verbs.

The ``loadtest --spawn`` path runs the daemon as a real ``python -m
repro serve`` subprocess (the CLI's own code path), so one test here
covers the serve verb's startup banner, signal wiring, and clean-exit
contract end to end.
"""

import json
import os

import pytest

from repro.cli import EXIT_USAGE, main
from repro.server.loadtest import SERVICE_SCHEMA, validate_service_payload
from repro.service import CompileService, write_stats_snapshot


@pytest.fixture(autouse=True)
def _src_on_subprocess_path(monkeypatch):
    """`loadtest --spawn` launches `python -m repro`; make sure the
    child resolves the in-repo package like the test process does."""
    parts = [p for p in (os.environ.get("PYTHONPATH"), "src") if p]
    monkeypatch.setenv("PYTHONPATH", os.pathsep.join(parts))


class TestServeValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--workers", "0"],
            ["serve", "--queue-depth", "0"],
            ["serve", "--rate", "-1"],
            ["serve", "--job-timeout", "0"],
        ],
    )
    def test_bad_options_are_usage_errors(self, argv, capsys):
        assert main(argv) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err


class TestServeInProcess:
    def test_serve_drains_on_sigterm_and_exits_zero(
        self, tmp_path, capsys
    ):
        """Run the verb in-process; a timer thread delivers SIGTERM to
        our own pid, exercising the signal wiring the subprocess tests
        can't measure."""
        import signal
        import threading

        timer = threading.Timer(
            2.0, lambda: os.kill(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            code = main(
                [
                    "serve", "--port", "0", "--workers", "1",
                    "--cache-dir", str(tmp_path),
                    "--stats-file", str(tmp_path / "stats.json"),
                ]
            )
        finally:
            timer.cancel()
        assert code == 0
        out = capsys.readouterr().out
        assert "listening on http://" in out
        assert "drained cleanly" in out
        assert (tmp_path / "stats.json").exists()


class TestLoadtestCommand:
    def test_spawn_round_trips_and_writes_report(
        self, tmp_path, capsys
    ):
        report = tmp_path / "BENCH_service.json"
        code = main(
            [
                "loadtest", "--spawn",
                "--storm", "12", "--distinct", "2",
                "--clients", "6", "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "-o", str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "requests ok" in out
        assert "coalesce rate" in out
        payload = json.loads(report.read_text())
        assert payload["schema"] == SERVICE_SCHEMA
        assert validate_service_payload(payload) == []
        assert payload["requests"]["errors"] == 0
        assert payload["coalesce"]["coalesce_rate"] >= 0.9
        assert payload["drain"]["exit_code"] == 0

    def test_term_during_load_verifies_drain(self, tmp_path, capsys):
        report = tmp_path / "BENCH_service.json"
        code = main(
            [
                "loadtest", "--spawn", "--term-during-load",
                "--storm", "12", "--distinct", "2",
                "--clients", "6", "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "-o", str(report),
                "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        drain = payload["drain"]
        assert drain["exit_code"] == 0
        assert drain["dropped"] == 0
        assert drain["completed"] >= 1

    def test_unknown_benchmark_is_usage_error(self, capsys):
        code = main(["loadtest", "--benchmark", "NotABench"])
        assert code == EXIT_USAGE
        assert "unknown benchmark" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["loadtest", "--clients", "0"],
            ["loadtest", "--storm", "0"],
            ["loadtest", "--rounds", "0"],
            ["loadtest", "--distinct", "-1"],
        ],
    )
    def test_bad_counts_are_usage_errors(self, argv, capsys):
        assert main(argv) == EXIT_USAGE

    def test_unreachable_server_exits_nonzero(self, tmp_path, capsys):
        code = main(
            [
                "loadtest", "--port", "1",  # nothing listens there
                "--storm", "2", "--distinct", "0", "--clients", "2",
                "--timeout", "2",
                "-o", "",
            ]
        )
        assert code == 1
        assert "errors" in capsys.readouterr().out


class TestCacheStatsCommand:
    def test_missing_store_reports_cleanly(self, tmp_path, capsys):
        code = main(
            ["cache-stats", "--cache-dir", str(tmp_path / "nope")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(missing)" in out
        assert "artifacts:         0" in out

    def test_text_report_with_artifacts_and_snapshot(
        self, tmp_path, capsys
    ):
        from repro.arch.machine import MultiSIMD
        from repro.core import ProgramBuilder

        pb = ProgramBuilder()
        mod = pb.module("main")
        q = mod.register("q", 2)
        mod.cnot(q[0], q[1])
        service = CompileService(cache_dir=tmp_path)
        service.lookup(pb.build("main"), MultiSIMD(k=2))
        write_stats_snapshot(
            tmp_path,
            service.stats,
            extra={
                "server": {
                    "jobs": {"submitted": 3},
                    "coalesce": {
                        "coalesced": 2,
                        "cache_served": 1,
                        "amortized_rate": 0.75,
                    },
                }
            },
        )
        code = main(["cache-stats", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "artifacts:         1" in out
        assert "hit rate" in out
        assert "jobs submitted   3" in out
        assert "amortized rate   75.0%" in out

    def test_json_format(self, tmp_path, capsys):
        code = main(
            [
                "cache-stats",
                "--cache-dir", str(tmp_path),
                "--format", "json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["artifacts"] == 0
        assert doc["exists"] is True  # tmp_path itself exists

    def test_respects_repro_cache_dir_env(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["cache-stats", "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["root"] == str(tmp_path)
