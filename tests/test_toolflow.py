"""Integration tests for the end-to-end toolflow."""

import math

import pytest

from repro.arch.machine import MultiSIMD
from repro.toolflow import (
    SchedulerConfig,
    compile_and_schedule,
)


class TestSchedulerConfig:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig("magic")

    def test_defaults_match_paper(self):
        cfg = SchedulerConfig()
        assert cfg.algorithm == "lpfs"
        assert cfg.lpfs_l == 1
        assert cfg.lpfs_simd and cfg.lpfs_refill


class TestEndToEnd:
    def compile(self, prog, **kw):
        kw.setdefault("machine", MultiSIMD(k=2))
        return compile_and_schedule(prog, **kw)

    def test_two_toffoli_pipeline(self, two_toffoli_program):
        result = self.compile(two_toffoli_program)
        assert result.total_gates == 30  # 2 x 15-gate networks
        assert result.critical_path <= result.schedule_length
        assert result.schedule_length < 30  # some parallelism found
        assert result.runtime >= result.schedule_length

    def test_stored_schedule_is_valid(self, two_toffoli_program):
        result = self.compile(two_toffoli_program)
        sched = result.schedules[result.program.entry]
        sched.validate()

    def test_rcp_and_lpfs_both_work(self, two_toffoli_program):
        for alg in ("rcp", "lpfs"):
            result = self.compile(
                two_toffoli_program, scheduler=SchedulerConfig(alg)
            )
            assert result.scheduler.algorithm == alg
            assert result.parallel_speedup >= 1.0

    def test_modular_vs_flattened(self, modular_toffoli_program):
        """Figure 4: flattening must not be slower than blackbox
        scheduling."""
        flat = self.compile(modular_toffoli_program, fth=10 ** 9)
        boxed = self.compile(modular_toffoli_program, fth=0)
        assert flat.schedule_length <= boxed.schedule_length

    def test_speedups_bounded_by_theory(self, two_toffoli_program):
        result = self.compile(two_toffoli_program)
        assert result.parallel_speedup <= result.cp_speedup + 1e-9
        # Comm-aware speedup can't beat the zero-communication bound.
        assert result.comm_aware_speedup <= 5 * result.cp_speedup + 1e-9

    def test_local_memory_never_hurts(self, two_toffoli_program):
        base = self.compile(two_toffoli_program)
        with_mem = self.compile(
            two_toffoli_program,
            machine=MultiSIMD(k=2, local_memory=math.inf),
        )
        assert with_mem.runtime <= base.runtime

    def test_naive_runtime_property(self, two_toffoli_program):
        result = self.compile(two_toffoli_program)
        assert result.naive_runtime == 5 * result.total_gates
        assert result.runtime <= result.naive_runtime

    def test_decompose_disabled_keeps_gates(self, two_toffoli_program):
        result = self.compile(two_toffoli_program, decompose=False)
        assert result.total_gates == 2  # raw Toffolis

    def test_wider_machine_never_longer(self, two_toffoli_program):
        lengths = []
        for k in (1, 2, 4):
            result = self.compile(
                two_toffoli_program, machine=MultiSIMD(k=k)
            )
            lengths.append(result.schedule_length)
        assert lengths[0] >= lengths[1] >= lengths[2]

    def test_entry_profile_has_all_widths(self, two_toffoli_program):
        result = self.compile(
            two_toffoli_program, machine=MultiSIMD(k=4)
        )
        assert set(result.entry_profile.length) == {1, 2, 3, 4}

    def test_large_k_uses_sparse_widths(self, two_toffoli_program):
        result = self.compile(
            two_toffoli_program, machine=MultiSIMD(k=16)
        )
        assert set(result.entry_profile.length) == {1, 2, 4, 8, 16}

    def test_flattened_percent_reported(self, modular_toffoli_program):
        result = self.compile(modular_toffoli_program, fth=10 ** 9)
        assert result.flattened_percent == 100.0


class TestHierarchicalComposition:
    def test_iterated_calls_scale_linearly(self):
        from repro.core import ProgramBuilder

        def build(iters):
            pb = ProgramBuilder()
            sub = pb.module("sub")
            p = sub.param_register("p", 1)
            sub.t(p[0]).h(p[0]).t(p[0])
            main = pb.module("main")
            q = main.register("q", 1)
            main.call("sub", [q[0]], iterations=iters)
            return pb.build("main")

        r1 = compile_and_schedule(
            build(10), MultiSIMD(k=2), decompose=False, fth=0
        )
        r2 = compile_and_schedule(
            build(1000), MultiSIMD(k=2), decompose=False, fth=0
        )
        assert r2.total_gates == 100 * r1.total_gates
        # Runtime scales with iterations (hierarchical, not unrolled).
        assert r2.schedule_length == pytest.approx(
            100 * r1.schedule_length, rel=0.01
        )

    def test_paper_scale_program_compiles_fast(self):
        """A 10^9-gate program must compile via hierarchy without
        unrolling."""
        from repro.core import ProgramBuilder

        pb = ProgramBuilder()
        inner = pb.module("inner")
        p = inner.param_register("p", 1)
        for _ in range(10):
            inner.t(p[0])
        mid = pb.module("mid")
        mp = mid.param_register("p", 1)
        mid.call("inner", [mp[0]], iterations=10 ** 4)
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("mid", [q[0]], iterations=10 ** 4)
        result = compile_and_schedule(
            pb.build("main"), MultiSIMD(k=2), decompose=False, fth=100
        )
        assert result.total_gates == 10 ** 9
        assert result.runtime > 10 ** 9


class TestStrictMode:
    def _machine(self):
        return MultiSIMD(k=2)

    def test_clean_program_compiles_with_diagnostics(
        self, two_toffoli_program
    ):
        result = compile_and_schedule(
            two_toffoli_program, self._machine(), strict=True
        )
        assert isinstance(result.diagnostics, tuple)
        assert not any(
            d.severity.name == "ERROR" for d in result.diagnostics
        )

    def test_default_mode_collects_nothing(self, two_toffoli_program):
        result = compile_and_schedule(
            two_toffoli_program, self._machine()
        )
        assert result.diagnostics == ()

    def test_input_stage_errors_raise(self):
        from repro.analysis import AnalysisError
        from repro.core import ProgramBuilder

        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.prep_z(q[0]).meas_z(q[0]).h(q[0])  # use after measure
        with pytest.raises(AnalysisError) as ei:
            compile_and_schedule(
                pb.build("main"), self._machine(), strict=True
            )
        exc = ei.value
        assert exc.stage == "input"
        assert "QL006" in {d.code for d in exc.diagnostics}

    def test_diagnostics_are_canonically_sorted(
        self, two_toffoli_program
    ):
        from repro.analysis import DiagnosticSet

        result = compile_and_schedule(
            two_toffoli_program, self._machine(), strict=True
        )
        canonical = DiagnosticSet(result.diagnostics).sorted()
        assert list(result.diagnostics) == canonical

    def test_kept_schedules_are_audited(self, two_toffoli_program):
        from repro.analysis import audit_schedule

        result = compile_and_schedule(
            two_toffoli_program, self._machine(), strict=True
        )
        for name, sched in result.schedules.items():
            assert not audit_schedule(
                sched, result.machine, module=name
            ).has_errors
