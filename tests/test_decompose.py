"""Tests for the decomposition pass: correctness is checked against the
statevector simulator (exact unitary equivalence up to global phase),
and structure (lengths, determinism, primitive-only output) is checked
directly."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import ProgramBuilder
from repro.core.gates import QASM_PRIMITIVES
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.passes.decompose import (
    DecomposeConfig,
    RotationSynthesizer,
    decompose_operation,
    decompose_program,
    toffoli_network,
)
from repro.sim.statevector import circuit_unitary
from repro.sim.verify import equivalent_up_to_global_phase

Q = [Qubit("q", i) for i in range(4)]
SYNTH = RotationSynthesizer()


def assert_exact(op, qubits):
    lowered = decompose_operation(op, SYNTH)
    assert all(o.gate in QASM_PRIMITIVES for o in lowered)
    u = circuit_unitary(lowered, qubits)
    v = circuit_unitary([op], qubits)
    assert equivalent_up_to_global_phase(u, v), f"{op} decomposition wrong"


class TestExactDecompositions:
    def test_toffoli_network_is_15_clifford_t_gates(self):
        net = toffoli_network(Q[0], Q[1], Q[2])
        assert len(net) == 15
        assert all(op.gate in QASM_PRIMITIVES for op in net)
        # T-count of the standard network is 7.
        t_count = sum(1 for op in net if op.gate in ("T", "Tdag"))
        assert t_count == 7

    def test_toffoli_unitary(self):
        assert_exact(Operation("Toffoli", (Q[0], Q[1], Q[2])), Q[:3])

    def test_fredkin_unitary(self):
        assert_exact(Operation("Fredkin", (Q[0], Q[1], Q[2])), Q[:3])

    def test_ccz_unitary(self):
        assert_exact(Operation("CCZ", (Q[0], Q[1], Q[2])), Q[:3])

    def test_cz_unitary(self):
        assert_exact(Operation("CZ", (Q[0], Q[1])), Q[:2])

    def test_swap_unitary(self):
        assert_exact(Operation("SWAP", (Q[0], Q[1])), Q[:2])

    @pytest.mark.parametrize("m", range(8))
    @pytest.mark.parametrize("gate", ["Rz", "Rx", "Ry"])
    def test_pi4_multiples_exact(self, gate, m):
        assert_exact(Operation(gate, (Q[0],), m * math.pi / 4), Q[:1])

    @pytest.mark.parametrize("m", [0, 2, 4, 6])
    def test_crz_even_pi4_exact(self, m):
        # CRz halves the angle; exact whenever the half is a pi/4
        # multiple.
        assert_exact(Operation("CRz", (Q[0], Q[1]), m * math.pi / 4), Q[:2])

    def test_crx_pi_exact(self):
        assert_exact(Operation("CRx", (Q[0], Q[1]), math.pi), Q[:2])

    def test_primitives_pass_through(self):
        op = Operation("CNOT", (Q[0], Q[1]))
        assert decompose_operation(op, SYNTH) == [op]

    def test_negative_angle_normalised(self):
        assert_exact(Operation("Rz", (Q[0],), -math.pi / 2), Q[:1])


class TestRotationSynthesizer:
    def test_exact_sequences_for_pi4_multiples(self):
        assert SYNTH.rz_sequence(0.0) == []
        assert SYNTH.rz_sequence(math.pi / 4) == ["T"]
        assert SYNTH.rz_sequence(math.pi / 2) == ["S"]
        assert SYNTH.rz_sequence(math.pi) == ["Z"]
        assert SYNTH.rz_sequence(-math.pi / 4) == ["Tdag"]
        assert SYNTH.rz_sequence(2 * math.pi) == []

    def test_generic_angle_long_serial_string(self):
        seq = SYNTH.rz_sequence(0.3)
        assert len(seq) == SYNTH.approx_length
        assert len(seq) > 50  # long serial chain (Table 2 behaviour)

    def test_determinism_per_angle(self):
        assert SYNTH.rz_sequence(0.3) == SYNTH.rz_sequence(0.3)

    def test_different_angles_differ(self):
        assert SYNTH.rz_sequence(0.3) != SYNTH.rz_sequence(0.4)

    def test_length_scales_with_precision(self):
        coarse = RotationSynthesizer(epsilon=1e-2)
        fine = RotationSynthesizer(epsilon=1e-12)
        assert fine.approx_length > coarse.approx_length
        # log-scaling: ratio of lengths ~ ratio of log(1/eps).
        assert fine.approx_length < 10 * coarse.approx_length

    def test_synthesize_rz_targets_one_qubit(self):
        ops = SYNTH.synthesize_rz(Q[0], 0.7)
        assert all(op.qubits == (Q[0],) for op in ops)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            RotationSynthesizer(epsilon=0.0)
        with pytest.raises(ValueError):
            RotationSynthesizer(epsilon=2.0)


class TestProgramDecomposition:
    def build_program(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 3)
        sub.toffoli(p[0], p[1], p[2])
        main = pb.module("main")
        q = main.register("q", 3)
        main.rz(q[0], 0.3)
        main.call("sub", list(q))
        return pb.build("main")

    def test_all_modules_lowered(self):
        prog = decompose_program(self.build_program())
        for mod in prog:
            for op in mod.operations():
                assert op.gate in QASM_PRIMITIVES

    def test_calls_preserved(self):
        prog = decompose_program(self.build_program())
        assert [c.callee for c in prog.entry_module.calls()] == ["sub"]

    def test_config_controls_length(self):
        prog_coarse = decompose_program(
            self.build_program(), DecomposeConfig(epsilon=1e-2)
        )
        prog_fine = decompose_program(
            self.build_program(), DecomposeConfig(epsilon=1e-12)
        )
        assert (
            prog_fine.entry_module.direct_gate_count
            > prog_coarse.entry_module.direct_gate_count
        )

    def test_module_semantics_preserved(self):
        # The leaf 'sub' (a Toffoli) must keep its unitary.
        prog = self.build_program()
        lowered = decompose_program(prog)
        orig = prog.module("sub")
        new = lowered.module("sub")
        u = circuit_unitary(list(orig.operations()), list(orig.params))
        v = circuit_unitary(list(new.operations()), list(new.params))
        assert equivalent_up_to_global_phase(u, v)


@st.composite
def pi4_angles(draw):
    return draw(st.integers(-8, 8)) * math.pi / 4


class TestDecomposeProperties:
    @given(pi4_angles())
    @settings(max_examples=20, deadline=None)
    def test_rz_exactness_property(self, angle):
        assert_exact(Operation("Rz", (Q[0],), angle), Q[:1])

    @given(st.floats(0.01, 6.2, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_output_always_primitive(self, angle):
        lowered = decompose_operation(
            Operation("Rz", (Q[0],), angle), SYNTH
        )
        assert lowered, "decomposition must be non-empty"
        assert all(op.gate in QASM_PRIMITIVES for op in lowered)
