"""Differential battery: the reversible simulator vs the statevector
simulator on computational-basis inputs.

Random X/CNOT/Toffoli (and SWAP/Fredkin) circuits over up to 10 qubits
run through both engines; the claim under test is that on basis states
the bit-packed permutation semantics and the full quantum semantics
are *verbatim* identical. Small registers sweep every basis input;
wider ones sample (the statevector side is the cost bound — the
reversible side is exact at any width)."""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sim.reversible import (
    SlicedState,
    run_reversible,
    truth_table_reversible,
)
from repro.sim.statevector import Simulator
from repro.sim.verify import truth_table

MAX_QUBITS = 10
QUBITS = [Qubit("q", i) for i in range(MAX_QUBITS)]
GATES_BY_ARITY = {
    1: ("X", "Y"),
    2: ("CNOT", "SWAP"),
    3: ("Toffoli", "Fredkin"),
}
EXHAUSTIVE_QUBITS = 6  # sweep all basis inputs up to here, sample above


@st.composite
def circuits(draw, max_ops: int = 24):
    """A random reversible circuit and the register it acts on."""
    n = draw(st.integers(min_value=1, max_value=MAX_QUBITS))
    count = draw(st.integers(min_value=1, max_value=max_ops))
    ops: List[Operation] = []
    for _ in range(count):
        arity = draw(st.integers(min_value=1, max_value=min(3, n)))
        gate = draw(st.sampled_from(GATES_BY_ARITY[arity]))
        idxs = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        ops.append(Operation(gate, tuple(QUBITS[i] for i in idxs)))
    return QUBITS[:n], ops


def basis_inputs(draw, n: int) -> List[int]:
    if n <= EXHAUSTIVE_QUBITS:
        return list(range(1 << n))
    return draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << n) - 1),
            min_size=4,
            max_size=8,
            unique=True,
        )
    )


@st.composite
def circuits_with_inputs(draw):
    qubits, ops = draw(circuits())
    return qubits, ops, basis_inputs(draw, len(qubits))


@settings(max_examples=60, deadline=None)
@given(case=circuits_with_inputs())
def test_single_input_engine_matches_statevector(case):
    """ReversibleSimulator == statevector Simulator on basis states.

    Y is permutation-equivalent to X (the i phase is global per basis
    state), so ``basis_state`` agrees even though the amplitudes carry
    a phase — exactly the subset contract the reversible engine makes.
    """
    qubits, ops, values = case
    for value in values:
        sv = Simulator(qubits)
        sv.reset(value)
        sv.run(ops)
        assert run_reversible(ops, qubits, value) == sv.basis_state()


@settings(max_examples=40, deadline=None)
@given(case=circuits_with_inputs())
def test_sliced_lanes_match_statevector(case):
    """Every lane of a batched sweep equals an independent statevector
    run — the bit-transposed representation introduces no cross-lane
    interference."""
    qubits, ops, values = case
    state = SlicedState(qubits, len(values))
    state.load(qubits, values)
    state.run(iter(ops))
    for lane, value in enumerate(values):
        sv = Simulator(qubits)
        sv.reset(value)
        sv.run(ops)
        assert state.extract(lane, qubits) == sv.basis_state()


@settings(max_examples=25, deadline=None)
@given(case=circuits(max_ops=16))
def test_truth_tables_identical_on_small_registers(case):
    qubits, ops = case
    if len(qubits) > EXHAUSTIVE_QUBITS:
        qubits = qubits[:EXHAUSTIVE_QUBITS]
        ops = [
            op
            for op in ops
            if all(q in set(qubits) for q in op.qubits)
        ]
    want = truth_table(ops, qubits, qubits)
    assert truth_table_reversible(ops, qubits, qubits) == want
