"""Tests for fault injection: the seeded-determinism contract, the
scoped RNG streams, and the variance envelope across seeds."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.machine import MultiSIMD
from repro.arch.qecc import ConcatenatedCode
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.engine import (
    EngineConfig,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultLog,
    run_schedule,
)
from repro.sched.comm import derive_movement
from repro.sched.rcp import schedule_rcp

Q = [Qubit("q", i) for i in range(8)]


def busy_schedule(machine, n=24):
    ops = []
    for i in range(n):
        a, b = Q[i % 6], Q[(i + 3) % 6]
        ops.append(
            Operation("CNOT", (a, b))
            if i % 3 == 0
            else Operation("H" if i % 2 else "T", (a,))
        )
    sched = schedule_rcp(DependenceDAG(ops), k=machine.k)
    derive_movement(sched, machine)
    return sched


FAULTY = FaultConfig(
    epr_failure_prob=0.3,
    region_failure_prob=0.05,
    region_downtime=4,
    gate_error_rate=0.01,
)


class TestFaultConfig:
    def test_disabled_by_default(self):
        assert not FaultConfig().enabled

    def test_enabled_with_any_knob(self):
        assert FaultConfig(epr_failure_prob=0.1).enabled
        assert FaultConfig(region_failure_prob=0.1).enabled
        assert FaultConfig(gate_error_rate=0.1).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epr_failure_prob": 1.0},
            {"epr_failure_prob": -0.1},
            {"region_failure_prob": 1.5},
            {"gate_error_rate": 1.0},
            {"region_downtime": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_from_qecc_uses_logical_error(self):
        code = ConcatenatedCode()
        config = FaultConfig.from_qecc(2, physical_error=1e-4)
        assert config.gate_error_rate == code.logical_error(2, 1e-4)
        assert config.enabled

    def test_to_dict_round_trips_values(self):
        doc = FAULTY.to_dict()
        assert FaultConfig(**doc) == FAULTY


class TestInjectorDeterminism:
    def test_same_seed_same_stream(self):
        a = FaultInjector(FAULTY, seed=7, scope="mod")
        b = FaultInjector(FAULTY, seed=7, scope="mod")
        assert [a.epr_generation_attempts(5) for _ in range(20)] == [
            b.epr_generation_attempts(5) for _ in range(20)
        ]

    def test_scopes_are_independent(self):
        a = FaultInjector(FAULTY, seed=7, scope="alpha")
        b = FaultInjector(FAULTY, seed=7, scope="beta")
        draws_a = [a.epr_generation_attempts(5) for _ in range(50)]
        draws_b = [b.epr_generation_attempts(5) for _ in range(50)]
        assert draws_a != draws_b

    def test_string_seeding_is_hashseed_independent(self):
        # CPython seeds str arguments via SHA-512, so the derived
        # stream is a pure function of (seed, scope); pin the first
        # draw to catch any regression to hash()-based seeding.
        injector = FaultInjector(FAULTY, seed=0, scope="")
        first = injector._rng.random()
        again = FaultInjector(FAULTY, seed=0, scope="")
        assert first == again._rng.random()

    @given(pairs=st.integers(0, 50), seed=st.integers(0, 2**32))
    @settings(max_examples=50, deadline=None)
    def test_attempts_at_least_pairs(self, pairs, seed):
        injector = FaultInjector(FAULTY, seed=seed, scope="s")
        assert injector.epr_generation_attempts(pairs) >= pairs

    def test_no_failures_means_no_retries(self):
        injector = FaultInjector(FaultConfig(), seed=1, scope="s")
        assert injector.epr_generation_attempts(10) == 10
        assert injector.sample_gate_errors(10) == 0
        assert not injector.region_goes_down(0)

    @given(ops=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_gate_errors_bounded_by_ops(self, ops):
        injector = FaultInjector(FAULTY, seed=3, scope="s")
        assert 0 <= injector.sample_gate_errors(ops) <= ops


class TestFaultLog:
    def test_record_dispatch(self):
        log = FaultLog(seed=1, scope="m")
        log.record(FaultEvent("epr_regen", 0, 0, count=3))
        log.record(FaultEvent("region_down", 5, 1, region=0))
        log.record(FaultEvent("gate_error", 9, 2, count=2, region=1))
        assert log.epr_regenerations == 3
        assert log.region_down_events == 1
        assert log.gate_errors == 2
        assert log.total_events == 3

    def test_merge(self):
        a = FaultLog()
        b = FaultLog()
        a.record(FaultEvent("epr_regen", 0, 0, count=2))
        b.record(FaultEvent("gate_error", 1, 1))
        b.expected_gate_errors = 0.5
        a.merge(b)
        assert a.total_events == 2
        assert a.epr_regenerations == 2
        assert a.gate_errors == 1
        assert a.expected_gate_errors == 0.5

    def test_to_dict_json_safe(self):
        log = FaultLog(seed=1, scope="m")
        log.record(
            FaultEvent("region_down", 4, 2, region=1, detail="x")
        )
        doc = json.loads(json.dumps(log.to_dict()))
        assert doc["events"][0]["kind"] == "region_down"
        assert doc["events"][0]["region"] == 1


class TestRunDeterminism:
    """Same seed => bit-identical FaultLog, trace and runtime."""

    def test_identical_runs(self):
        machine = MultiSIMD(k=2)
        sched = busy_schedule(machine)
        config = EngineConfig(epr_rate=0.5, faults=FAULTY, seed=42)
        a = run_schedule(sched, machine, config, scope="mod")
        b = run_schedule(sched, machine, config, scope="mod")
        assert a.realized_runtime == b.realized_runtime
        assert a.stalls.to_dict() == b.stalls.to_dict()
        assert json.dumps(a.fault_log.to_dict()) == json.dumps(
            b.fault_log.to_dict()
        )
        assert [e.to_dict() for e in a.trace.events] == [
            e.to_dict() for e in b.trace.events
        ]

    def test_different_seeds_differ(self):
        machine = MultiSIMD(k=2)
        sched = busy_schedule(machine, n=36)
        runs = [
            run_schedule(
                sched,
                machine,
                EngineConfig(epr_rate=0.5, faults=FAULTY, seed=s),
                scope="mod",
            )
            for s in range(8)
        ]
        logs = {json.dumps(r.fault_log.to_dict()) for r in runs}
        assert len(logs) > 1

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_variance_envelope(self, seed):
        """Documented envelope: a faulty run never beats the analytic
        runtime, and realized == analytic + stalls exactly."""
        machine = MultiSIMD(k=2)
        sched = busy_schedule(machine)
        run = run_schedule(
            sched,
            machine,
            EngineConfig(epr_rate=0.5, faults=FAULTY, seed=seed),
            scope="mod",
        )
        assert run.realized_runtime >= run.analytic_runtime
        assert (
            run.realized_runtime
            == run.analytic_runtime + run.stalls.total
        )
        assert (
            run.stalls.fault
            >= run.fault_log.region_downtime_cycles
        )

    def test_expected_gate_errors_accumulates(self):
        machine = MultiSIMD(k=2)
        sched = busy_schedule(machine)
        run = run_schedule(
            sched,
            machine,
            EngineConfig(faults=FaultConfig(gate_error_rate=0.01)),
            scope="mod",
        )
        assert run.fault_log.expected_gate_errors == pytest.approx(
            0.01 * sched.op_count
        )

    def test_faults_off_yields_empty_log(self):
        machine = MultiSIMD(k=2)
        sched = busy_schedule(machine)
        run = run_schedule(sched, machine, scope="mod")
        assert run.fault_log.total_events == 0
        assert run.fault_log.expected_gate_errors == 0.0
