"""Tests for the span-timer instrumentation layer."""

import time

from repro.core.dag import DependenceDAG
from repro.instrument import (
    SpanRecorder,
    record_spans,
    span,
    spanned,
)
from repro.sched.lpfs import schedule_lpfs


class TestSpanPrimitives:
    def test_noop_when_no_recorder_active(self):
        # Must not raise and must not record anywhere.
        with span("anything"):
            pass

    def test_records_name_calls_and_seconds(self):
        with record_spans() as rec:
            with span("work"):
                time.sleep(0.002)
            with span("work"):
                pass
        stats = rec.to_dict()
        assert set(stats) == {"work"}
        assert stats["work"]["calls"] == 2
        assert stats["work"]["seconds"] >= 0.002

    def test_nested_spans_record_independently(self):
        with record_spans() as rec:
            with span("outer"):
                with span("inner"):
                    pass
        assert set(rec.to_dict()) == {"outer", "inner"}

    def test_exception_still_records(self):
        with record_spans() as rec:
            try:
                with span("boom"):
                    raise RuntimeError("x")
            except RuntimeError:
                pass
        assert rec.to_dict()["boom"]["calls"] == 1

    def test_spanned_decorator(self):
        @spanned("decorated")
        def f(x):
            return x + 1

        with record_spans() as rec:
            assert f(1) == 2
        assert rec.to_dict()["decorated"]["calls"] == 1

    def test_total_prefix(self):
        rec = SpanRecorder()
        rec.add("pass:a", 1.0)
        rec.add("pass:b", 2.0)
        rec.add("schedule:lpfs", 4.0)
        assert rec.total("pass:") == 3.0
        assert rec.total() == 7.0


class TestToolflowSpans:
    def test_scheduler_emits_span(self, two_toffoli_program):
        mod = two_toffoli_program.module("main")
        dag = DependenceDAG(list(mod.body))
        with record_spans() as rec:
            schedule_lpfs(dag, k=2)
        assert rec.to_dict()["schedule:lpfs"]["calls"] == 1

    def test_compile_emits_stage_spans(self, two_toffoli_program):
        from repro.arch.machine import MultiSIMD
        from repro.toolflow import compile_and_schedule

        with record_spans() as rec:
            compile_and_schedule(two_toffoli_program, MultiSIMD(k=2))
        names = set(rec.to_dict())
        assert "pass:decompose" in names
        assert "pass:flatten" in names
        assert "toolflow:schedule" in names
        assert "toolflow:estimate" in names
        assert "comm:derive_movement" in names
        assert "schedule:lpfs" in names


class TestSpanListeners:
    def test_listener_fires_per_span_close(self):
        from repro.instrument import subscribe_spans

        seen = []
        with subscribe_spans(lambda name, s: seen.append((name, s))):
            with span("outer"):
                with span("inner"):
                    pass
        assert [name for name, _ in seen] == ["inner", "outer"]
        assert all(s >= 0 for _, s in seen)

    def test_listener_unsubscribed_after_scope(self):
        from repro.instrument import subscribe_spans

        seen = []
        with subscribe_spans(lambda name, s: seen.append(name)):
            with span("during"):
                pass
        with span("after"):
            pass
        assert seen == ["during"]

    def test_listener_coexists_with_recorder(self):
        from repro.instrument import subscribe_spans

        seen = []
        with subscribe_spans(lambda name, s: seen.append(name)):
            with record_spans() as rec:
                with span("both"):
                    pass
        assert seen == ["both"]
        assert rec.to_dict()["both"]["calls"] == 1

    def test_broken_listener_never_breaks_the_span(self):
        from repro.instrument import subscribe_spans

        def explode(name, seconds):
            raise RuntimeError("pipe gone")

        with subscribe_spans(explode):
            with record_spans() as rec:
                with span("guarded"):
                    pass
        assert rec.to_dict()["guarded"]["calls"] == 1

    def test_add_remove_listener_direct(self):
        from repro.instrument import (
            add_span_listener,
            remove_span_listener,
        )

        seen = []
        fn = lambda name, s: seen.append(name)  # noqa: E731
        add_span_listener(fn)
        try:
            with span("once"):
                pass
        finally:
            remove_span_listener(fn)
        remove_span_listener(fn)  # absent: no-op
        with span("twice"):
            pass
        assert seen == ["once"]
