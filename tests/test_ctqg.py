"""Tests for the CTQG reversible-arithmetic library.

Every block is verified bit-exactly against its classical semantics via
the reversible simulator (``tests/test_reversible_differential.py``
proves it verbatim-identical to the statevector simulator on basis
states), including ancilla cleanliness (scratch qubits must return to
|0>). Widths 2-8 are swept exhaustively in
``tests/test_ctqg_exhaustive.py``; this file covers the per-block
semantics and error contracts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.qubits import AncillaAllocator, Qubit
from repro.passes import ctqg
from repro.sim.reversible import ReversibleSimulator
from repro.sim.verify import truth_table


def reg(name, n):
    return [Qubit(name, i) for i in range(n)]


def run_classical(ops, assignment, all_qubits):
    """Run a reversible circuit on a basis state; return final state as
    a dict qubit -> bit."""
    sim = ReversibleSimulator(all_qubits)
    sim.set_bits(assignment)
    sim.run(ops)
    state = sim.basis_state()
    return {q: (state >> sim.index[q]) & 1 for q in all_qubits}


def read(bits, qubits):
    return sum(bits[q] << i for i, q in enumerate(qubits))


class TestBitwise:
    def test_xor_into(self):
        a, b = reg("a", 3), reg("b", 3)
        for av in range(8):
            for bv in range(8):
                bits = run_classical(
                    ctqg.xor_into(a, b),
                    {**{q: (av >> i) & 1 for i, q in enumerate(a)},
                     **{q: (bv >> i) & 1 for i, q in enumerate(b)}},
                    a + b,
                )
                assert read(bits, b) == av ^ bv
                assert read(bits, a) == av

    def test_xor_width_mismatch(self):
        with pytest.raises(ValueError):
            ctqg.xor_into(reg("a", 2), reg("b", 3))

    def test_xor_overlap_rejected(self):
        a = reg("a", 2)
        with pytest.raises(ValueError, match="overlap"):
            ctqg.xor_into(a, a)

    def test_and_into(self):
        a, b, d = reg("a", 2), reg("b", 2), reg("d", 2)
        for av in range(4):
            for bv in range(4):
                bits = run_classical(
                    ctqg.and_into(a, b, d),
                    {**{q: (av >> i) & 1 for i, q in enumerate(a)},
                     **{q: (bv >> i) & 1 for i, q in enumerate(b)}},
                    a + b + d,
                )
                assert read(bits, d) == av & bv

    def test_not_all(self):
        a = reg("a", 3)
        bits = run_classical(ctqg.not_all(a), {a[1]: 1}, a)
        assert read(bits, a) == 0b101

    def test_rotl(self):
        a = reg("a", 4)
        assert ctqg.rotl(a, 0) == a
        assert ctqg.rotl(a, 1) == [a[3], a[0], a[1], a[2]]
        assert ctqg.rotl(a, 4) == a
        assert ctqg.rotl(a, 5) == ctqg.rotl(a, 1)
        assert ctqg.rotl([], 3) == []

    def test_load_const(self):
        a = reg("a", 4)
        bits = run_classical(ctqg.load_const(0b1010, a), {}, a)
        assert read(bits, a) == 0b1010

    def test_load_const_out_of_range(self):
        with pytest.raises(ValueError):
            ctqg.load_const(16, reg("a", 4))


class TestSha1Blocks:
    @pytest.mark.parametrize(
        "fn,ref",
        [
            (ctqg.ch_into, lambda x, y, z: (x & y) ^ (~x & z)),
            (ctqg.maj_into, lambda x, y, z: (x & y) ^ (x & z) ^ (y & z)),
            (ctqg.parity_into, lambda x, y, z: x ^ y ^ z),
        ],
    )
    def test_block(self, fn, ref):
        x, y, z, d = (reg(n, 2) for n in "xyzd")
        mask = 3
        tbl = truth_table(fn(x, y, z, d), x + y + z, x + y + z + d,
                          backend="reversible")
        for xv in range(4):
            for yv in range(4):
                for zv in range(4):
                    inp = xv | (yv << 2) | (zv << 4)
                    expect = inp | ((ref(xv, yv, zv) & mask) << 6)
                    assert tbl[inp] == expect


class TestAdders:
    def test_cuccaro_add_exhaustive_3bit(self):
        a, b = reg("a", 3), reg("b", 3)
        carry = Qubit("c", 0)
        tbl = truth_table(
            ctqg.cuccaro_add(a, b, carry), a + b, b,
            all_qubits=a + b + [carry], backend="reversible",
        )
        for av in range(8):
            for bv in range(8):
                assert tbl[av | (bv << 3)] == (av + bv) % 8

    def test_cuccaro_preserves_a_and_cleans_carry(self):
        a, b = reg("a", 3), reg("b", 3)
        carry = Qubit("c", 0)
        ops = ctqg.cuccaro_add(a, b, carry)
        bits = run_classical(
            ops, {a[0]: 1, a[2]: 1, b[1]: 1}, a + b + [carry]
        )
        assert read(bits, a) == 0b101
        assert bits[carry] == 0

    def test_carry_out(self):
        a, b = reg("a", 2), reg("b", 2)
        carry, out = Qubit("c", 0), Qubit("o", 0)
        ops = ctqg.cuccaro_add(a, b, carry, out)
        bits = run_classical(
            ops, {a[0]: 1, a[1]: 1, b[0]: 1, b[1]: 1},
            a + b + [carry, out],
        )
        assert read(bits, b) == (3 + 3) % 4
        assert bits[out] == 1

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            ctqg.cuccaro_add(reg("a", 2), reg("b", 3), Qubit("c", 0))

    def test_empty_registers(self):
        assert ctqg.cuccaro_add([], [], Qubit("c", 0)) == []

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=25, deadline=None)
    def test_add_const_property(self, value, bv, _):
        b = reg("b", 4)
        alloc = AncillaAllocator()
        ops = ctqg.add_const(value, b, alloc)
        allq = b + alloc.all_qubits()
        bits = run_classical(
            ops, {q: (bv >> i) & 1 for i, q in enumerate(b)}, allq
        )
        assert read(bits, b) == (bv + value) % 16
        for q in alloc.all_qubits():
            assert bits[q] == 0, "ancilla not cleaned"


class TestComparison:
    def test_compare_lt_exhaustive(self):
        a, b = reg("a", 3), reg("b", 3)
        flag, carry = Qubit("f", 0), Qubit("c", 0)
        ops = ctqg.compare_lt(a, b, flag, carry)
        for av in range(8):
            for bv in range(8):
                bits = run_classical(
                    ops,
                    {**{q: (av >> i) & 1 for i, q in enumerate(a)},
                     **{q: (bv >> i) & 1 for i, q in enumerate(b)}},
                    a + b + [flag, carry],
                )
                assert bits[flag] == int(av < bv)
                assert read(bits, a) == av, "a must be restored"
                assert read(bits, b) == bv, "b must be restored"
                assert bits[carry] == 0

    def test_compare_lt_const(self):
        a = reg("a", 3)
        flag = Qubit("f", 0)
        alloc = AncillaAllocator()
        ops = ctqg.compare_lt_const(a, 5, flag, alloc)
        allq = a + [flag] + alloc.all_qubits()
        for av in range(8):
            bits = run_classical(
                ops, {q: (av >> i) & 1 for i, q in enumerate(a)}, allq
            )
            assert bits[flag] == int(av < 5)

    def test_compare_flag_xor_semantics(self):
        # flag ^= result: a preset flag is toggled.
        a, b = reg("a", 2), reg("b", 2)
        flag, carry = Qubit("f", 0), Qubit("c", 0)
        ops = ctqg.compare_lt(a, b, flag, carry)
        bits = run_classical(
            ops, {flag: 1, b[0]: 1}, a + b + [flag, carry]
        )
        # 0 < 1 -> toggled from 1 to 0.
        assert bits[flag] == 0


class TestControlled:
    def test_controlled_xor(self):
        c = Qubit("ctl", 0)
        a, b = reg("a", 2), reg("b", 2)
        ops = ctqg.controlled_xor(c, a, b)
        on = run_classical(ops, {c: 1, a[0]: 1}, [c] + a + b)
        off = run_classical(ops, {c: 0, a[0]: 1}, [c] + a + b)
        assert read(on, b) == 1
        assert read(off, b) == 0

    def test_controlled_add(self):
        c = Qubit("ctl", 0)
        a, b = reg("a", 3), reg("b", 3)
        alloc = AncillaAllocator()
        ops = ctqg.controlled_add(c, a, b, alloc)
        allq = [c] + a + b + alloc.all_qubits()
        for cv in (0, 1):
            for av in range(8):
                for bv in range(8):
                    bits = run_classical(
                        ops,
                        {c: cv,
                         **{q: (av >> i) & 1 for i, q in enumerate(a)},
                         **{q: (bv >> i) & 1 for i, q in enumerate(b)}},
                        allq,
                    )
                    expect = (bv + av) % 8 if cv else bv
                    assert read(bits, b) == expect
                    for q in alloc.all_qubits():
                        assert bits[q] == 0


class TestMultiply:
    def test_2x2_exhaustive(self):
        a, b, p = reg("a", 2), reg("b", 2), reg("p", 4)
        alloc = AncillaAllocator()
        ops = ctqg.multiply(a, b, p, alloc)
        allq = a + b + p + alloc.all_qubits()
        for av in range(4):
            for bv in range(4):
                bits = run_classical(
                    ops,
                    {**{q: (av >> i) & 1 for i, q in enumerate(a)},
                     **{q: (bv >> i) & 1 for i, q in enumerate(b)}},
                    allq,
                )
                assert read(bits, p) == av * bv
                for q in alloc.all_qubits():
                    assert bits[q] == 0

    def test_accumulates_into_product(self):
        a, b, p = reg("a", 2), reg("b", 2), reg("p", 4)
        alloc = AncillaAllocator()
        ops = ctqg.multiply(a, b, p, alloc)
        allq = a + b + p + alloc.all_qubits()
        bits = run_classical(
            ops,
            {a[1]: 1, b[1]: 1, p[0]: 1},  # 2*2 + preset 1
            allq,
        )
        assert read(bits, p) == 5

    def test_narrow_product_rejected(self):
        with pytest.raises(ValueError):
            ctqg.multiply(reg("a", 2), reg("b", 3), reg("p", 2),
                          AncillaAllocator())


class TestModularAdd:
    @pytest.mark.parametrize("value,modulus", [(3, 5), (0, 5), (4, 5), (6, 7)])
    def test_add_const_mod(self, value, modulus):
        r = reg("r", 4)
        alloc = AncillaAllocator()
        ops = ctqg.add_const_mod(value, r, modulus, alloc)
        allq = r + alloc.all_qubits()
        for rv in range(modulus):
            bits = run_classical(
                ops, {q: (rv >> i) & 1 for i, q in enumerate(r)}, allq
            )
            assert read(bits, r) == (rv + value) % modulus
            for q in alloc.all_qubits():
                assert bits[q] == 0, "ancilla (incl. flag) not cleaned"

    def test_modulus_headroom_enforced(self):
        with pytest.raises(ValueError, match="headroom"):
            ctqg.add_const_mod(1, reg("r", 3), 5, AncillaAllocator())

    @given(st.integers(1, 7), st.integers(0, 7))
    @settings(max_examples=20, deadline=None)
    def test_property_random_modulus(self, modulus, value):
        r = reg("r", 4)
        alloc = AncillaAllocator()
        ops = ctqg.add_const_mod(value, r, modulus, alloc)
        allq = r + alloc.all_qubits()
        for rv in range(modulus):
            bits = run_classical(
                ops, {q: (rv >> i) & 1 for i, q in enumerate(r)}, allq
            )
            assert read(bits, r) == (rv + value) % modulus
