"""Tests for hierarchical resource estimation (Figure 5 substrate)."""

import pytest

from repro.core.builder import ProgramBuilder
from repro.passes.resource import (
    GATE_COUNT_BINS,
    estimate_resources,
    gate_count_histogram,
    module_invocation_counts,
    total_gate_counts,
)


def iterated_program(iters=1000):
    pb = ProgramBuilder()
    inner = pb.module("inner")
    p = inner.param_register("p", 1)
    inner.t(p[0]).h(p[0])  # 2 gates
    outer = pb.module("outer")
    q = outer.param_register("q", 1)
    outer.x(q[0])
    outer.call("inner", [q[0]], iterations=iters)
    main = pb.module("main")
    mq = main.register("q", 1)
    main.call("outer", [mq[0]], iterations=3)
    return pb.build("main")


class TestTotals:
    def test_iteration_multiplication(self):
        counts = total_gate_counts(iterated_program(1000))
        assert counts["inner"] == 2
        assert counts["outer"] == 1 + 1000 * 2
        assert counts["main"] == 3 * 2001

    def test_paper_scale_counts_are_exact_integers(self):
        # 10^12-scale counts must not overflow or lose precision.
        counts = total_gate_counts(iterated_program(10 ** 12))
        assert counts["main"] == 3 * (1 + 2 * 10 ** 12)

    def test_empty_entry(self):
        pb = ProgramBuilder()
        pb.module("main")
        assert total_gate_counts(pb.build("main"))["main"] == 0


class TestInvocations:
    def test_invocation_counts(self):
        inv = module_invocation_counts(iterated_program(10))
        assert inv["main"] == 1
        assert inv["outer"] == 3
        assert inv["inner"] == 30

    def test_unreachable_modules_zero(self):
        pb = ProgramBuilder()
        orphan = pb.module("orphan")
        q = orphan.register("q", 1)
        orphan.t(q[0])
        main = pb.module("main")
        mq = main.register("q", 1)
        main.h(mq[0])
        inv = module_invocation_counts(pb.build("main"))
        assert "orphan" not in inv or inv.get("orphan", 0) == 0


class TestEstimate:
    def test_gate_mix_dynamic_counts(self):
        est = estimate_resources(iterated_program(10))
        # inner runs 30 times with one T and one H; outer has 3 X.
        assert est.gate_mix["T"] == 30
        assert est.gate_mix["H"] == 30
        assert est.gate_mix["X"] == 3

    def test_direct_vs_total(self):
        est = estimate_resources(iterated_program(10))
        assert est.module_direct["outer"] == 1
        assert est.module_totals["outer"] == 21
        assert est.total_gates == 63


class TestHistogram:
    def test_bins_cover_all_magnitudes(self):
        lows = [lo for _, lo, _ in GATE_COUNT_BINS]
        his = [hi for _, _, hi in GATE_COUNT_BINS]
        assert lows[0] == 0
        assert his[-1] == float("inf")
        # contiguous
        for hi, lo_next in zip(his[:-1], lows[1:]):
            assert hi == lo_next

    def test_histogram_percentages_sum_to_100(self):
        hist = gate_count_histogram(iterated_program(10))
        assert sum(hist.values()) == pytest.approx(100.0)

    def test_histogram_placement(self):
        prog = iterated_program(1000)  # totals: 2, 2001, 6003
        hist = gate_count_histogram(prog)
        assert hist["0 - 1k"] == pytest.approx(100.0 / 3)
        assert hist["1k - 5k"] == pytest.approx(100.0 / 3)
        assert hist["5k - 10k"] == pytest.approx(100.0 / 3)

    def test_empty_program(self):
        pb = ProgramBuilder()
        pb.module("main")
        hist = gate_count_histogram(pb.build("main"))
        assert hist["0 - 1k"] == 100.0
