"""Tests for the loadtest harness and BENCH_service.json schema."""

import asyncio

from repro.server import ReproServer, ServerConfig
from repro.server.loadtest import (
    LoadTestConfig,
    SERVICE_SCHEMA,
    build_service_payload,
    loadtest_with_spawn,
    percentile,
    render_service_report,
    run_loadtest_async,
    validate_service_payload,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0


def _record(group="storm", status=200, latency=0.01, cached=None,
            coalesced=False, error=None):
    return {
        "group": group,
        "status": status,
        "latency_s": latency,
        "cached": cached,
        "coalesced": coalesced,
        "error": error,
    }


class TestBuildServicePayload:
    def test_coalesce_accounting(self):
        records = (
            [_record()]  # the one fresh compute
            + [_record(coalesced=True) for _ in range(5)]
            + [_record(cached="disk") for _ in range(4)]
            + [_record(group="distinct") for _ in range(2)]
        )
        payload = build_service_payload(
            LoadTestConfig(storm=10, distinct=2), records, wall_s=1.0
        )
        assert payload["schema"] == SERVICE_SCHEMA
        coalesce = payload["coalesce"]
        assert coalesce["storm_total"] == 10
        assert coalesce["storm_computes"] == 1
        assert coalesce["storm_coalesced"] == 5
        assert coalesce["storm_cached"] == 4
        assert coalesce["coalesce_rate"] == 0.9
        assert payload["requests"]["total"] == 12
        assert payload["requests"]["errors"] == 0
        assert payload["cache"]["hits"] == 4
        assert validate_service_payload(payload) == []

    def test_errors_are_counted_and_sampled(self):
        records = [
            _record(),
            _record(status=429, error="HTTP 429: queue full"),
            _record(status=None, latency=None, error="Timeout"),
        ]
        payload = build_service_payload(
            LoadTestConfig(), records, wall_s=0.5
        )
        assert payload["requests"]["ok"] == 1
        assert payload["requests"]["errors"] == 2
        assert len(payload["error_samples"]) == 2

    def test_empty_run_is_valid(self):
        payload = build_service_payload(LoadTestConfig(), [], 0.0)
        assert payload["latency_ms"]["p99"] == 0.0
        assert payload["throughput_rps"] == 0.0
        assert validate_service_payload(payload) == []


class TestValidateServicePayload:
    def test_rejects_non_object(self):
        assert validate_service_payload([]) == [
            "payload is not an object"
        ]

    def test_flags_wrong_schema_and_missing_keys(self):
        problems = validate_service_payload({"schema": "bogus/9"})
        assert any("schema" in p for p in problems)
        assert any("latency_ms" in p for p in problems)
        assert any("coalesce" in p for p in problems)

    def test_flags_bad_types(self):
        payload = build_service_payload(
            LoadTestConfig(), [_record()], 1.0
        )
        payload["latency_ms"]["p99"] = "fast"
        payload["requests"]["total"] = 1.5
        problems = validate_service_payload(payload)
        assert any("latency_ms.p99" in p for p in problems)
        assert any("requests.total" in p for p in problems)

    def test_checks_optional_drain_section(self):
        payload = build_service_payload(
            LoadTestConfig(), [_record()], 1.0
        )
        payload["drain"] = {"exit_code": "zero"}
        problems = validate_service_payload(payload)
        assert any("drain" in p for p in problems)


class TestRenderServiceReport:
    def test_mentions_the_headline_numbers(self):
        records = [_record()] + [
            _record(coalesced=True) for _ in range(3)
        ]
        payload = build_service_payload(
            LoadTestConfig(), records, wall_s=2.0
        )
        text = render_service_report(payload)
        assert "4/4 requests ok" in text
        assert "coalesce rate 75.0%" in text
        assert "p99" in text

    def test_includes_drain_line_when_present(self):
        payload = build_service_payload(
            LoadTestConfig(), [_record()], 1.0
        )
        payload["drain"] = {
            "exit_code": 0,
            "sent": 8,
            "completed": 8,
            "rejected": 0,
            "refused": 0,
            "dropped": 0,
        }
        text = render_service_report(payload)
        assert "drain: exit 0" in text
        assert "0 dropped" in text


class TestDistinctRequests:
    def test_unique_and_disjoint_from_storm(self):
        config = LoadTestConfig(distinct=6)
        requests = config.distinct_requests()
        assert len(requests) == 6
        assert len({tuple(sorted(r.items())) for r in requests}) == 6
        assert config.storm_request not in requests


class TestRunLoadtest:
    def test_against_live_server(self, tmp_path):
        async def go():
            server = ReproServer(
                ServerConfig(
                    port=0, workers=2, cache_dir=str(tmp_path)
                )
            )
            await server.start()
            config = LoadTestConfig(
                host=server.host,
                port=server.port,
                clients=6,
                storm=12,
                distinct=3,
            )
            payload = await run_loadtest_async(config)
            await server.drain()
            return payload

        payload = asyncio.run(go())
        assert validate_service_payload(payload) == []
        assert payload["requests"]["errors"] == 0
        assert payload["requests"]["total"] == 15
        # A 12-request storm needs exactly one compute; everyone else
        # coalesces onto it or reads the store.
        assert payload["coalesce"]["storm_computes"] == 1
        assert payload["coalesce"]["coalesce_rate"] >= 0.9
        assert payload["latency_ms"]["p99"] > 0
        assert payload["server_stats"]["jobs"]["submitted"] >= 1


class TestSpawnAndTermDuringLoad:
    """The acceptance criterion: `kill -TERM` during load exits 0
    with zero dropped in-flight jobs."""

    def test_spawned_daemon_survives_sigterm_under_load(self, tmp_path):
        config = LoadTestConfig(clients=6, storm=12, distinct=2)
        payload = loadtest_with_spawn(
            config,
            serve_argv=[
                "--workers", "2", "--cache-dir", str(tmp_path)
            ],
            term_during_load=True,
        )
        assert validate_service_payload(payload) == []
        assert payload["requests"]["errors"] == 0
        assert payload["coalesce"]["coalesce_rate"] >= 0.9
        drain = payload["drain"]
        assert drain["exit_code"] == 0
        assert drain["dropped"] == 0
        assert drain["completed"] >= 1
