"""Tests for schedule metrics: hierarchical critical path and the
paper's speedup definitions."""

import pytest

from repro.arch.machine import NAIVE_FACTOR
from repro.core.builder import ProgramBuilder
from repro.sched.metrics import (
    comm_speedup,
    hierarchical_critical_path,
    parallel_speedup,
)


class TestHierarchicalCriticalPath:
    def test_flat_serial(self):
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 1)
        for _ in range(7):
            main.t(q[0])
        cp = hierarchical_critical_path(pb.build("main"))
        assert cp["main"] == 7

    def test_flat_parallel(self):
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 5)
        for qb in q:
            main.h(qb)
        cp = hierarchical_critical_path(pb.build("main"))
        assert cp["main"] == 1

    def test_call_weight_expands(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        for _ in range(4):
            sub.t(p[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("sub", [q[0]], iterations=3)
        main.h(q[0])
        cp = hierarchical_critical_path(pb.build("main"))
        assert cp["sub"] == 4
        assert cp["main"] == 3 * 4 + 1

    def test_parallel_calls_dont_add(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        for _ in range(4):
            sub.t(p[0])
        main = pb.module("main")
        q = main.register("q", 2)
        main.call("sub", [q[0]])
        main.call("sub", [q[1]])
        cp = hierarchical_critical_path(pb.build("main"))
        assert cp["main"] == 4

    def test_cp_at_paper_scale(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        sub.t(p[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("sub", [q[0]], iterations=10 ** 11)
        cp = hierarchical_critical_path(pb.build("main"))
        assert cp["main"] == 10 ** 11


class TestSpeedups:
    def test_parallel_speedup(self):
        assert parallel_speedup(100, 50) == 2.0

    def test_comm_speedup_baseline_is_naive(self):
        # runtime equal to the naive model -> speedup exactly 1.
        assert comm_speedup(100, NAIVE_FACTOR * 100) == 1.0

    def test_comm_speedup_scales(self):
        assert comm_speedup(100, 100) == float(NAIVE_FACTOR)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            parallel_speedup(10, 0)
        with pytest.raises(ValueError):
            comm_speedup(10, 0)
