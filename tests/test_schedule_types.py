"""Tests for schedule data structures and invariant validation."""

import pytest

from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sched.types import Move, Schedule, ScheduleError, Timestep

Q = [Qubit("q", i) for i in range(6)]


def simple_dag():
    return DependenceDAG(
        [
            Operation("H", (Q[0],)),
            Operation("H", (Q[1],)),
            Operation("CNOT", (Q[0], Q[1])),
        ]
    )


def build_schedule(dag, placements, k=2):
    """placements: list of timesteps, each a list of per-region node
    lists."""
    sched = Schedule(dag, k=k)
    for regions in placements:
        ts = sched.append_timestep()
        for r, nodes in enumerate(regions):
            ts.regions[r].extend(nodes)
    return sched


class TestMove:
    def test_kinds(self):
        Move(Q[0], ("global",), ("region", 0), "teleport")
        Move(Q[0], ("region", 0), ("local", 0), "local")
        with pytest.raises(ValueError, match="kind"):
            Move(Q[0], ("global",), ("region", 0), "walk")

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            Move(Q[0], ("global",), ("global",), "teleport")


class TestTimestep:
    def test_active_regions_and_width(self):
        ts = Timestep(regions=[[0], [], [1, 2]])
        assert ts.active_regions() == [0, 2]
        assert ts.width == 2
        assert ts.all_nodes() == [0, 1, 2]


class TestScheduleShape:
    def test_lengths_and_counts(self):
        dag = simple_dag()
        sched = build_schedule(dag, [[[0], [1]], [[2], []]])
        assert sched.length == 2
        assert sched.op_count == 3
        assert sched.max_width == 2
        sched.validate()

    def test_placement(self):
        dag = simple_dag()
        sched = build_schedule(dag, [[[0], [1]], [[2], []]])
        assert sched.placement() == {0: (0, 0), 1: (0, 1), 2: (1, 0)}

    def test_move_counters(self):
        dag = simple_dag()
        sched = build_schedule(dag, [[[0], [1]], [[2], []]])
        sched.timesteps[0].moves = [
            Move(Q[0], ("global",), ("region", 0), "teleport"),
            Move(Q[1], ("region", 1), ("local", 1), "local"),
        ]
        assert sched.total_moves == 2
        assert sched.teleport_moves == 1
        assert sched.local_moves == 1


class TestValidation:
    def test_missing_op_detected(self):
        dag = simple_dag()
        sched = build_schedule(dag, [[[0], [1]]])
        with pytest.raises(ScheduleError, match="unscheduled"):
            sched.validate()

    def test_duplicate_op_detected(self):
        dag = simple_dag()
        sched = build_schedule(dag, [[[0], [1]], [[2], [0]]])
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_dependence_violation_detected(self):
        dag = simple_dag()
        # CNOT (node 2) scheduled with its predecessor H (node 0).
        sched = build_schedule(dag, [[[0], [2]], [[1], []]])
        with pytest.raises(ScheduleError, match="dependence"):
            sched.validate()

    def test_mixed_gate_types_in_region_detected(self):
        dag = DependenceDAG(
            [Operation("H", (Q[0],)), Operation("T", (Q[1],))]
        )
        sched = build_schedule(dag, [[[0, 1], []]])
        with pytest.raises(ScheduleError, match="SIMD requires one"):
            sched.validate()

    def test_d_limit_enforced(self):
        dag = DependenceDAG(
            [Operation("H", (Q[i],)) for i in range(3)]
        )
        sched = Schedule(dag, k=1, d=2)
        ts = sched.append_timestep()
        ts.regions[0].extend([0, 1, 2])
        with pytest.raises(ScheduleError, match="d=2"):
            sched.validate()

    def test_qubit_conflict_across_regions_detected(self):
        dag = DependenceDAG(
            [Operation("H", (Q[0],)), Operation("H", (Q[1],))]
        )
        # Manually mis-place: both H's in one timestep but pretend
        # node 1 also touches Q[0] — craft with CNOTs instead.
        dag2 = DependenceDAG(
            [
                Operation("CNOT", (Q[0], Q[1])),
                Operation("CNOT", (Q[2], Q[3])),
            ]
        )
        sched = build_schedule(dag2, [[[0], [1]]])
        sched.validate()  # disjoint: fine
        dag3 = DependenceDAG(
            [
                Operation("CNOT", (Q[0], Q[1])),
                Operation("CNOT", (Q[2], Q[3])),
            ]
        )
        bad = build_schedule(dag3, [[[0, 1], []]])
        # same region, same gate type, disjoint qubits: legal
        bad.validate()

    def test_same_qubit_same_timestep_detected(self):
        # Two X ops on different qubits then a manual conflict.
        dag = DependenceDAG(
            [Operation("X", (Q[0],)), Operation("X", (Q[0],))]
        )
        sched = build_schedule(dag, [[[0], [1]]])
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_operation_accessor_type_error(self):
        from repro.core.operation import CallSite

        dag = DependenceDAG([CallSite("x", (Q[0],))])
        sched = Schedule(dag, k=1)
        with pytest.raises(TypeError):
            sched.operation(0)
