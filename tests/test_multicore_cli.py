"""CLI surface tests for the multi-core verbs and flags."""

import json

from repro.cli import EXIT_USAGE, main


class TestPartitionVerb:
    def test_text_report(self, capsys):
        assert main(["partition", "BF", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "cut" in out
        assert "occupancy" in out

    def test_json_report(self, capsys):
        rc = main(
            [
                "partition", "BF",
                "--topology", "mesh", "--cores", "4",
                "--format", "json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["topology"]["cores"] == 4
        assert doc["topology"]["name"] == "mesh"
        assert doc["partitions"]
        for report in doc["partitions"].values():
            assert sum(report["occupancy"]) == len(report["assignment"])
        assert set(doc["leaves"]) == set(doc["partitions"])

    def test_forced_cut_reports_makespan_split(self, capsys):
        rc = main(
            [
                "partition", "BF",
                "--topology", "line", "--cores", "4",
                "-d", "2", "--format", "json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        split = [
            leaf
            for leaf in doc["leaves"].values()
            if leaf["intercore_teleports"]
        ]
        assert split
        for leaf in split:
            assert leaf["makespan"] == (
                leaf["intra_runtime"] + leaf["intercore_cycles"]
            )

    def test_bad_topology_is_usage_error(self, capsys):
        rc = main(["partition", "BF", "--topology", "torus"])
        assert rc == EXIT_USAGE

    def test_overflow_is_usage_error(self, capsys):
        rc = main(
            ["partition", "BF", "--cores", "2", "-k", "1", "-d", "1"]
        )
        assert rc == EXIT_USAGE
        assert "error:" in capsys.readouterr().err


class TestExecuteTopology:
    def test_json_decomposition_ok(self, capsys):
        rc = main(
            [
                "execute", "BF",
                "--topology", "line", "--cores", "4", "-d", "2",
                "--json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["decomposition_ok"] is True
        assert doc["ideal_match"] is True
        assert doc["machine"]["cores"] == 4
        assert doc["machine"]["topology"] == "line"
        assert doc["metrics"]["engine_decomposition_ok"] == 1

    def test_finite_link_rate_stalls_but_decomposes(self, capsys):
        rc = main(
            [
                "execute", "BF",
                "--topology", "line", "--cores", "4", "-d", "2",
                "--link-epr-rate", "0.01",
                "--json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["decomposition_ok"] is True
        assert doc["ideal_match"] is False
        assert doc["stalls"]["intercore"] > 0
        # The invariant is per leaf: realized == analytic + stalls.
        leaf_docs = [
            m for m in doc["modules"].values() if not m.get("coarse")
        ]
        assert leaf_docs
        for leaf in leaf_docs:
            assert leaf["realized_runtime"] == (
                leaf["analytic_runtime"] + leaf["stalls"]["total"]
            )

    def test_text_report_mentions_intercore(self, capsys):
        rc = main(
            [
                "execute", "BF",
                "--topology", "line", "--cores", "4", "-d", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "inter-core" in out
        assert "decomposition" in out

    def test_trace_written(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(
            [
                "execute", "BF",
                "--topology", "line", "--cores", "2",
                "--trace", str(trace),
            ]
        )
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert events

    def test_bad_topology_is_usage_error(self):
        rc = main(["execute", "BF", "--topology", "torus"])
        assert rc == EXIT_USAGE


class TestLintTopology:
    def test_topology_requires_deep(self, capsys):
        rc = main(["lint", "BF", "--topology", "line"])
        assert rc == EXIT_USAGE
        assert "--deep" in capsys.readouterr().err

    def test_deep_multicore_audit_clean(self, capsys):
        rc = main(
            [
                "lint", "BF", "--deep",
                "--topology", "line", "--cores", "2",
                "--format", "json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        info = doc["deep"]["sources"]["BF"]["multicore"]
        assert info["topology"] == "line"
        assert info["cores"] == 2
        assert info["leaves_audited"] >= 1


class TestBenchTopologyAxis:
    def test_sweep_payload_v3_with_topology_axis(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        rc = main(
            [
                "bench", "BF",
                "--topology", "none,line", "--cores", "1,2",
                "-k", "4", "-d", "4",
                "--serial", "--no-cache",
                "-o", str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.bench-sweep/3"
        from repro.service.sweep import validate_sweep_payload

        assert validate_sweep_payload(doc) == []
        assert all(r["status"] == "ok" for r in doc["jobs"])
        topo = {
            (r["job"].get("topology"), r["job"].get("cores"))
            for r in doc["jobs"]
        }
        # none collapses the core axis; line expands it.
        assert (None, None) in topo
        assert ("line", 1) in topo
        assert ("line", 2) in topo
