"""Streamed-schedule replay verification, registry-wide.

Every kernel in the spec registry (adder, compare, multiply) is
scheduled through the columnar pipeline at window sizes {64, 1024,
unbounded} and the linearized replay is proven bit-identical to the
program-order body on every input — the toolflow ``verify=True`` gate
end to end. A ``repro.schedule-stream/1`` export round-trips through
:func:`~repro.service.stream_io.stream_ops` the same way, and a
corrupted export (one swapped CNOT operand) is caught with a minimal
counterexample."""

from __future__ import annotations

import json

import pytest

from repro.arch.machine import MultiSIMD
from repro.passes.stream import leaf_stream
from repro.service.stream_io import stream_ops, write_schedule_stream
from repro.sim.reversible import (
    streamed_schedule_ops,
    verify_equivalent,
)
from repro.sim.specs import SPEC_NAMES, build_kernel_program
from repro.toolflow import (
    SchedulerConfig,
    compile_and_schedule,
    compile_and_schedule_streamed,
)

MACHINE = MultiSIMD(k=4, d=None)
WINDOWS = [64, 1024, None]
KERNEL_WIDTH = {"adder": 6, "compare": 5, "multiply": 3}


def streamed(kind, window, verify=False):
    prog = build_kernel_program(kind, KERNEL_WIDTH[kind])
    result = compile_and_schedule_streamed(
        prog,
        MACHINE,
        SchedulerConfig("lpfs"),
        decompose=False,
        window=window,
        keep_schedules=True,
        verify=verify,
    )
    return prog, result


@pytest.mark.parametrize("kind", SPEC_NAMES)
@pytest.mark.parametrize("window", WINDOWS)
def test_replay_equivalent_across_windows(kind, window):
    prog, result = streamed(kind, window)
    name = prog.entry
    cols = result.columns[name]
    report = verify_equivalent(
        iter(leaf_stream(prog, name, decompose=False)),
        streamed_schedule_ops(cols, result.stream_schedules[name]),
        cols.qubits,
        label=f"{kind} window={window}",
    )
    assert report.ok, report.summary()
    assert report.ops == len(cols)


@pytest.mark.parametrize("kind", SPEC_NAMES)
def test_toolflow_streamed_verify_gate(kind):
    prog, result = streamed(kind, 64, verify=True)
    assert prog.entry in result.verified


@pytest.mark.parametrize("kind", SPEC_NAMES)
def test_toolflow_materialized_verify_gate(kind):
    prog = build_kernel_program(kind, KERNEL_WIDTH[kind])
    result = compile_and_schedule(
        prog,
        MACHINE,
        SchedulerConfig("lpfs"),
        decompose=False,
        verify=True,
    )
    assert prog.entry in result.verified
    assert prog.entry in result.schedules


def test_verify_off_by_default():
    prog, result = streamed("adder", 64)
    assert result.verified == ()


def export(tmp_path, kind="adder", window=64):
    prog, result = streamed(kind, window)
    name = prog.entry
    path = str(tmp_path / f"{kind}.jsonl")
    write_schedule_stream(
        path,
        result.columns[name],
        result.stream_schedules[name],
        MACHINE,
        module=name,
    )
    return prog, name, path


@pytest.mark.parametrize("kind", SPEC_NAMES)
def test_exported_stream_replays_identically(tmp_path, kind):
    prog, name, path = export(tmp_path, kind)
    header, replay = stream_ops(path)
    assert header["module"] == name
    mod = prog.module(name)
    report = verify_equivalent(
        iter(leaf_stream(prog, name, decompose=False)),
        replay,
        mod.qubits(),
        label=f"{kind} file replay",
    )
    assert report.ok, report.summary()


def corrupt_stream(path):
    """Swap the operands of the first distinct-operand CNOT in the
    export — control becomes target, a single-op semantic fault."""
    lines = open(path).read().splitlines()
    header = json.loads(lines[0])
    cnot = header["gates"].index("CNOT")
    for i, line in enumerate(lines[1:], start=1):
        data = json.loads(line)
        if "comm" in data:
            break
        changed = False
        for _r, ops in data["regions"]:
            for entry in ops:
                if entry[1] == cnot and entry[2][0] != entry[2][1]:
                    entry[2].reverse()
                    changed = True
                    break
            if changed:
                break
        if changed:
            lines[i] = json.dumps(data, separators=(",", ":"))
            with open(path, "w") as fh:
                fh.write("\n".join(lines) + "\n")
            return
    raise AssertionError("no CNOT found to corrupt")


def test_corrupted_stream_caught_with_counterexample(tmp_path):
    prog, name, path = export(tmp_path, "adder")
    corrupt_stream(path)
    _header, replay = stream_ops(path)
    report = verify_equivalent(
        iter(leaf_stream(prog, name, decompose=False)),
        replay,
        prog.module(name).qubits(),
    )
    assert not report.ok
    cex = report.counterexample
    assert cex is not None
    # Exhaustive sweep: lane order is input order, so the witness is
    # the smallest failing input.
    assert cex.lane == cex.input_value
    assert cex.expected != cex.got
    assert "MISMATCH" in report.summary()
