"""Unit tests for the module / program IR."""

import pytest

from repro.core.module import Module, Program, ProgramValidationError
from repro.core.operation import CallSite, Operation
from repro.core.qubits import Qubit

Q = [Qubit("q", i) for i in range(6)]


def leaf(name, ops):
    return Module(name, (), list(ops))


class TestModule:
    def test_leaf_detection(self):
        m = leaf("m", [Operation("H", (Q[0],))])
        assert m.is_leaf
        m2 = Module("m2", (), [CallSite("m", ())])
        assert not m2.is_leaf

    def test_operations_and_calls_iterators(self):
        body = [
            Operation("H", (Q[0],)),
            CallSite("x", (Q[0],)),
            Operation("T", (Q[0],)),
        ]
        m = Module("m", (), body)
        assert [op.gate for op in m.operations()] == ["H", "T"]
        assert [c.callee for c in m.calls()] == ["x"]
        assert m.direct_gate_count == 2

    def test_qubits_first_reference_order(self):
        m = Module(
            "m",
            (Q[2],),
            [Operation("CNOT", (Q[0], Q[1])), Operation("H", (Q[0],))],
        )
        assert m.qubits() == [Q[2], Q[0], Q[1]]

    def test_duplicate_params_rejected(self):
        with pytest.raises(ProgramValidationError):
            Module("m", (Q[0], Q[0]), [])


class TestProgramValidation:
    def test_missing_entry_rejected(self):
        with pytest.raises(ProgramValidationError, match="entry"):
            Program([leaf("a", [])], entry="nope")

    def test_unknown_callee_rejected(self):
        m = Module("m", (), [CallSite("ghost", ())])
        with pytest.raises(ProgramValidationError, match="unknown module"):
            Program([m], entry="m")

    def test_arity_mismatch_rejected(self):
        callee = Module("callee", (Q[0], Q[1]), [])
        caller = Module("main", (), [CallSite("callee", (Q[0],))])
        with pytest.raises(ProgramValidationError, match="args"):
            Program([callee, caller], entry="main")

    def test_recursion_rejected(self):
        a = Module("a", (), [CallSite("b", ())])
        b = Module("b", (), [CallSite("a", ())])
        with pytest.raises(ProgramValidationError, match="recursive"):
            Program([a, b], entry="a")

    def test_self_recursion_rejected(self):
        a = Module("a", (), [CallSite("a", ())])
        with pytest.raises(ProgramValidationError, match="recursive"):
            Program([a], entry="a")

    def test_duplicate_module_names_rejected(self):
        with pytest.raises(ProgramValidationError, match="duplicate"):
            Program([leaf("a", []), leaf("a", [])], entry="a")


class TestProgramAnalyses:
    def make_diamond(self):
        """main -> {left, right} -> shared"""
        shared = leaf("shared", [Operation("H", (Q[0],))])
        left = Module("left", (), [CallSite("shared", ())])
        right = Module("right", (), [CallSite("shared", ())])
        main = Module(
            "main", (), [CallSite("left", ()), CallSite("right", ())]
        )
        return Program([shared, left, right, main], entry="main")

    def test_topological_order_callees_first(self):
        prog = self.make_diamond()
        order = prog.topological_order()
        assert order.index("shared") < order.index("left")
        assert order.index("shared") < order.index("right")
        assert order[-1] == "main"

    def test_reachable_excludes_orphans(self):
        shared = leaf("shared", [])
        orphan = leaf("orphan", [])
        main = Module("main", (), [CallSite("shared", ())])
        prog = Program([shared, orphan, main], entry="main")
        assert prog.reachable() == {"main", "shared"}
        assert "orphan" not in prog.topological_order()

    def test_call_depth(self):
        prog = self.make_diamond()
        depth = prog.call_depth()
        assert depth["main"] == 0
        assert depth["left"] == depth["right"] == 1
        assert depth["shared"] == 2

    def test_leaf_and_nonleaf_partitions(self):
        prog = self.make_diamond()
        assert {m.name for m in prog.leaf_modules()} == {"shared"}
        assert {m.name for m in prog.nonleaf_modules()} == {
            "main", "left", "right",
        }

    def test_with_modules_replaces(self):
        prog = self.make_diamond()
        new_shared = leaf("shared", [Operation("T", (Q[0],))])
        prog2 = prog.with_modules({"shared": new_shared})
        assert prog2.module("shared").direct_gate_count == 1
        assert next(prog2.module("shared").operations()).gate == "T"
        # Original untouched.
        assert next(prog.module("shared").operations()).gate == "H"

    def test_module_lookup_error(self):
        prog = self.make_diamond()
        with pytest.raises(KeyError, match="no module named"):
            prog.module("missing")

    def test_contains_and_len(self):
        prog = self.make_diamond()
        assert "main" in prog
        assert "ghost" not in prog
        assert len(prog) == 4
