"""Tests for front-end linting (repro.analysis.frontend)."""

from repro.analysis import lint_qasm_source, lint_scaffold_source

CLEAN = """
module main ( ) {
    qreg q[2];
    PrepZ(q[0]);
    PrepZ(q[1]);
    H(q[0]);
    CNOT(q[0], q[1]);
    MeasZ(q[0]);
    MeasZ(q[1]);
}
"""


class TestScaffoldLint:
    def test_clean_source(self):
        lint = lint_scaffold_source(CLEAN, filename="clean.scd")
        assert lint.ok
        assert lint.program is not None
        assert len(lint.diagnostics) == 0

    def test_syntax_error_becomes_ql101(self):
        lint = lint_scaffold_source(
            "module main ( ) { qbit a; H(a) }", filename="x.scd"
        )
        assert not lint.ok
        assert lint.program is None
        codes = lint.diagnostics.codes()
        assert codes == {"QL101"}
        d = lint.diagnostics[0]
        assert d.loc is not None
        assert d.loc.file == "x.scd"

    def test_unknown_gate_becomes_ql103(self):
        lint = lint_scaffold_source(
            "module main ( ) { qbit a; BLORP(a); }"
        )
        assert not lint.ok
        assert lint.diagnostics.codes() == {"QL103"}
        assert "BLORP" in lint.diagnostics[0].message

    def test_validation_error_becomes_ql104(self):
        # Mutual recursion fails IR validation, not parsing.
        lint = lint_scaffold_source(
            "module a ( qbit x ) { b(x); }\n"
            "module b ( qbit x ) { a(x); }\n"
            "module main ( ) { qbit y; a(y); }\n"
        )
        assert not lint.ok
        assert lint.diagnostics.codes() == {"QL104"}

    def test_loop_warnings_become_ql102(self):
        lint = lint_scaffold_source(
            "module main ( ) {\n"
            "    qbit a;\n"
            "    for i in 1 .. 1 { H(a); }\n"
            "    repeat 1 { H(a); }\n"
            "}\n"
        )
        assert lint.ok  # warnings are non-fatal
        assert lint.diagnostics.codes() == {"QL102"}
        assert len(lint.diagnostics) == 2
        assert not lint.diagnostics.has_errors
        rules = {d.rule for d in lint.diagnostics}
        assert rules == {
            "loop-bounds/degenerate-loop",
            "loop-bounds/degenerate-repeat",
        }


class TestQasmLint:
    def test_clean_source(self):
        from repro import parse_scaffold, emit_qasm

        text = emit_qasm(parse_scaffold(CLEAN))
        lint = lint_qasm_source(text)
        assert lint.ok
        assert len(lint.diagnostics) == 0

    def test_syntax_error_becomes_ql101(self):
        lint = lint_qasm_source(
            ".module main .entry\n    frobnicate q\n"
        )
        assert not lint.ok
        assert lint.diagnostics.codes() == {"QL101"}
        d = lint.diagnostics[0]
        assert d.loc is not None
        assert d.loc.line == 2
        # the "line N:" prefix is stripped (the location carries it)
        assert not d.message.startswith("line ")
