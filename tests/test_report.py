"""Tests for schedule/result reporting and export."""

import json

import pytest

from repro.arch.machine import MultiSIMD
from repro.core.builder import ProgramBuilder
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sched.comm import derive_movement
from repro.sched.rcp import schedule_rcp
from repro.sched.report import (
    compile_result_from_dict,
    compile_result_to_dict,
    profile_table,
    render_timeline,
    schedule_to_dict,
)
from repro.toolflow import compile_and_schedule

Q = [Qubit("q", i) for i in range(4)]


def small_schedule():
    dag = DependenceDAG(
        [
            Operation("H", (Q[0],)),
            Operation("H", (Q[1],)),
            Operation("CNOT", (Q[0], Q[1])),
            Operation("T", (Q[0],)),
        ]
    )
    sched = schedule_rcp(dag, k=2)
    derive_movement(sched, MultiSIMD(k=2))
    return sched


def small_result():
    pb = ProgramBuilder()
    sub = pb.module("sub")
    p = sub.param_register("p", 1)
    sub.t(p[0]).h(p[0])
    main = pb.module("main")
    q = main.register("q", 2)
    main.toffoli_args = None
    main.h(q[0])
    main.call("sub", [q[0]], iterations=3)
    main.cnot(q[0], q[1])
    return compile_and_schedule(
        pb.build("main"), MultiSIMD(k=2), decompose=False, fth=0
    )


class TestTimeline:
    def test_contains_all_timesteps(self):
        sched = small_schedule()
        text = render_timeline(sched)
        assert "region 0" in text and "region 1" in text
        assert "CNOT" in text
        assert "teleport" in text

    def test_truncation(self):
        dag = DependenceDAG([Operation("T", (Q[0],)) for _ in range(20)])
        sched = schedule_rcp(dag, k=1)
        text = render_timeline(sched, max_timesteps=5)
        assert "15 more timesteps" in text

    def test_hide_qubits(self):
        text = render_timeline(small_schedule(), show_qubits=False)
        assert "(q0" not in text
        assert "CNOT" in text


class TestScheduleDict:
    def test_json_serialisable(self):
        d = schedule_to_dict(small_schedule())
        text = json.dumps(d)
        back = json.loads(text)
        assert back["k"] == 2
        assert back["op_count"] == 4
        assert len(back["timesteps"]) == back["length"]

    def test_moves_exported(self):
        d = schedule_to_dict(small_schedule())
        all_moves = [m for ts in d["timesteps"] for m in ts["moves"]]
        assert all_moves
        assert all(m["kind"] in ("teleport", "local") for m in all_moves)

    def test_gate_and_qubit_names(self):
        d = schedule_to_dict(small_schedule())
        ops = [
            o
            for ts in d["timesteps"]
            for region in ts["regions"]
            for o in region
        ]
        assert {"gate", "qubits"} <= set(ops[0])
        assert any(o["gate"] == "CNOT" for o in ops)


class TestResultDict:
    def test_json_serialisable(self):
        d = compile_result_to_dict(small_result())
        back = json.loads(json.dumps(d))
        assert back["entry"] == "main"
        assert back["total_gates"] == 8
        assert "sub" in back["modules"]
        assert back["modules"]["sub"]["is_leaf"] is True

    def test_speedups_present(self):
        d = compile_result_to_dict(small_result())
        for key in (
            "parallel_speedup", "cp_speedup", "comm_aware_speedup",
        ):
            assert isinstance(d[key], float)

    def test_infinite_d_encoded(self):
        d = compile_result_to_dict(small_result())
        assert d["machine"]["d"] == "inf"

    def test_nonleaf_bodies_round_trip_exactly(self):
        """Call multiplicity, qubit args, iterations and interleaved
        direct ops must survive the artifact round-trip — the engine's
        coarse composition over a rehydrated result depends on them."""
        result = small_result()
        doc = json.loads(json.dumps(compile_result_to_dict(result)))
        back = compile_result_from_dict(doc)
        orig_main = result.program.module("main")
        back_main = back.program.module("main")
        assert back_main.body == orig_main.body
        assert back_main.params == orig_main.params
        # Leaf modules come back as skeletons (ops live in the
        # schedule sidecar) but keep their formal parameters so the
        # rebuilt program still validates call arity.
        back_sub = back.program.module("sub")
        assert back_sub.body == []
        assert back_sub.params == result.program.module("sub").params

    def test_legacy_artifact_without_body_still_loads(self):
        doc = json.loads(json.dumps(compile_result_to_dict(
            small_result()
        )))
        for spec in doc["modules"].values():
            spec.pop("body", None)
            spec.pop("params", None)
        back = compile_result_from_dict(doc)
        assert back.total_gates == 8
        assert back.program.module("main").callees() == {"sub"}


class TestProfileTable:
    def test_contains_modules_and_widths(self):
        text = profile_table(small_result())
        assert "sub" in text and "main" in text
        assert "w=1" in text and "w=2" in text

    def test_metric_selection(self):
        r = small_result()
        assert profile_table(r, "length") != profile_table(r, "runtime")
        with pytest.raises(ValueError):
            profile_table(r, "latency")


class TestCoarseGantt:
    def test_render(self):
        from repro.core.module import Module
        from repro.core.operation import CallSite
        from repro.sched.coarse import schedule_coarse
        from repro.sched.report import render_coarse_gantt

        body = [CallSite("box", (Q[i],)) for i in range(3)]
        body.append(CallSite("box", (Q[0],)))
        res = schedule_coarse(
            Module("m", (), body), {"box": {1: 10, 2: 6}}, k=3
        )
        text = render_coarse_gantt(res)
        assert "coarse schedule of 'm'" in text
        assert "#" in text
        assert text.count("n") >= 4  # one row per placement

    def test_truncation(self):
        from repro.core.module import Module
        from repro.core.operation import CallSite
        from repro.sched.coarse import schedule_coarse
        from repro.sched.report import render_coarse_gantt

        body = [CallSite("box", (Q[0],)) for _ in range(10)]
        res = schedule_coarse(
            Module("m", (), body), {"box": {1: 5}}, k=2
        )
        text = render_coarse_gantt(res, max_rows=3)
        assert "7 more" in text
