"""Unit + property tests for the dependence DAG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit

Q = [Qubit("q", i) for i in range(8)]


def ops_chain(n, qubit=Q[0]):
    return [Operation("T", (qubit,)) for _ in range(n)]


class TestConstruction:
    def test_serial_chain_on_one_qubit(self):
        dag = DependenceDAG(ops_chain(4))
        assert dag.preds == [[], [0], [1], [2]]
        assert dag.succs == [[1], [2], [3], []]

    def test_independent_ops_have_no_edges(self):
        dag = DependenceDAG(
            [Operation("H", (Q[i],)) for i in range(4)]
        )
        assert all(not p for p in dag.preds)
        assert dag.sources() == [0, 1, 2, 3]
        assert dag.sinks() == [0, 1, 2, 3]

    def test_shared_operand_creates_dependency(self):
        # Two CNOTs sharing only the control: still dependent (no-cloning
        # rule — any common operand is a dependency, Section 3.1.1).
        dag = DependenceDAG(
            [
                Operation("CNOT", (Q[0], Q[1])),
                Operation("CNOT", (Q[0], Q[2])),
            ]
        )
        assert dag.preds[1] == [0]

    def test_multi_operand_dedup(self):
        # A successor sharing two operands gets one edge, not two.
        dag = DependenceDAG(
            [
                Operation("CNOT", (Q[0], Q[1])),
                Operation("CNOT", (Q[0], Q[1])),
            ]
        )
        assert dag.preds[1] == [0]

    def test_adjacent_chain_only(self):
        # Third op on a qubit depends on the second, not the first.
        dag = DependenceDAG(ops_chain(3))
        assert dag.preds[2] == [1]

    def test_weights_length_mismatch(self):
        with pytest.raises(ValueError):
            DependenceDAG(ops_chain(3), weights=[1, 2])

    def test_empty(self):
        dag = DependenceDAG([])
        assert dag.n == 0
        assert dag.critical_path_length() == 0
        assert dag.critical_path() == []


class TestPaths:
    def test_chain_critical_path(self):
        dag = DependenceDAG(ops_chain(5))
        assert dag.critical_path_length() == 5
        assert dag.critical_path() == [0, 1, 2, 3, 4]

    def test_weighted_critical_path(self):
        # Two independent chains; weights make the shorter chain critical.
        ops = [
            Operation("T", (Q[0],)),
            Operation("T", (Q[0],)),
            Operation("T", (Q[1],)),
        ]
        dag = DependenceDAG(ops, weights=[1, 1, 10])
        assert dag.critical_path_length() == 10
        assert dag.critical_path() == [2]

    def test_heights_and_depths_chain(self):
        dag = DependenceDAG(ops_chain(4))
        assert dag.heights() == [4, 3, 2, 1]
        assert dag.depths() == [1, 2, 3, 4]

    def test_slack_zero_on_critical_path(self):
        ops = ops_chain(3) + [Operation("H", (Q[1],))]
        dag = DependenceDAG(ops)
        slack = dag.slack()
        assert slack[0] == slack[1] == slack[2] == 0
        assert slack[3] == 2  # the lone H can float anywhere

    def test_longest_path_from(self):
        # Fork: 0 -> 1 (chain of 3 via Q0), 0 -> shared op path via Q1.
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("T", (Q[0],)),
            Operation("T", (Q[0],)),
            Operation("H", (Q[1],)),
        ]
        dag = DependenceDAG(ops)
        assert dag.longest_path_from(0) == [0, 1, 2]

    def test_next_longest_path_empty_ready(self):
        dag = DependenceDAG(ops_chain(3))
        assert dag.next_longest_path([]) == []

    def test_next_longest_path_picks_tallest_head(self):
        ops = [
            Operation("T", (Q[0],)),  # chain of 3
            Operation("T", (Q[0],)),
            Operation("T", (Q[0],)),
            Operation("H", (Q[1],)),  # chain of 1
        ]
        dag = DependenceDAG(ops)
        assert dag.next_longest_path([0, 3]) == [0, 1, 2]


class TestUtilities:
    def test_qubit_chains(self):
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("H", (Q[0],)),
            Operation("H", (Q[1],)),
        ]
        chains = DependenceDAG(ops).qubit_chains()
        assert chains[Q[0]] == [0, 1]
        assert chains[Q[1]] == [0, 2]

    def test_indegrees_is_fresh_copy(self):
        dag = DependenceDAG(ops_chain(3))
        deg = dag.indegrees()
        deg[1] = 99
        assert dag.indegrees()[1] == 1

    def test_validate_acyclic(self):
        DependenceDAG(ops_chain(10)).validate_acyclic()


# --- property-based tests --------------------------------------------------

@st.composite
def random_ops(draw):
    n_qubits = draw(st.integers(2, 6))
    qs = [Qubit("q", i) for i in range(n_qubits)]
    n_ops = draw(st.integers(0, 30))
    ops = []
    for _ in range(n_ops):
        arity = draw(st.integers(1, 2))
        operands = draw(
            st.lists(
                st.sampled_from(qs), min_size=arity, max_size=arity,
                unique=True,
            )
        )
        gate = "H" if arity == 1 else "CNOT"
        ops.append(Operation(gate, tuple(operands)))
    return ops


class TestProperties:
    @given(random_ops())
    @settings(max_examples=60)
    def test_edges_point_forward(self, ops):
        dag = DependenceDAG(ops)
        dag.validate_acyclic()
        for i, preds in enumerate(dag.preds):
            for p in preds:
                assert p < i

    @given(random_ops())
    @settings(max_examples=60)
    def test_heights_decrease_along_edges(self, ops):
        dag = DependenceDAG(ops)
        h = dag.heights()
        for i, succs in enumerate(dag.succs):
            for s in succs:
                assert h[i] > h[s]

    @given(random_ops())
    @settings(max_examples=60)
    def test_critical_path_is_valid_chain(self, ops):
        dag = DependenceDAG(ops)
        path = dag.critical_path()
        assert len(path) == dag.critical_path_length()
        for a, b in zip(path, path[1:]):
            assert b in dag.succs[a]

    @given(random_ops())
    @settings(max_examples=60)
    def test_critical_path_bounds(self, ops):
        dag = DependenceDAG(ops)
        cp = dag.critical_path_length()
        assert cp <= dag.n
        if dag.n:
            # Any single qubit's op chain is a lower bound.
            longest_chain = max(
                (len(v) for v in dag.qubit_chains().values()), default=0
            )
            assert cp >= longest_chain
