"""Unit tests for qubits, registers, and the ancilla pool."""

import pytest
from hypothesis import given, strategies as st

from repro.core.qubits import AncillaAllocator, Qubit, QubitRegister


class TestQubit:
    def test_equality_and_hash(self):
        assert Qubit("a", 0) == Qubit("a", 0)
        assert Qubit("a", 0) != Qubit("a", 1)
        assert Qubit("a", 0) != Qubit("b", 0)
        assert len({Qubit("a", 0), Qubit("a", 0), Qubit("a", 1)}) == 2

    def test_ordering(self):
        assert Qubit("a", 0) < Qubit("a", 1) < Qubit("b", 0)

    def test_repr(self):
        assert repr(Qubit("reg", 3)) == "reg[3]"


class TestQubitRegister:
    def test_basic_indexing(self):
        reg = QubitRegister("r", 4)
        assert reg[0] == Qubit("r", 0)
        assert reg[3] == Qubit("r", 3)
        assert reg[-1] == Qubit("r", 3)

    def test_len_and_iter(self):
        reg = QubitRegister("r", 5)
        assert len(reg) == 5
        assert list(reg) == [Qubit("r", i) for i in range(5)]

    def test_slice_returns_list(self):
        reg = QubitRegister("r", 5)
        assert reg[1:3] == [Qubit("r", 1), Qubit("r", 2)]

    def test_empty_register(self):
        reg = QubitRegister("r", 0)
        assert len(reg) == 0
        assert list(reg) == []

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            QubitRegister("r", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            QubitRegister("", 1)

    def test_out_of_range_raises(self):
        reg = QubitRegister("r", 2)
        with pytest.raises(IndexError):
            reg[5]


class TestAncillaAllocator:
    def test_alloc_mints_sequential_indices(self):
        pool = AncillaAllocator()
        qs = pool.alloc(3)
        assert qs == [Qubit("anc", 0), Qubit("anc", 1), Qubit("anc", 2)]

    def test_freed_qubits_are_reused_before_minting(self):
        pool = AncillaAllocator()
        first = pool.alloc(2)
        pool.free(first)
        second = pool.alloc(3)
        # Two reused plus one fresh.
        assert set(first) <= set(second)
        assert pool.high_water_mark == 3

    def test_high_water_mark_tracks_peak(self):
        pool = AncillaAllocator()
        a = pool.alloc(4)
        pool.free(a)
        pool.alloc(2)
        assert pool.high_water_mark == 4
        assert pool.live_count == 2

    def test_double_free_rejected(self):
        pool = AncillaAllocator()
        q = pool.alloc(1)
        pool.free(q)
        with pytest.raises(ValueError, match="double free"):
            pool.free(q)

    def test_foreign_qubit_rejected(self):
        pool = AncillaAllocator()
        with pytest.raises(ValueError, match="not allocated"):
            pool.free([Qubit("other", 0)])

    def test_unminted_index_rejected(self):
        pool = AncillaAllocator()
        pool.alloc(1)
        with pytest.raises(ValueError, match="not allocated"):
            pool.free([Qubit("anc", 99)])

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            AncillaAllocator().alloc(-1)

    def test_alloc_zero(self):
        assert AncillaAllocator().alloc(0) == []

    def test_custom_prefix(self):
        pool = AncillaAllocator(prefix="scratch")
        assert pool.alloc_one() == Qubit("scratch", 0)

    def test_all_qubits(self):
        pool = AncillaAllocator()
        pool.alloc(3)
        assert pool.all_qubits() == [Qubit("anc", i) for i in range(3)]

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=20))
    def test_reuse_never_exceeds_live_peak(self, sizes):
        """Property: with free-after-use, HWM equals the max batch."""
        pool = AncillaAllocator()
        for size in sizes:
            batch = pool.alloc(size)
            pool.free(batch)
        assert pool.high_water_mark == max(sizes, default=0)
        assert pool.live_count == 0
