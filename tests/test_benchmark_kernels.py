"""Simulator-backed verification of the benchmark generators' kernels.

The scheduling experiments only need the benchmarks' *structure*, but
wherever a kernel is small enough to simulate we also verify it
computes what it claims: the BF NAND gate, TFP's edge oracle against
its adjacency matrix, Grover's phase oracle, and the SHA-1 round's
adder semantics.
"""


import pytest

from repro.benchmarks.boolean_formula import build_boolean_formula
from repro.benchmarks.grovers import build_grovers
from repro.benchmarks.sha1 import build_sha1
from repro.benchmarks.tfp import _edge_constant, build_tfp
from repro.core.qubits import Qubit
from repro.passes.flatten import flatten_program
from repro.sim.statevector import Simulator, circuit_unitary
from repro.sim.verify import truth_table


class TestBFNandGate:
    def test_nand_truth_table(self):
        prog = build_boolean_formula(x=2, y=2)
        nand = prog.module("nand_gate")
        a, b, out = nand.params
        tbl = truth_table(
            list(nand.operations()), [a, b], [out],
            all_qubits=[a, b, out],
        )
        for v in range(4):
            av, bv = v & 1, (v >> 1) & 1
            assert tbl[v] == (1 - (av & bv))

    def test_formula_evaluation_2x2(self):
        """The 4-leaf NAND tree: result = NAND(NAND(b0,b1), NAND(b2,b3))."""
        prog = build_boolean_formula(x=2, y=2)
        flat = flatten_program(prog, fth=2 ** 62).program
        # Reconstruct just the evaluate_formula module flattened.
        ev = prog.module("evaluate_formula")
        # Inline nand_gate calls manually via the flatten helper.
        from repro.passes.flatten import inline_call
        from repro.core.operation import CallSite

        ops = []
        for idx, stmt in enumerate(ev.body):
            if isinstance(stmt, CallSite):
                ops.extend(
                    inline_call(stmt, prog.module("nand_gate"), f"i{idx}")
                )
            else:
                ops.append(stmt)
        board = [q for q in ev.params if q.register == "board"]
        result = [q for q in ev.params if q.register == "result"][0]
        universe = list(dict.fromkeys(
            board + [result] + [q for op in ops for q in op.qubits]
        ))
        tbl = truth_table(ops, board, [result], all_qubits=universe)
        for v in range(16):
            bits = [(v >> i) & 1 for i in range(4)]
            expect = 1 - (
                (1 - (bits[0] & bits[1])) & (1 - (bits[2] & bits[3]))
            )
            assert tbl[v] == expect, (bits, tbl[v], expect)


class TestTFPEdgeOracle:
    def test_edge_oracle_matches_adjacency(self):
        n = 4  # w = 2 -> 5 qubits + ancillas: simulable
        prog = build_tfp(n=n, iterations=1)
        edge = prog.module("edge_oracle")
        u = [q for q in edge.params if q.register == "u"]
        v = [q for q in edge.params if q.register == "v"]
        flag = [q for q in edge.params if q.register == "flag"][0]
        ops = list(edge.operations())
        universe = list(dict.fromkeys(
            u + v + [flag] + [q for op in ops for q in op.qubits]
        ))
        adjacency = _edge_constant(n)
        tbl = truth_table(ops, u + v, [flag], all_qubits=universe)
        for uv in range(n):
            for vv in range(n):
                inp = uv | (vv << 2)
                expect = (adjacency >> (uv * n + vv)) & 1
                assert tbl[inp] == expect, (uv, vv)

    def test_adjacency_constant_is_irreflexive(self):
        for n in (3, 4, 5):
            adj = _edge_constant(n)
            for i in range(n):
                assert not (adj >> (i * n + i)) & 1

    def test_adjacency_is_dense(self):
        n = 5
        adj = _edge_constant(n)
        edges = bin(adj).count("1")
        assert edges > n * (n - 1) / 2  # denser than half


class TestGroverOracle:
    def test_oracle_phase_flips_only_marked(self):
        n = 3
        prog = build_grovers(n=n, marked=0b101, iterations=1)
        oracle = prog.module("oracle")
        ops = list(oracle.operations())
        qs = list(oracle.params)
        universe = list(dict.fromkeys(
            qs + [q for op in ops for q in op.qubits]
        ))
        mat = circuit_unitary(ops, universe)
        dim_main = 2 ** n
        for state in range(dim_main):
            # ancillas start/end at 0 -> inspect the (state, state) entry
            amp = mat[state, state]
            if state == 0b101:
                assert amp == pytest.approx(-1)
            else:
                assert amp == pytest.approx(1)

    def test_diffusion_is_inversion_about_mean(self):
        n = 3
        prog = build_grovers(n=n, iterations=1)
        diffuse = prog.module("diffuse")
        ops = list(diffuse.operations())
        qs = list(diffuse.params)
        universe = list(dict.fromkeys(
            qs + [q for op in ops for q in op.qubits]
        ))
        mat = circuit_unitary(ops, universe)
        dim = 2 ** n
        # On the main register (ancillas clean), D = 2|s><s| - I up to
        # global phase: all off-diagonal entries equal 2/N, diagonal
        # 2/N - 1.
        block = mat[:dim, :dim]
        phase = block[0, 1] / abs(block[0, 1])
        block = block / phase
        for i in range(dim):
            for j in range(dim):
                expect = 2 / dim - (1.0 if i == j else 0.0)
                assert block[i, j] == pytest.approx(expect, abs=1e-9)

    def test_one_iteration_amplifies_marked(self):
        n = 3
        marked = 0b011
        prog = build_grovers(n=n, marked=marked, iterations=1)
        flat = flatten_program(prog, fth=2 ** 62).program
        entry = flat.entry_module
        ops = [
            op for op in entry.operations()
            if op.gate not in ("MeasZ", "MeasX")
        ]
        qs = [Qubit("q", i) for i in range(n)]
        universe = list(dict.fromkeys(
            qs + [q for op in ops for q in op.qubits]
        ))
        sim = Simulator(universe)
        sim.run(ops)
        p_marked = sim.probability_of(
            {qs[i]: (marked >> i) & 1 for i in range(n)}
        )
        # One Grover iteration on N=8: ~78% success vs 12.5% uniform.
        assert p_marked > 0.7


class TestSha1Round:
    def test_round_updates_e_correctly(self):
        """round_q1 (Parity quarter) at word_bits=2: check
        e += rotl(a,5) + parity(b,c,d) + K + w  (mod 4) on basis
        states, with a..d and w preserved."""
        w_bits = 2
        prog = build_sha1(n=8, word_bits=w_bits, rounds=4,
                          grover_iterations=1)
        rnd = prog.module("round_q1")
        regs = {}
        for name in ("a", "b", "c", "d", "e", "wt"):
            regs[name] = [q for q in rnd.params if q.register == name]
        # Inline the f_parity calls.
        from repro.core.operation import CallSite
        from repro.passes.flatten import inline_call

        ops = []
        for idx, stmt in enumerate(rnd.body):
            if isinstance(stmt, CallSite):
                ops.extend(
                    inline_call(
                        stmt, prog.module(stmt.callee), f"i{idx}"
                    )
                )
            else:
                ops.append(stmt)
        universe = list(dict.fromkeys(
            [q for r in regs.values() for q in r]
            + [q for op in ops for q in op.qubits]
        ))
        assert len(universe) <= 20
        from repro.benchmarks.sha1 import _ROUND_K

        k_const = _ROUND_K[1] % (2 ** w_bits)
        rotl5 = lambda x: ((x << (5 % w_bits)) | (x >> (w_bits - 5 % w_bits))) & (2 ** w_bits - 1) if 5 % w_bits else x

        rng_cases = [
            (1, 2, 3, 0, 1, 2),
            (3, 1, 0, 2, 3, 1),
            (0, 0, 0, 0, 0, 0),
            (2, 3, 1, 1, 2, 3),
        ]
        for av, bv, cv, dv, ev, wv in rng_cases:
            sim = Simulator(universe)
            assignment = {}
            for name, val in zip(
                ("a", "b", "c", "d", "e", "wt"),
                (av, bv, cv, dv, ev, wv),
            ):
                for i, q in enumerate(regs[name]):
                    assignment[q] = (val >> i) & 1
            sim.set_bits(assignment)
            sim.run(ops)
            state = sim.basis_state()

            def read(name):
                return sum(
                    ((state >> sim.index[q]) & 1) << i
                    for i, q in enumerate(regs[name])
                )

            f = bv ^ cv ^ dv
            expect_e = (ev + rotl5(av) + f + k_const + wv) % (2 ** w_bits)
            assert read("e") == expect_e, (av, bv, cv, dv, ev, wv)
            for name, val in zip(("a", "b", "c", "d", "wt"),
                                 (av, bv, cv, dv, wv)):
                assert read(name) == val, name
