"""Golden snapshots of the paper-figure data at small configurations.

The figure benches (``benchmarks/bench_fig*.py``) assert *shapes* —
"flattening beats modular", "GSE gains most" — so a change that shifts
every number while preserving the shape sails through them. These tests
freeze the actual numbers for cheap configurations (k = 2) into
``tests/golden/figdata.json`` and fail on any drift.

When a drift is intentional (a scheduler change that legitimately moves
the figures), regenerate the snapshot and review the diff::

    python -m pytest tests/test_golden_figdata.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS, benchmark_names
from repro.core import ProgramBuilder
from repro.toolflow import SchedulerConfig, compile_and_schedule

GOLDEN = Path(__file__).parent / "golden" / "figdata.json"
ALGORITHMS = ("rcp", "lpfs")


def _two_toffoli_program():
    """Figure 4's example: two Toffolis sharing qubit a, modularized."""
    pb = ProgramBuilder()
    tof = pb.module("toffoli_box")
    p = tof.param_register("p", 3)
    tof.toffoli(p[0], p[1], p[2])
    main = pb.module("main")
    q = main.register("q", 5)
    main.call("toffoli_box", [q[0], q[1], q[2]])
    main.call("toffoli_box", [q[0], q[3], q[4]])
    return pb.build("main")


def _fig4():
    """Modular vs flattened schedule lengths on Multi-SIMD(2, inf)."""
    out = {}
    for alg in ALGORITHMS:
        out[alg] = {}
        for label, fth in (("modular", 0), ("flattened", 2 ** 62)):
            result = compile_and_schedule(
                _two_toffoli_program(),
                MultiSIMD(k=2),
                SchedulerConfig(alg),
                fth=fth,
            )
            out[alg][label] = result.schedule_length
    return out


def _fig6_fig7():
    """Per-benchmark k=2 speedups (Figure 6) and communication-aware
    speedups (Figure 7), off one compile per (benchmark, scheduler)."""
    fig6 = {}
    fig7 = {}
    for key in benchmark_names():
        spec = BENCHMARKS[key]
        program = spec.build()
        fig6[key] = {}
        fig7[key] = {}
        for alg in ALGORITHMS:
            result = compile_and_schedule(
                program,
                MultiSIMD(k=2),
                SchedulerConfig(alg),
                fth=spec.fth,
            )
            fig6[key][alg] = {
                "schedule_length": result.schedule_length,
                "parallel_speedup": round(result.parallel_speedup, 6),
            }
            fig7[key][alg] = round(result.comm_aware_speedup, 6)
        fig6[key]["cp_speedup"] = round(result.cp_speedup, 6)
    return fig6, fig7


def _compute_figdata():
    fig6, fig7 = _fig6_fig7()
    return {"fig4": _fig4(), "fig6": fig6, "fig7": fig7}


def test_figdata_matches_golden(update_golden):
    current = _compute_figdata()
    if update_golden:
        GOLDEN.parent.mkdir(exist_ok=True)
        GOLDEN.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
    assert GOLDEN.exists(), (
        "no golden snapshot; run pytest tests/test_golden_figdata.py "
        "--update-golden"
    )
    golden = json.loads(GOLDEN.read_text())
    assert current == golden, (
        "figure data drifted from tests/golden/figdata.json; if "
        "intentional, regenerate with --update-golden and review"
    )


def test_fig4_paper_shape():
    """The frozen numbers still tell the paper's story: flattening
    exposes the inter-blackbox parallelism (21 < 24 cycles)."""
    fig4 = _fig4()
    for alg in ALGORITHMS:
        assert fig4[alg]["flattened"] < fig4[alg]["modular"]
        assert fig4[alg]["flattened"] <= 24
