"""Round-trip tests for the report serializers the cache is built on."""

import json
import math

import pytest

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.core import ProgramBuilder
from repro.core.source import SourceLocation
from repro.sched.report import (
    compile_result_from_dict,
    compile_result_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.toolflow import SchedulerConfig, compile_and_schedule


@pytest.fixture(scope="module")
def bf_result():
    spec = BENCHMARKS["BF"]
    return compile_and_schedule(
        spec.build(), MultiSIMD(k=2), SchedulerConfig("lpfs"),
        fth=spec.fth,
    )


def _small_result(**kwargs):
    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", 4)
    main.toffoli(q[0], q[1], q[2]).toffoli(q[0], q[2], q[3])
    return compile_and_schedule(pb.build("main"), MultiSIMD(k=2), **kwargs)


def _leaf_schedule(result):
    """Any retained fine-grained schedule (entry may be hierarchical)."""
    return next(iter(sorted(result.schedules.items())))[1]


class TestScheduleRoundTrip:
    def test_roundtrip_preserves_structure(self, bf_result):
        sched = _leaf_schedule(bf_result)
        data = json.loads(json.dumps(schedule_to_dict(sched)))
        back = schedule_from_dict(data)
        assert back.k == sched.k
        assert back.d == sched.d
        assert back.algorithm == sched.algorithm
        assert back.length == sched.length
        assert back.op_count == sched.op_count
        assert back.max_width == sched.max_width
        assert back.teleport_moves == sched.teleport_moves
        assert back.local_moves == sched.local_moves

    def test_roundtrip_preserves_placement(self, bf_result):
        sched = _leaf_schedule(bf_result)
        back = schedule_from_dict(schedule_to_dict(sched))
        for ts_a, ts_b in zip(sched.timesteps, back.timesteps):
            assert ts_a.regions == ts_b.regions
            assert ts_a.moves == ts_b.moves
        for n in range(sched.dag.n):
            assert back.operation(n) == sched.operation(n)

    def test_reexport_is_identical(self, bf_result):
        sched = _leaf_schedule(bf_result)
        data = schedule_to_dict(sched)
        assert schedule_to_dict(schedule_from_dict(data)) == data


class TestCompileResultRoundTrip:
    def test_metrics_survive(self, bf_result):
        data = json.loads(json.dumps(compile_result_to_dict(bf_result)))
        back = compile_result_from_dict(data)
        assert back.total_gates == bf_result.total_gates
        assert back.critical_path == bf_result.critical_path
        assert back.schedule_length == bf_result.schedule_length
        assert back.runtime == bf_result.runtime
        assert back.naive_runtime == bf_result.naive_runtime
        assert back.flattened_percent == bf_result.flattened_percent
        assert back.parallel_speedup == pytest.approx(
            bf_result.parallel_speedup
        )
        assert back.cp_speedup == pytest.approx(bf_result.cp_speedup)
        assert back.comm_aware_speedup == pytest.approx(
            bf_result.comm_aware_speedup
        )

    def test_machine_and_scheduler_survive(self, bf_result):
        back = compile_result_from_dict(
            compile_result_to_dict(bf_result)
        )
        assert back.machine == bf_result.machine
        assert back.scheduler == bf_result.scheduler

    def test_profiles_and_comm_stats_survive(self, bf_result):
        back = compile_result_from_dict(
            compile_result_to_dict(bf_result)
        )
        assert set(back.profiles) == set(bf_result.profiles)
        for name, p in bf_result.profiles.items():
            q = back.profiles[name]
            assert q.is_leaf == p.is_leaf
            assert q.length == p.length
            assert q.runtime == p.runtime
            assert q.comm == p.comm

    def test_call_graph_skeleton_survives(self, bf_result):
        # The skeleton covers the *profiled* (reachable) modules; the
        # flattened source program may retain unreachable definitions.
        back = compile_result_from_dict(
            compile_result_to_dict(bf_result)
        )
        assert back.program.entry == bf_result.program.entry
        assert set(back.program.modules) == set(bf_result.profiles)
        for name in back.program.modules:
            assert (
                back.program.module(name).callees()
                == bf_result.program.module(name).callees()
            )
        assert (
            back.program.topological_order()
            == bf_result.program.topological_order()
        )

    def test_schedules_omitted_by_default(self, bf_result):
        data = compile_result_to_dict(bf_result)
        assert "schedules" not in data
        assert compile_result_from_dict(data).schedules == {}

    def test_schedules_included_on_request(self, bf_result):
        data = compile_result_to_dict(
            bf_result, include_schedules=True
        )
        back = compile_result_from_dict(data)
        assert set(back.schedules) == set(bf_result.schedules)
        for name, sched in bf_result.schedules.items():
            assert back.schedules[name].length == sched.length

    def test_infinite_local_memory_survives(self):
        result = _small_result()
        data = compile_result_to_dict(result)
        # d=None (unbounded) is exported as "inf" and parsed back.
        assert data["machine"]["d"] == "inf"
        back = compile_result_from_dict(json.loads(json.dumps(data)))
        assert back.machine.d is None

        inf_result = compile_and_schedule(
            result.program, MultiSIMD(k=2, local_memory=math.inf),
            decompose=False,
        )
        back = compile_result_from_dict(
            json.loads(json.dumps(compile_result_to_dict(inf_result)))
        )
        assert back.machine.local_memory == math.inf

    def test_diagnostics_survive(self):
        result = _small_result(strict=True)
        data = compile_result_to_dict(result)
        back = compile_result_from_dict(json.loads(json.dumps(data)))
        assert back.diagnostics == result.diagnostics


class TestDiagnosticFromDict:
    def test_roundtrip(self):
        diag = Diagnostic(
            code="QL001",
            severity=Severity.WARNING,
            message="qubit q[0] never measured",
            module="main",
            loc=SourceLocation(3, 7, "f.scd"),
        )
        assert Diagnostic.from_dict(diag.to_dict()) == diag

    def test_roundtrip_without_location(self):
        diag = Diagnostic(
            code="QL002",
            severity=Severity.ERROR,
            message="x",
        )
        back = Diagnostic.from_dict(json.loads(json.dumps(diag.to_dict())))
        assert back == diag
