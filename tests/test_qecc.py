"""Tests for the concatenated-code QECC overhead model."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.qecc import (
    ConcatenatedCode,
    qecc_requirement,
    speedup_leverage,
)

CODE = ConcatenatedCode()


class TestCode:
    def test_level_zero_is_physical(self):
        assert CODE.logical_error(0, 1e-4) == pytest.approx(1e-4)

    def test_doubly_exponential_suppression(self):
        p = 1e-4
        e1 = CODE.logical_error(1, p)
        e2 = CODE.logical_error(2, p)
        assert e1 == pytest.approx(CODE.threshold * (p / CODE.threshold) ** 2)
        assert e2 == pytest.approx(CODE.threshold * (p / CODE.threshold) ** 4)
        assert e2 < e1 < p

    def test_above_threshold_no_suppression(self):
        assert CODE.logical_error(3, 0.05) == 0.05
        with pytest.raises(ValueError, match="threshold"):
            CODE.required_level(1e-9, 0.05)

    def test_required_level_monotone_in_target(self):
        lax = CODE.required_level(1e-5, 1e-4)
        strict = CODE.required_level(1e-15, 1e-4)
        assert strict >= lax

    def test_required_level_achieves_target(self):
        for target in (1e-6, 1e-10, 1e-14):
            level = CODE.required_level(target, 1e-4)
            assert CODE.logical_error(level, 1e-4) <= target
            if level > 0:
                assert CODE.logical_error(level - 1, 1e-4) > target

    def test_overheads_exponential(self):
        assert CODE.qubit_overhead(2) == 49
        assert CODE.time_overhead(2) == pytest.approx(36.0)

    def test_max_level_guard(self):
        small = ConcatenatedCode(max_level=1)
        with pytest.raises(ValueError, match="levels"):
            small.required_level(1e-300, 9e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConcatenatedCode(qubits_per_level=1)
        with pytest.raises(ValueError):
            ConcatenatedCode(time_per_level=1.0)
        with pytest.raises(ValueError):
            ConcatenatedCode(threshold=2.0)


class TestRequirement:
    def test_bigger_programs_need_deeper_codes(self):
        small = qecc_requirement(10 ** 6)
        huge = qecc_requirement(10 ** 12)
        assert huge.level >= small.level
        assert huge.per_gate_budget < small.per_gate_budget

    def test_budget_scales_with_success_target(self):
        lax = qecc_requirement(10 ** 9, target_success=0.5)
        strict = qecc_requirement(10 ** 9, target_success=0.999)
        assert strict.per_gate_budget < lax.per_gate_budget
        assert strict.level >= lax.level

    def test_physical_figures(self):
        req = qecc_requirement(
            10 ** 9, logical_qubits=100, logical_time=10 ** 7
        )
        assert req.physical_qubits == 100 * req.qubit_overhead
        assert req.physical_time == pytest.approx(
            10 ** 7 * req.time_overhead
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            qecc_requirement(0)


class TestLeverage:
    def test_logical_speedup_reported(self):
        rep = speedup_leverage(10 ** 10, 10 ** 9, logical_qubits=100)
        assert rep.logical_speedup == pytest.approx(10.0)
        assert rep.physical_speedup >= rep.logical_speedup

    def test_level_drop_amplifies_speedup(self):
        """Find a runtime pair straddling a level boundary and check
        the physical speedup exceeds the logical one."""
        base_rt = 10 ** 11
        fast_rt = 10 ** 7
        rep = speedup_leverage(base_rt, fast_rt, logical_qubits=1000)
        if rep.level_dropped:
            assert rep.physical_speedup > rep.logical_speedup
            assert rep.qubit_saving > 1.0

    def test_no_level_drop_keeps_logical_speedup(self):
        rep = speedup_leverage(1000, 999, logical_qubits=10)
        assert rep.baseline.level == rep.accelerated.level
        assert rep.physical_speedup == pytest.approx(
            rep.logical_speedup
        )

    def test_faster_must_be_faster(self):
        with pytest.raises(ValueError):
            speedup_leverage(100, 200, logical_qubits=1)

    @given(
        st.integers(10 ** 3, 10 ** 14),
        st.floats(1.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_physical_speedup_never_below_logical(self, base, factor):
        fast = max(1, int(base / factor))
        rep = speedup_leverage(base, fast, logical_qubits=100)
        assert rep.physical_speedup >= rep.logical_speedup - 1e-9
        assert rep.qubit_saving >= 1.0
