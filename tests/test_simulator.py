"""Unit tests for the statevector simulator."""


import numpy as np
import pytest

from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sim.statevector import Simulator, circuit_unitary, gate_matrix

Q = [Qubit("q", i) for i in range(4)]


class TestGateMatrices:
    @pytest.mark.parametrize(
        "gate,dim",
        [("X", 2), ("H", 2), ("T", 2), ("CNOT", 4), ("CZ", 4),
         ("SWAP", 4), ("Toffoli", 8), ("Fredkin", 8), ("CCZ", 8)],
    )
    def test_dimensions_and_unitarity(self, gate, dim):
        u = gate_matrix(gate)
        assert u.shape == (dim, dim)
        assert np.allclose(u.conj().T @ u, np.eye(dim), atol=1e-12)

    @pytest.mark.parametrize("gate", ["Rz", "Rx", "Ry", "CRz", "CRx"])
    def test_rotation_unitarity(self, gate):
        u = gate_matrix(gate, 0.7)
        dim = u.shape[0]
        assert np.allclose(u.conj().T @ u, np.eye(dim), atol=1e-12)

    def test_t_squared_is_s(self):
        t, s = gate_matrix("T"), gate_matrix("S")
        assert np.allclose(t @ t, s, atol=1e-12)

    def test_s_squared_is_z(self):
        s, z = gate_matrix("S"), gate_matrix("Z")
        assert np.allclose(s @ s, z, atol=1e-12)

    def test_hxh_is_z(self):
        h, x, z = gate_matrix("H"), gate_matrix("X"), gate_matrix("Z")
        assert np.allclose(h @ x @ h, z, atol=1e-12)

    def test_non_unitary_raises(self):
        with pytest.raises(ValueError):
            gate_matrix("MeasZ")


class TestSimulator:
    def test_initial_state_all_zero(self):
        sim = Simulator(Q[:2])
        assert sim.basis_state() == 0

    def test_x_flips_bit(self):
        sim = Simulator(Q[:2])
        sim.apply(Operation("X", (Q[1],)))
        assert sim.basis_state() == 0b10
        assert sim.bit_of(Q[1]) == 1
        assert sim.bit_of(Q[0]) == 0

    def test_cnot_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                sim = Simulator(Q[:2])
                sim.set_bits({Q[0]: a, Q[1]: b})
                sim.apply(Operation("CNOT", (Q[0], Q[1])))
                assert sim.bit_of(Q[1]) == a ^ b
                assert sim.bit_of(Q[0]) == a

    def test_toffoli_truth_table(self):
        for bits in range(8):
            sim = Simulator(Q[:3])
            sim.reset(bits)
            sim.apply(Operation("Toffoli", (Q[0], Q[1], Q[2])))
            a, b, c = bits & 1, (bits >> 1) & 1, (bits >> 2) & 1
            assert sim.bit_of(Q[2]) == c ^ (a & b)

    def test_fredkin_swaps_under_control(self):
        sim = Simulator(Q[:3])
        sim.set_bits({Q[0]: 1, Q[1]: 1, Q[2]: 0})
        sim.apply(Operation("Fredkin", (Q[0], Q[1], Q[2])))
        assert (sim.bit_of(Q[1]), sim.bit_of(Q[2])) == (0, 1)

    def test_fredkin_idle_without_control(self):
        sim = Simulator(Q[:3])
        sim.set_bits({Q[1]: 1})
        sim.apply(Operation("Fredkin", (Q[0], Q[1], Q[2])))
        assert (sim.bit_of(Q[1]), sim.bit_of(Q[2])) == (1, 0)

    def test_hadamard_superposition(self):
        sim = Simulator(Q[:1])
        sim.apply(Operation("H", (Q[0],)))
        probs = sim.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            sim.basis_state()

    def test_bell_state_probability(self):
        sim = Simulator(Q[:2])
        sim.run([
            Operation("H", (Q[0],)),
            Operation("CNOT", (Q[0], Q[1])),
        ])
        assert sim.probability_of({Q[0]: 0, Q[1]: 0}) == pytest.approx(0.5)
        assert sim.probability_of({Q[0]: 1, Q[1]: 1}) == pytest.approx(0.5)
        assert sim.probability_of({Q[0]: 0, Q[1]: 1}) == pytest.approx(0.0)

    def test_measure_collapses(self):
        rng = np.random.default_rng(7)
        sim = Simulator(Q[:2])
        sim.run([
            Operation("H", (Q[0],)),
            Operation("CNOT", (Q[0], Q[1])),
        ])
        outcome = sim.measure(Q[0], rng=rng)
        # After measuring one half of a Bell pair, the other matches.
        assert sim.bit_of(Q[1]) == outcome

    def test_prep_z_resets(self):
        sim = Simulator(Q[:1])
        sim.apply(Operation("X", (Q[0],)))
        sim.apply(Operation("PrepZ", (Q[0],)))
        assert sim.basis_state() == 0

    def test_prep_x_gives_plus(self):
        sim = Simulator(Q[:1])
        sim.apply(Operation("PrepX", (Q[0],)))
        assert sim.probability_of({Q[0]: 1}) == pytest.approx(0.5)

    def test_measure_op_raises(self):
        sim = Simulator(Q[:1])
        with pytest.raises(ValueError, match="measure"):
            sim.apply(Operation("MeasZ", (Q[0],)))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Simulator([Q[0], Q[0]])

    def test_qubit_limit(self):
        with pytest.raises(ValueError, match="limit"):
            Simulator([Qubit("big", i) for i in range(23)])

    def test_reset_out_of_range(self):
        sim = Simulator(Q[:2])
        with pytest.raises(ValueError):
            sim.reset(4)

    def test_set_bits_rejects_non_binary(self):
        sim = Simulator(Q[:1])
        with pytest.raises(ValueError):
            sim.set_bits({Q[0]: 2})

    def test_norm_preserved_by_unitaries(self):
        sim = Simulator(Q[:3])
        sim.run([
            Operation("H", (Q[0],)),
            Operation("CNOT", (Q[0], Q[1])),
            Operation("T", (Q[1],)),
            Operation("Toffoli", (Q[0], Q[1], Q[2])),
            Operation("Rz", (Q[2],), 0.3),
        ])
        assert np.linalg.norm(sim.state) == pytest.approx(1.0)


class TestCircuitUnitary:
    def test_identity_circuit(self):
        u = circuit_unitary([], Q[:2])
        assert np.allclose(u, np.eye(4))

    def test_x_circuit(self):
        u = circuit_unitary([Operation("X", (Q[0],))], Q[:1])
        assert np.allclose(u, gate_matrix("X"))

    def test_composition_order(self):
        # Circuit [H, X] applies H first: U = X @ H.
        u = circuit_unitary(
            [Operation("H", (Q[0],)), Operation("X", (Q[0],))], Q[:1]
        )
        assert np.allclose(u, gate_matrix("X") @ gate_matrix("H"))

    def test_operand_order_convention(self):
        # CNOT(q1, q0): control is q1 (bit 1), target q0 (bit 0).
        u = circuit_unitary([Operation("CNOT", (Q[1], Q[0]))], Q[:2])
        sim_state = u[:, 0b10]  # input: q1=1, q0=0
        assert np.argmax(np.abs(sim_state)) == 0b11
