"""Tests for the diagnostics engine (repro.analysis.diagnostics)."""

import json

import pytest

from repro.analysis import (
    AnalysisError,
    Diagnostic,
    DiagnosticSet,
    Severity,
    registered_rules,
)
from repro.core.source import SourceLocation


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_is_lowercase(self):
        assert str(Severity.WARNING) == "warning"
        assert str(Severity.ERROR) == "error"

    def test_from_name(self):
        assert Severity.from_name("error") is Severity.ERROR
        assert Severity.from_name("Info") is Severity.INFO

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_name("fatal")


class TestSourceLocation:
    def test_str_with_file(self):
        loc = SourceLocation(4, 7, "prog.scd")
        assert str(loc) == "prog.scd:4:7"

    def test_str_without_file(self):
        assert str(SourceLocation(4, 7)) == "4:7"

    def test_describe(self):
        assert "line 4" in SourceLocation(4, 7).describe()

    def test_ordering(self):
        assert SourceLocation(2, 9) < SourceLocation(3, 1)
        assert SourceLocation(3, 1) < SourceLocation(3, 2)

    def test_to_dict(self):
        d = SourceLocation(4, 7, "prog.scd").to_dict()
        assert d["line"] == 4
        assert d["column"] == 7
        assert d["file"] == "prog.scd"


class TestDiagnostic:
    def test_render_with_module_anchor(self):
        d = Diagnostic(
            code="QL001",
            severity=Severity.WARNING,
            message="something odd",
            module="main",
            stmt=3,
        )
        text = d.render()
        assert "warning[QL001]" in text
        assert "module 'main' stmt 3" in text
        assert "something odd" in text

    def test_render_prefers_source_location(self):
        d = Diagnostic(
            code="QL101",
            severity=Severity.ERROR,
            message="bad syntax",
            loc=SourceLocation(4, 7, "prog.scd"),
        )
        assert "prog.scd:4:7" in d.render()

    def test_to_dict_omits_unset_anchors(self):
        d = Diagnostic(
            code="QL005",
            severity=Severity.WARNING,
            message="m",
        )
        out = d.to_dict()
        assert out == {
            "code": "QL005",
            "severity": "warning",
            "message": "m",
        }

    def test_to_dict_includes_location(self):
        d = Diagnostic(
            code="QL101",
            severity=Severity.ERROR,
            message="m",
            loc=SourceLocation(2, 5, "x.scd"),
            rule="scaffold-parse",
        )
        out = d.to_dict()
        assert out["location"] == {
            "line": 2, "column": 5, "file": "x.scd",
        }
        assert out["rule"] == "scaffold-parse"


def _diag(code, sev, module=None, stmt=None, line=None):
    return Diagnostic(
        code=code,
        severity=sev,
        message=f"{code} message",
        module=module,
        stmt=stmt,
        loc=SourceLocation(line, 0) if line is not None else None,
    )


class TestDiagnosticSet:
    def test_container_protocol(self):
        ds = DiagnosticSet()
        assert not ds
        assert len(ds) == 0
        ds.add(_diag("QL001", Severity.WARNING))
        ds.extend([_diag("QL002", Severity.ERROR)])
        assert ds
        assert len(ds) == 2
        assert ds[0].code == "QL001"
        assert [d.code for d in ds] == ["QL001", "QL002"]

    def test_severity_queries(self):
        ds = DiagnosticSet([
            _diag("QL007", Severity.INFO),
            _diag("QL001", Severity.WARNING),
            _diag("QL002", Severity.ERROR),
        ])
        assert ds.has_errors
        assert ds.max_severity is Severity.ERROR
        assert [d.code for d in ds.errors] == ["QL002"]
        assert [d.code for d in ds.warnings] == ["QL001"]
        assert len(ds.at_least(Severity.WARNING)) == 2
        assert ds.counts() == {"info": 1, "warning": 1, "error": 1}

    def test_empty_set_queries(self):
        ds = DiagnosticSet()
        assert not ds.has_errors
        assert ds.max_severity is None
        assert ds.counts() == {"info": 0, "warning": 0, "error": 0}

    def test_codes_and_by_code(self):
        ds = DiagnosticSet([
            _diag("QL001", Severity.WARNING),
            _diag("QL001", Severity.WARNING),
            _diag("QL004", Severity.WARNING),
        ])
        assert ds.codes() == {"QL001", "QL004"}
        assert len(ds.by_code("QL001")) == 2

    def test_sorted_orders_by_module_then_location(self):
        ds = DiagnosticSet([
            _diag("QL001", Severity.WARNING, module="zeta", line=1),
            _diag("QL002", Severity.ERROR, module="alpha", line=9),
            _diag("QL003", Severity.WARNING, module="alpha", line=2),
        ])
        assert [d.code for d in ds.sorted()] == [
            "QL003", "QL002", "QL001",
        ]

    def test_render_summary(self):
        ds = DiagnosticSet([
            _diag("QL002", Severity.ERROR),
            _diag("QL001", Severity.WARNING),
            _diag("QL001", Severity.WARNING),
        ])
        text = ds.render()
        assert text.endswith("1 error, 2 warnings")

    def test_render_empty(self):
        assert DiagnosticSet().render() == "no findings"

    def test_to_json_round_trips(self):
        ds = DiagnosticSet([_diag("QL002", Severity.ERROR)])
        data = json.loads(ds.to_json())
        assert data["counts"]["error"] == 1
        assert data["diagnostics"][0]["code"] == "QL002"


class TestAnalysisError:
    def test_carries_diagnostics_and_stage(self):
        ds = DiagnosticSet([_diag("QL002", Severity.ERROR)])
        exc = AnalysisError(ds, stage="flattened")
        assert exc.diagnostics is ds
        assert exc.stage == "flattened"
        assert "1 error(s)" in str(exc)
        assert "flattened" in str(exc)
        assert "QL002" in str(exc)

    def test_truncates_long_error_lists(self):
        ds = DiagnosticSet(
            [_diag("QL002", Severity.ERROR) for _ in range(14)]
        )
        assert "... and 4 more" in str(AnalysisError(ds))


class TestRuleRegistry:
    def test_builtin_rules_registered(self):
        rules = registered_rules()
        codes = [r.code for r in rules]
        assert codes == sorted(codes)
        assert len(set(codes)) == len(codes)
        for expected in (
            "QL001", "QL002", "QL003", "QL004", "QL005", "QL006",
            "QL007",
        ):
            assert expected in codes

    def test_rules_carry_metadata(self):
        for r in registered_rules():
            assert r.name
            assert r.summary
            assert isinstance(r.severity, Severity)
