"""Tests for the fine-grained schedulers: sequential, RCP, LPFS.

Includes property-based checks that both list schedulers always produce
valid Multi-SIMD schedules on random DAGs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sched.lpfs import schedule_lpfs
from repro.sched.rcp import RCPWeights, schedule_rcp
from repro.sched.sequential import schedule_sequential

Q = [Qubit("q", i) for i in range(12)]


def chain_dag(n=10):
    return DependenceDAG([Operation("T", (Q[0],)) for _ in range(n)])


def parallel_dag(width=8):
    return DependenceDAG([Operation("H", (Q[i],)) for i in range(width)])


def mixed_dag():
    """Two toffoli-decomposition-like interleaved chains + stragglers."""
    ops = []
    for i in range(6):
        ops.append(Operation("T" if i % 2 else "H", (Q[0],)))
        ops.append(Operation("CNOT", (Q[1], Q[2])))
    ops += [Operation("X", (Q[3],)), Operation("X", (Q[4],))]
    return DependenceDAG(ops)


class TestSequential:
    def test_one_op_per_timestep(self):
        dag = chain_dag(5)
        sched = schedule_sequential(dag)
        sched.validate()
        assert sched.length == 5
        assert sched.max_width == 1

    def test_empty_dag(self):
        sched = schedule_sequential(DependenceDAG([]))
        assert sched.length == 0


class TestRCP:
    def test_valid_on_chain(self):
        sched = schedule_rcp(chain_dag(10), k=4)
        sched.validate()
        assert sched.length == 10  # serial chain can't be compressed

    def test_simd_batches_same_type(self):
        sched = schedule_rcp(parallel_dag(8), k=2)
        sched.validate()
        # All 8 H ops are independent and same-type: one timestep.
        assert sched.length == 1
        assert len(sched.timesteps[0].regions[0]) + len(
            sched.timesteps[0].regions[1]
        ) == 8

    def test_d_cap_respected(self):
        sched = schedule_rcp(parallel_dag(8), k=1, d=3)
        sched.validate()
        assert sched.length == 3  # ceil(8/3)

    def test_mixed_types_use_multiple_regions(self):
        ops = [Operation("H", (Q[i],)) for i in range(4)]
        ops += [Operation("T", (Q[i + 4],)) for i in range(4)]
        sched = schedule_rcp(DependenceDAG(ops), k=2)
        sched.validate()
        assert sched.length == 1
        assert sched.max_width == 2

    def test_k1_serializes_type_groups(self):
        ops = [Operation("H", (Q[0],)), Operation("T", (Q[1],))]
        sched = schedule_rcp(DependenceDAG(ops), k=1)
        sched.validate()
        assert sched.length == 2

    def test_locality_weight_prefers_resident_region(self):
        # CNOT chain alternating qubits: with w_dist high, ops should
        # stay in one region (fewer region switches).
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("CNOT", (Q[1], Q[2])),
            Operation("CNOT", (Q[2], Q[0])),
        ]
        sched = schedule_rcp(
            DependenceDAG(ops), k=4,
            weights=RCPWeights(w_op=0.0, w_dist=10.0, w_slack=0.0),
        )
        sched.validate()
        placement = sched.placement()
        regions = {placement[i][1] for i in range(3)}
        assert len(regions) == 1

    def test_schedule_algorithm_label(self):
        assert schedule_rcp(chain_dag(2), k=1).algorithm == "rcp"


class TestLPFS:
    def test_valid_on_chain(self):
        sched = schedule_lpfs(chain_dag(10), k=2)
        sched.validate()
        assert sched.length == 10

    def test_parallel_ops_fill_regions(self):
        sched = schedule_lpfs(parallel_dag(8), k=2)
        sched.validate()
        assert sched.length <= 2

    def test_l_bounds_checked(self):
        with pytest.raises(ValueError):
            schedule_lpfs(chain_dag(3), k=2, l=3)
        with pytest.raises(ValueError):
            schedule_lpfs(chain_dag(3), k=2, l=0)

    def test_longest_path_pinned_to_one_region(self):
        """The critical chain must execute entirely in region 0."""
        ops = [Operation("T", (Q[0],)) for _ in range(6)]
        ops.append(Operation("H", (Q[1],)))
        sched = schedule_lpfs(DependenceDAG(ops), k=2, simd=False)
        sched.validate()
        placement = sched.placement()
        chain_regions = {placement[i][1] for i in range(6)}
        assert chain_regions == {0}

    def test_simd_off_no_fill_in_path_region(self):
        ops = [Operation("T", (Q[0],)) for _ in range(4)]
        ops += [Operation("T", (Q[1],)) for _ in range(2)]
        sched = schedule_lpfs(DependenceDAG(ops), k=2, simd=False)
        sched.validate()
        # Free T ops must be in region 1, not merged into region 0.
        placement = sched.placement()
        assert {placement[i][1] for i in range(4)} == {0}
        assert {placement[i][1] for i in (4, 5)} == {1}

    def test_simd_on_merges_same_type(self):
        ops = [Operation("T", (Q[0],)) for _ in range(4)]
        ops += [Operation("T", (Q[1],)) for _ in range(2)]
        sched = schedule_lpfs(DependenceDAG(ops), k=1, simd=True)
        sched.validate()
        # With one region, SIMD fill packs the free T's alongside the
        # path T's: length 4, not 6.
        assert sched.length == 4

    def test_refill_reseeds_after_path_completes(self):
        # Path 1 short; path 2 appears after refill.
        ops = [Operation("T", (Q[0],)) for _ in range(2)]
        ops += [Operation("H", (Q[1],)) for _ in range(4)]
        sched = schedule_lpfs(
            DependenceDAG(ops), k=1, simd=False, refill=True
        )
        sched.validate()
        assert sched.length == 6

    def test_k_equals_l_simd_off_fallback_completes(self):
        # Free ops with no region to run in: progress guard must
        # complete the schedule anyway.
        ops = [Operation("T", (Q[0],)) for _ in range(3)]
        ops += [Operation("H", (Q[1],))]
        sched = schedule_lpfs(
            DependenceDAG(ops), k=1, l=1, simd=False, refill=False
        )
        sched.validate()

    def test_d_cap(self):
        sched = schedule_lpfs(parallel_dag(9), k=1, d=4)
        sched.validate()
        assert all(
            len(ts.regions[0]) <= 4 for ts in sched.timesteps
        )

    def test_two_paths(self):
        ops = [Operation("T", (Q[0],)) for _ in range(5)]
        ops += [Operation("H", (Q[1],)) for _ in range(5)]
        sched = schedule_lpfs(DependenceDAG(ops), k=2, l=2, simd=False)
        sched.validate()
        assert sched.length == 5

    def test_label(self):
        assert schedule_lpfs(chain_dag(2), k=1).algorithm == "lpfs"


# --- property-based: random DAGs ------------------------------------------

@st.composite
def random_dag(draw):
    n_qubits = draw(st.integers(2, 6))
    qs = [Qubit("q", i) for i in range(n_qubits)]
    n_ops = draw(st.integers(1, 40))
    gates1 = ["H", "T", "X", "S"]
    ops = []
    for _ in range(n_ops):
        if draw(st.booleans()):
            ops.append(
                Operation(draw(st.sampled_from(gates1)),
                          (draw(st.sampled_from(qs)),))
            )
        else:
            pair = draw(
                st.lists(st.sampled_from(qs), min_size=2, max_size=2,
                         unique=True)
            )
            ops.append(Operation("CNOT", tuple(pair)))
    return DependenceDAG(ops)


class TestSchedulerProperties:
    @given(random_dag(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_rcp_always_valid(self, dag, k):
        sched = schedule_rcp(dag, k=k)
        sched.validate()
        assert sched.length >= dag.critical_path_length()

    @given(random_dag(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_lpfs_always_valid(self, dag, k):
        sched = schedule_lpfs(dag, k=k)
        sched.validate()
        assert sched.length >= dag.critical_path_length()

    @given(random_dag(), st.integers(1, 3), st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_lpfs_option_combinations_valid(self, dag, k, simd, refill):
        sched = schedule_lpfs(dag, k=k, simd=simd, refill=refill)
        sched.validate()

    @given(random_dag(), st.integers(1, 3), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_d_cap_property(self, dag, k, d):
        for fn in (schedule_rcp, schedule_lpfs):
            sched = fn(dag, k=k, d=d)
            sched.validate()

    @given(random_dag())
    @settings(max_examples=30, deadline=None)
    def test_k1_no_worse_than_sequential(self, dag):
        seq = schedule_sequential(dag)
        for fn in (schedule_rcp, schedule_lpfs):
            assert fn(dag, k=1).length <= seq.length


class TestRCPTieBreak:
    """The `_max_weight_simd_optype` tie-break is total: equal-weight
    candidates resolve by (gate name, region) lexicographically, so the
    choice never depends on ready-list or dict iteration order."""

    def _two_chain_dag(self):
        # Two independent equal-length chains with different mnemonics:
        # H and T tie in longest-path weight at every step.
        ops = []
        for _ in range(3):
            ops.append(Operation("T", (Q[0],)))
            ops.append(Operation("H", (Q[1],)))
        return DependenceDAG(ops)

    def test_equal_weight_tie_goes_to_smallest_gate_name(self):
        dag = self._two_chain_dag()
        sched = schedule_rcp(dag, k=1)
        sched.validate()
        first = sched.timesteps[0].regions[0]
        assert first, "first region empty"
        assert dag.statements[first[0]].gate == "H"

    def test_tie_break_is_stable_across_pipelines(self):
        from repro.fastpath import reference_pipeline
        from repro.sched.report import schedule_to_dict

        for k in (1, 2, 3):
            fast = schedule_rcp(self._two_chain_dag(), k=k)
            with reference_pipeline():
                ref = schedule_rcp(self._two_chain_dag(), k=k)
            assert schedule_to_dict(fast) == schedule_to_dict(ref)

    def test_tie_break_independent_of_statement_order(self):
        # Swapping the two chains' interleaving must not change which
        # gate type wins the tie (it changes node numbering, so compare
        # the gate sequence per timestep, not node ids).
        def gate_seq(ops):
            dag = DependenceDAG(ops)
            sched = schedule_rcp(dag, k=1)
            return [
                dag.statements[ts.regions[0][0]].gate
                for ts in sched.timesteps
                if ts.regions[0]
            ]

        a = []
        b = []
        for _ in range(3):
            a += [Operation("T", (Q[0],)), Operation("H", (Q[1],))]
            b += [Operation("H", (Q[1],)), Operation("T", (Q[0],))]
        assert gate_seq(a) == gate_seq(b)
