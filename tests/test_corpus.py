"""The malformed-input corpus: the frontends must never traceback.

``tests/corpus/`` holds deliberately broken and edge-case Scaffold
(``.scd``) and hierarchical-QASM (``.qasm``) sources — unterminated
modules, zero-qubit registers, self-referential calls, unicode
identifiers, missing angles, bad operands. The contract under test is
the one ``python -m repro lint`` sells: every input produces either a
clean parse or structured diagnostics; no exception ever escapes the
lint entry points.

Add a file to the corpus and this test picks it up automatically.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.frontend import lint_qasm_source, lint_scaffold_source
from repro.analysis.diagnostics import Severity

CORPUS = Path(__file__).parent / "corpus"
CASES = sorted(
    p for p in CORPUS.iterdir() if p.suffix in (".scd", ".qasm")
)


def test_corpus_is_populated():
    assert len(CASES) >= 15, "corpus lost files"
    assert any(p.suffix == ".scd" for p in CASES)
    assert any(p.suffix == ".qasm" for p in CASES)


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.name)
def test_corpus_lints_without_traceback(path):
    source = path.read_text(encoding="utf-8")
    lint = (
        lint_scaffold_source(source, filename=path.name)
        if path.suffix == ".scd"
        else lint_qasm_source(source, filename=path.name)
    )
    if lint.ok:
        # Clean parse: the program must be structurally sound enough
        # to render and walk.
        assert lint.program.entry_module is not None
    else:
        # Rejected: the failure must be a structured ERROR diagnostic
        # with a code and a renderable message — not a traceback.
        errors = lint.diagnostics.errors
        assert errors, f"{path.name}: no program and no ERROR diagnostic"
        for diag in errors:
            assert diag.severity is Severity.ERROR
            assert diag.code.startswith("QL")
            assert diag.message.strip()


@pytest.mark.parametrize(
    "name",
    [
        "unterminated_module.scd",
        "unknown_gate.scd",
        "missing_angle.scd",
        "call_undefined_module.scd",
        "duplicate_operand.scd",
        "unterminated_module.qasm",
        "bad_qubit_operand.qasm",
        "bad_call_count.qasm",
    ],
)
def test_known_bad_inputs_are_rejected(name):
    path = CORPUS / name
    source = path.read_text(encoding="utf-8")
    lint = (
        lint_scaffold_source(source, filename=name)
        if path.suffix == ".scd"
        else lint_qasm_source(source, filename=name)
    )
    assert not lint.ok, f"{name} unexpectedly parsed"
    assert lint.diagnostics.errors
