"""The ``repro.schedule-stream/1`` out-of-core export
(:mod:`repro.service.stream_io`) and its CLI surface.

Covers the JSONL round-trip (plain and gzip), the truncation and
schema guards, inflate-to-boxed-Schedule equality against the
materialized pipeline (moves included — movement derivation is
bit-identical), streamed engine execution matching ``run_schedule``,
trace sampling, and the ``compile --stream`` / ``execute --stream``
verbs.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.cli import main
from repro.engine import EngineConfig, run_schedule
from repro.sched import derive_movement
from repro.sched.report import _comm_to_dict, schedule_to_dict
from repro.service import (
    STREAM_SCHEMA,
    execute_schedule_stream,
    inflate_schedule_stream,
    read_schedule_stream,
    validate_schedule_stream,
    write_schedule_stream,
)
from repro.toolflow import (
    SchedulerConfig,
    compile_and_schedule,
    compile_and_schedule_streamed,
)

MACHINE = MultiSIMD(k=4, d=None)
SPEC = BENCHMARKS["BF"]


@pytest.fixture(scope="module")
def bf_pipelines():
    prog = SPEC.build()
    mat = compile_and_schedule(
        prog, MACHINE, SchedulerConfig("lpfs"), fth=SPEC.fth
    )
    res = compile_and_schedule_streamed(
        prog, MACHINE, SchedulerConfig("lpfs"), fth=SPEC.fth, window=64
    )
    name = next(iter(mat.schedules))
    return mat, res, name


@pytest.fixture(params=["bf.jsonl", "bf.jsonl.gz"])
def stream_file(request, tmp_path, bf_pipelines):
    _, res, name = bf_pipelines
    path = str(tmp_path / request.param)
    stats = write_schedule_stream(
        path,
        res.columns[name],
        res.stream_schedules[name],
        MACHINE,
        module=name,
    )
    return path, stats, name


class TestRoundTrip:
    def test_validate_summary(self, stream_file, bf_pipelines):
        path, stats, name = stream_file
        mat, res, _ = bf_pipelines
        summary = validate_schedule_stream(path)
        ssched = res.stream_schedules[name]
        assert summary["schema"] == STREAM_SCHEMA
        assert summary["module"] == name
        assert summary["algorithm"] == "lpfs"
        assert summary["k"] == 4
        assert summary["op_count"] == ssched.op_count
        assert summary["timesteps"] == ssched.length
        assert summary["runtime"] == stats.runtime

    def test_footer_stats_match_compile(self, stream_file, bf_pipelines):
        path, stats, name = stream_file
        mat, _, _ = bf_pipelines
        _, epochs, footer_box = read_schedule_stream(path)
        for _ in epochs:
            pass
        assert footer_box[0] is not None
        assert _comm_to_dict(footer_box[0]) == _comm_to_dict(stats)
        assert _comm_to_dict(stats) == _comm_to_dict(
            mat.profiles[name].comm[4]
        )

    def test_inflate_equals_materialized(self, stream_file, bf_pipelines):
        path, _, name = stream_file
        mat, _, _ = bf_pipelines
        sched, stats = inflate_schedule_stream(path)
        assert schedule_to_dict(sched) == schedule_to_dict(
            mat.schedules[name]
        )


class TestGuards:
    def test_wrong_schema_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"schema": "something/9"}) + "\n")
        with pytest.raises(ValueError, match="not a"):
            read_schedule_stream(path)

    def test_truncation_detected(self, stream_file):
        path, _, _ = stream_file
        opener = gzip.open if path.endswith(".gz") else open
        with opener(path, "rt", encoding="utf-8") as fh:
            lines = fh.readlines()
        with opener(path, "wt", encoding="utf-8") as fh:
            fh.writelines(lines[:-2])  # drop footer + last epoch
        with pytest.raises(ValueError, match="truncated"):
            validate_schedule_stream(path)

    def test_footer_count_mismatch_detected(self, stream_file):
        path, _, _ = stream_file
        opener = gzip.open if path.endswith(".gz") else open
        with opener(path, "rt", encoding="utf-8") as fh:
            lines = fh.readlines()
        del lines[-2]  # drop one epoch, keep the footer
        with opener(path, "wt", encoding="utf-8") as fh:
            fh.writelines(lines)
        with pytest.raises(ValueError, match="footer says"):
            validate_schedule_stream(path)


class TestStreamedExecution:
    def test_ideal_matches_run_schedule(self, stream_file, bf_pipelines):
        path, _, name = stream_file
        mat, _, _ = bf_pipelines
        sched = mat.schedules[name]
        derive_movement(sched, MACHINE)
        ref = run_schedule(sched, MACHINE, scope=name)
        header, res, comm = execute_schedule_stream(path, MACHINE)
        assert header["module"] == name
        assert res.realized_runtime == ref.realized_runtime
        assert res.analytic_runtime == ref.analytic_runtime
        assert res.stalls.to_dict() == ref.stalls.to_dict()
        assert res.epr_pairs == ref.epr_pairs
        assert res.channel_pairs == ref.channel_pairs
        assert res.ops_executed == ref.ops_executed
        assert res.preflight_violations is None
        assert comm is not None and comm.runtime == res.analytic_runtime

    def test_throttled_epr_matches(self, stream_file, bf_pipelines):
        path, _, name = stream_file
        mat, _, _ = bf_pipelines
        config = EngineConfig(epr_rate=0.5, seed=7)
        sched = mat.schedules[name]
        derive_movement(sched, MACHINE)
        ref = run_schedule(sched, MACHINE, config=config, scope=name)
        _, res, _ = execute_schedule_stream(path, MACHINE, config)
        assert res.realized_runtime == ref.realized_runtime
        assert res.stalls.to_dict() == ref.stalls.to_dict()
        assert (
            res.realized_runtime
            == res.analytic_runtime + res.stalls.total
        )

    def test_trace_sampling_thins_gates_not_stalls(self, stream_file):
        path, _, _ = stream_file
        config = EngineConfig(
            epr_rate=0.5, seed=7, collect_trace=True
        )
        _, full, _ = execute_schedule_stream(path, MACHINE, config)
        _, sampled, _ = execute_schedule_stream(
            path, MACHINE, config, sample_every=50
        )
        assert sampled.realized_runtime == full.realized_runtime
        full_events = list(full.trace.events)
        thin_events = list(sampled.trace.events)
        assert len(thin_events) < len(full_events)
        count = lambda evs, cat: sum(1 for e in evs if e.cat == cat)
        assert count(thin_events, "stall") == count(
            full_events, "stall"
        )
        assert count(thin_events, "gate") < count(full_events, "gate")

    def test_numa_refused(self, stream_file):
        from repro.arch.numa import NUMAConfig
        from repro.engine import EngineError

        path, _, _ = stream_file
        config = EngineConfig(numa=NUMAConfig(banks=2))
        with pytest.raises(EngineError, match="NUMA"):
            execute_schedule_stream(path, MACHINE, config)


class TestStreamCLI:
    def test_compile_stream_matches_materialized_output(self, capsys):
        assert main(["compile", "BF", "--stream", "--window", "64"]) == 0
        streamed = capsys.readouterr().out
        assert main(["compile", "BF"]) == 0
        materialized = capsys.readouterr().out
        strip = lambda out: [
            line for line in out.splitlines()
            if not line.startswith("pipeline:")
        ]
        assert strip(streamed) == strip(materialized)

    def test_export_then_execute(self, tmp_path, capsys):
        path = str(tmp_path / "bf.jsonl.gz")
        assert main(
            ["compile", "BF", "--stream", "--export-stream", path]
        ) == 0
        capsys.readouterr()
        assert main(["execute", "--stream", path, "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "realized runtime:" in out
        assert "(= analytic)" in out

    def test_execute_stream_rejects_source_and_topology(self, capsys):
        assert main(["execute", "BF", "--stream", "x.jsonl"]) == 2
        assert "replaces the source" in capsys.readouterr().err
        assert main(
            ["execute", "--stream", "x.jsonl", "--topology", "line"]
        ) == 2
        assert "--topology" in capsys.readouterr().err
        assert main(["execute"]) == 2
        assert "needs a source" in capsys.readouterr().err

    def test_execute_stream_missing_file(self, capsys):
        assert main(["execute", "--stream", "/nonexistent.jsonl"]) == 2
        assert "not a readable file" in capsys.readouterr().err

    def test_execute_stream_truncated_file_exit_code(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "bf.jsonl")
        assert main(
            ["compile", "BF", "--stream", "--export-stream", path]
        ) == 0
        capsys.readouterr()
        with open(path) as fh:
            lines = fh.readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[:-2])
        assert main(["execute", "--stream", path]) == 4
        assert "invalid schedule stream" in capsys.readouterr().err

    def test_compile_scale_source(self, capsys):
        assert main(
            ["compile", "scale:adder:2000", "--stream",
             "--entry-width-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "widths=entry" in out
        assert "modules flattened:  100%" in out

    def test_bad_scale_source(self, capsys):
        assert main(["compile", "scale:nope:2000"]) == 2
        assert "unknown scale kind" in capsys.readouterr().err
