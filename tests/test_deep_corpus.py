"""The deep-lint bug corpus and the registry-wide cleanliness bar.

``tests/corpus/deep/`` holds small Scaffold programs that are clean
under the intraprocedural ``QL0xx`` rules but plant exactly one
interprocedural bug each (``ql<code>_*.scd``), plus idiomatic programs
that must stay silent (``clean_*.scd``). The contract: at the default
Multi-SIMD(4,4) every planted bug is reported exactly once under its
code, the clean files produce zero deep findings, and the benchmark
registry itself is deep-clean end to end (the no-false-positives bar).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.deep import DEFAULT_MACHINE, analyze_deep
from repro.analysis.diagnostics import Severity
from repro.analysis.frontend import lint_scaffold_source
from repro.benchmarks.registry import benchmark, benchmark_names
from repro.toolflow import SchedulerConfig, compile_and_schedule

DEEP_CORPUS = Path(__file__).parent / "corpus" / "deep"
DEEP_CASES = sorted(DEEP_CORPUS.glob("*.scd"))
PLANTED = [p for p in DEEP_CASES if not p.name.startswith("clean_")]
CLEAN = [p for p in DEEP_CASES if p.name.startswith("clean_")]


def _load(path: Path):
    lint = lint_scaffold_source(
        path.read_text(encoding="utf-8"), filename=path.name
    )
    assert lint.ok, f"{path.name} failed to parse: {list(lint.diagnostics)}"
    return lint


def test_corpus_is_populated():
    assert len(PLANTED) >= 7, "deep corpus lost planted-bug files"
    assert len(CLEAN) >= 4, "deep corpus lost clean files"
    codes = {p.name.split("_")[0] for p in PLANTED}
    # Every deep rule has at least one dedicated positive case.
    assert codes >= {"ql401", "ql402", "ql403", "ql404", "ql501"}


@pytest.mark.parametrize("path", DEEP_CASES, ids=lambda p: p.name)
def test_shallow_rules_stay_quiet(path):
    # The corpus isolates the interprocedural rules: nothing here may
    # be explainable by the intraprocedural QL0xx battery.
    lint = _load(path)
    noisy = lint.diagnostics.at_least(Severity.WARNING)
    assert not noisy, [d.code for d in noisy]


@pytest.mark.parametrize("path", PLANTED, ids=lambda p: p.name)
def test_planted_bug_reported_exactly_once(path):
    expected = path.name.split("_")[0].upper()
    lint = _load(path)
    result = analyze_deep(lint.program, machine=DEFAULT_MACHINE)
    codes = [d.code for d in result.diagnostics]
    assert codes == [expected], (
        f"{path.name}: expected exactly one {expected}, got {codes}"
    )


@pytest.mark.parametrize("path", CLEAN, ids=lambda p: p.name)
def test_clean_programs_stay_clean(path):
    lint = _load(path)
    result = analyze_deep(lint.program, machine=DEFAULT_MACHINE)
    assert len(result.diagnostics) == 0, [
        (d.code, d.message) for d in result.diagnostics
    ]


@pytest.mark.parametrize("name", benchmark_names())
def test_registry_is_deep_clean(name):
    # The no-false-positives bar: every benchmark's input program runs
    # the full battery silently at the paper's Multi-SIMD(4,4).
    program = benchmark(name).build()
    result = analyze_deep(program, machine=DEFAULT_MACHINE)
    assert len(result.diagnostics) == 0, [
        (d.code, d.module, d.message) for d in result.diagnostics
    ]


@pytest.mark.parametrize("algorithm", ["sequential", "rcp", "lpfs"])
def test_strict_toolflow_sanitizes_bounds(algorithm):
    # Strict mode re-audits every retained schedule and every coarse
    # profile against the static bounds; a sound sanitizer passes on
    # real output. One representative benchmark per scheduler keeps
    # this fast — the full 8-benchmark battery runs in CI's deep-lint
    # smoke job.
    spec = benchmark({"sequential": "BF", "rcp": "CN", "lpfs": "Grovers"}[algorithm])
    result = compile_and_schedule(
        spec.build(),
        DEFAULT_MACHINE,
        scheduler=SchedulerConfig(algorithm=algorithm),
        fth=spec.fth,
        strict=True,
    )
    assert not [
        d for d in result.diagnostics if d.severity is Severity.ERROR
    ]
    assert result.profiles
