"""Unit tests for IR statements (Operation / CallSite)."""

import math

import pytest

from repro.core.operation import CallSite, Operation
from repro.core.qubits import Qubit

Q = [Qubit("q", i) for i in range(4)]


class TestOperation:
    def test_simple_gate(self):
        op = Operation("H", (Q[0],))
        assert op.gate == "H"
        assert op.arity == 1
        assert op.angle is None

    def test_two_qubit_gate(self):
        op = Operation("CNOT", (Q[0], Q[1]))
        assert op.qubits == (Q[0], Q[1])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expects 2 operand"):
            Operation("CNOT", (Q[0],))
        with pytest.raises(ValueError, match="expects 1 operand"):
            Operation("H", (Q[0], Q[1]))

    def test_duplicate_operands_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Operation("CNOT", (Q[0], Q[0]))
        with pytest.raises(ValueError, match="distinct"):
            Operation("Toffoli", (Q[0], Q[1], Q[0]))

    def test_rotation_requires_angle(self):
        with pytest.raises(ValueError, match="requires an angle"):
            Operation("Rz", (Q[0],))

    def test_rotation_with_angle(self):
        op = Operation("Rz", (Q[0],), math.pi / 3)
        assert op.angle == pytest.approx(math.pi / 3)

    def test_non_rotation_rejects_angle(self):
        with pytest.raises(ValueError, match="does not take an angle"):
            Operation("H", (Q[0],), 0.5)

    def test_non_finite_angle_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Operation("Rz", (Q[0],), float("nan"))
        with pytest.raises(ValueError, match="finite"):
            Operation("Rz", (Q[0],), float("inf"))

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError):
            Operation("NOPE", (Q[0],))

    def test_operations_are_value_objects(self):
        a = Operation("CNOT", (Q[0], Q[1]))
        b = Operation("CNOT", (Q[0], Q[1]))
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_mentions_gate_and_operands(self):
        text = repr(Operation("CNOT", (Q[0], Q[1])))
        assert "CNOT" in text and "q[0]" in text and "q[1]" in text


class TestCallSite:
    def test_basic_call(self):
        call = CallSite("sub", (Q[0], Q[1]))
        assert call.callee == "sub"
        assert call.iterations == 1

    def test_iterated_call(self):
        call = CallSite("sub", (Q[0],), iterations=1000)
        assert call.iterations == 1000

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError, match="iterations"):
            CallSite("sub", (Q[0],), iterations=0)

    def test_duplicate_args_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CallSite("sub", (Q[0], Q[0]))

    def test_repr_shows_iterations(self):
        assert "x5" in repr(CallSite("sub", (Q[0],), iterations=5))
        assert "x1" not in repr(CallSite("sub", (Q[0],)))
