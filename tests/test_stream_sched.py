"""Bit-identity battery: the streamed columnar pipeline vs the
materialized fast path.

The streaming pipeline's contract is that the ingestion ``window`` is
*only* a memory granularity — for any window (including the unbounded
one) the columns, the emitted schedule, the movement stream and every
profile metric are identical to the materialized pipeline's output.
This file checks that two ways:

* a registry-wide differential — every benchmark, its pinned FTh, both
  pipelines, windows {64, 1024, unbounded} — comparing profiles,
  retained leaf schedules timestep-by-timestep, and CommStats;
* hypothesis properties over random leaf bodies asserting that the
  window never changes the schedule or the movement stats, for every
  scheduler.
"""

from __future__ import annotations

from typing import List, Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS, benchmark_names
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.opstream import ListStream
from repro.core.qubits import Qubit
from repro.engine import run_schedule
from repro.engine.executor import run_schedule_stream
from repro.sched import derive_movement
from repro.sched.comm import CommStats
from repro.sched.report import _comm_to_dict, schedule_to_dict
from repro.sched.stream import (
    build_columns,
    derive_movement_stream,
    engine_epochs,
    schedule_columns,
    to_schedule,
)
from repro.toolflow import (
    SchedulerConfig,
    compile_and_schedule,
    compile_and_schedule_streamed,
)

WINDOWS = (64, 1024, None)

# The registry battery compiles every benchmark at its pinned FTh —
# leaves are bounded by FTh, so even SHA-1 (10^9 hierarchical gates)
# stays cheap.
REGISTRY = benchmark_names()


def assert_results_identical(mat, res) -> None:
    """Every metric, profile and retained schedule must agree."""
    assert mat.total_gates == res.total_gates
    assert mat.critical_path == res.critical_path
    assert mat.flattened_percent == res.flattened_percent
    assert set(mat.profiles) == set(res.profiles)
    for name, p in mat.profiles.items():
        sp = res.profiles[name]
        assert p.is_leaf == sp.is_leaf, name
        assert p.length == sp.length, name
        assert p.runtime == sp.runtime, name
        assert set(p.comm) == set(sp.comm), name
        for w, comm in p.comm.items():
            assert _comm_to_dict(comm) == _comm_to_dict(sp.comm[w]), (
                name,
                w,
            )
    assert set(mat.schedules) == set(res.stream_schedules)
    for name, sched in mat.schedules.items():
        ssched = res.stream_schedules[name]
        assert ssched.algorithm == sched.algorithm
        assert ssched.length == len(sched.timesteps), name
        for t, ts in enumerate(sched.timesteps):
            streamed = dict(ssched.regions_at(t))
            for r, nodes in enumerate(ts.regions):
                assert streamed.get(r, []) == list(nodes), (name, t, r)


@pytest.mark.parametrize("key", REGISTRY)
@pytest.mark.parametrize("window", WINDOWS)
def test_registry_streamed_matches_materialized(key, window):
    spec = BENCHMARKS[key]
    prog = spec.build()
    machine = MultiSIMD(k=4, d=None)
    scheduler = SchedulerConfig("lpfs")
    mat = compile_and_schedule(prog, machine, scheduler, fth=spec.fth)
    res = compile_and_schedule_streamed(
        prog, machine, scheduler, fth=spec.fth, window=window
    )
    assert res.window == window
    assert_results_identical(mat, res)


@pytest.mark.parametrize("key", ["BF", "Grovers"])
@pytest.mark.parametrize("algorithm", ["rcp", "sequential"])
def test_registry_other_algorithms(key, algorithm):
    spec = BENCHMARKS[key]
    prog = spec.build()
    machine = MultiSIMD(k=4, d=4)
    scheduler = SchedulerConfig(algorithm)
    mat = compile_and_schedule(prog, machine, scheduler, fth=spec.fth)
    res = compile_and_schedule_streamed(
        prog, machine, scheduler, fth=spec.fth, window=64
    )
    assert_results_identical(mat, res)


def test_to_schedule_round_trips_regions():
    spec = BENCHMARKS["BF"]
    prog = spec.build()
    machine = MultiSIMD(k=4, d=None)
    mat = compile_and_schedule(
        prog, machine, SchedulerConfig("lpfs"), fth=spec.fth
    )
    res = compile_and_schedule_streamed(
        prog, machine, SchedulerConfig("lpfs"), fth=spec.fth
    )
    for name, sched in mat.schedules.items():
        inflated = to_schedule(
            res.columns[name], res.stream_schedules[name]
        )
        a = schedule_to_dict(sched)
        b = schedule_to_dict(inflated)
        # to_schedule carries regions, not moves (movement is derived
        # separately in the streamed pipeline) — drop the move fields.
        for doc in (a, b):
            doc.pop("teleport_moves", None)
            for ts in doc["timesteps"]:
                ts.pop("moves", None)
        assert a == b


# ---------------------------------------------------------------------------
# Hypothesis: window invariance + materialized equivalence on random
# leaf bodies (same op distribution as the fast-vs-reference battery).
# ---------------------------------------------------------------------------

N_QUBITS = 8
QUBITS = [Qubit("q", i) for i in range(N_QUBITS)]
GATES_BY_ARITY = {
    1: ("H", "T", "X", "S", "PrepZ", "MeasZ"),
    2: ("CNOT", "CZ", "SWAP"),
    3: ("Toffoli", "Fredkin"),
}


@st.composite
def leaf_bodies(draw, max_ops: int = 24) -> List[Operation]:
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops: List[Operation] = []
    for _ in range(n):
        arity = draw(st.integers(min_value=1, max_value=3))
        gate = draw(st.sampled_from(GATES_BY_ARITY[arity]))
        idxs = draw(
            st.lists(
                st.integers(min_value=0, max_value=N_QUBITS - 1),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        ops.append(Operation(gate, tuple(QUBITS[i] for i in idxs)))
    return ops


def schedule_fingerprint(ssched) -> tuple:
    return (
        ssched.algorithm,
        ssched.length,
        tuple(
            (t, tuple((r, tuple(nodes)) for r, nodes in
                      ssched.regions_at(t)))
            for t in range(ssched.length)
        ),
    )


algorithms = st.sampled_from(["sequential", "rcp", "lpfs"])
ks = st.integers(min_value=1, max_value=4)
ds = st.sampled_from([None, 1, 2, 4])
small_windows = st.sampled_from([1, 2, 3, 7, 64])


@settings(max_examples=60, deadline=None)
@given(
    ops=leaf_bodies(),
    k=ks,
    d=ds,
    algorithm=algorithms,
    window=small_windows,
)
def test_window_never_changes_schedule_or_comm(
    ops, k, d, algorithm, window
):
    """Any finite window produces the same columns (hence schedule and
    CommStats) as the unbounded one."""
    machine = MultiSIMD(k=k, d=d)
    fingerprints = []
    comms = []
    for w in (window, None):
        cols = build_columns(ListStream(ops), window=w)
        ssched = schedule_columns(cols, algorithm, k, d)
        stats = derive_movement_stream(cols, ssched, machine)
        fingerprints.append(schedule_fingerprint(ssched))
        comms.append(_comm_to_dict(stats))
    assert fingerprints[0] == fingerprints[1]
    assert comms[0] == comms[1]


@settings(max_examples=60, deadline=None)
@given(ops=leaf_bodies(), k=ks, d=ds, algorithm=algorithms)
def test_streamed_matches_materialized_random(ops, k, d, algorithm):
    """Columns + streamed scheduler emit the DAG pipeline's schedule
    and movement bit-for-bit."""
    machine = MultiSIMD(k=k, d=d)
    dag = DependenceDAG(list(ops))
    mat_sched = SchedulerConfig(algorithm).schedule(dag, k, d)
    mat_comm = derive_movement(mat_sched, machine)

    cols = build_columns(ListStream(ops), window=7)
    ssched = schedule_columns(cols, algorithm, k, d)
    stats = derive_movement_stream(cols, ssched, machine)

    assert ssched.length == len(mat_sched.timesteps)
    for t, ts in enumerate(mat_sched.timesteps):
        streamed = dict(ssched.regions_at(t))
        for r, nodes in enumerate(ts.regions):
            assert streamed.get(r, []) == list(nodes)
    assert _comm_to_dict(stats) == _comm_to_dict(mat_comm)


@settings(max_examples=25, deadline=None)
@given(ops=leaf_bodies(), k=ks, algorithm=algorithms)
def test_engine_epochs_realize_identically(ops, k, algorithm):
    """The engine over streamed epoch tuples matches the engine over
    the materialized schedule under the ideal config."""
    machine = MultiSIMD(k=k, d=None)
    dag = DependenceDAG(list(ops))
    mat_sched = SchedulerConfig(algorithm).schedule(dag, k, None)
    derive_movement(mat_sched, machine)
    mat = run_schedule(mat_sched, machine, scope="leaf")

    cols = build_columns(ListStream(ops), window=3)
    ssched = schedule_columns(cols, algorithm, k, None)
    res = run_schedule_stream(
        engine_epochs(cols, ssched, machine), k, machine, scope="leaf"
    )
    assert res.realized_runtime == mat.realized_runtime
    assert res.analytic_runtime == mat.analytic_runtime
    assert res.gate_cycles == mat.gate_cycles
    assert res.comm_cycles == mat.comm_cycles
    assert res.stalls.to_dict() == mat.stalls.to_dict()
    assert res.teleport_epochs == mat.teleport_epochs
    assert res.local_epochs == mat.local_epochs
    assert res.epr_pairs == mat.epr_pairs
    assert res.channel_pairs == mat.channel_pairs
    assert res.ops_executed == mat.ops_executed


def test_critical_path_and_release_graph():
    ops = [
        Operation("H", (QUBITS[0],)),
        Operation("CNOT", (QUBITS[0], QUBITS[1])),
        Operation("T", (QUBITS[1],)),
        Operation("H", (QUBITS[2],)),
    ]
    cols = build_columns(ListStream(ops), window=2)
    dag = DependenceDAG(list(ops))
    assert cols.critical_path_length() == dag.critical_path_length()
    assert len(cols) == 4
    got = cols.operation(1)
    assert got.gate == "CNOT"
    assert tuple(str(q) for q in got.qubits) == ("q[0]", "q[1]")
