"""Tests for the hierarchical coarse-grained scheduler (Algorithm 3)."""

import pytest

from repro.core.module import Module
from repro.core.operation import CallSite, Operation
from repro.core.qubits import Qubit
from repro.sched.coarse import best_dim, schedule_coarse

Q = [Qubit("q", i) for i in range(16)]


class TestBestDim:
    def test_min_cost_within_budget(self):
        dims = {1: 100, 2: 60, 4: 40}
        assert best_dim(dims, 4) == (4, 40)
        assert best_dim(dims, 2) == (2, 60)
        assert best_dim(dims, 1) == (1, 100)

    def test_tie_prefers_narrow(self):
        assert best_dim({1: 50, 2: 50}, 4) == (1, 50)

    def test_no_fit_raises(self):
        with pytest.raises(ValueError):
            best_dim({4: 10}, 2)


def module_with(body, name="m"):
    return Module(name, (), list(body))


class TestSerialAndParallel:
    def test_pure_gates_serial_chain(self):
        body = [Operation("T", (Q[0],)) for _ in range(5)]
        res = schedule_coarse(module_with(body), {}, k=4, gate_cost=1)
        assert res.total_length == 5
        assert res.total_width == 1

    def test_independent_gates_parallelize(self):
        body = [Operation("H", (Q[i],)) for i in range(4)]
        res = schedule_coarse(module_with(body), {}, k=4, gate_cost=1)
        assert res.total_length == 1
        assert res.total_width == 4

    def test_k_constrains_parallel_gates(self):
        body = [Operation("H", (Q[i],)) for i in range(4)]
        res = schedule_coarse(module_with(body), {}, k=2, gate_cost=1)
        assert res.total_length == 2
        assert res.total_width == 2

    def test_independent_calls_parallelize(self):
        dims = {"box": {1: 10}}
        body = [CallSite("box", (Q[i],)) for i in range(3)]
        res = schedule_coarse(module_with(body), dims, k=3)
        assert res.total_length == 10
        assert res.total_width == 3

    def test_dependent_calls_serialize(self):
        dims = {"box": {1: 10}}
        body = [CallSite("box", (Q[0],)), CallSite("box", (Q[0],))]
        res = schedule_coarse(module_with(body), dims, k=4)
        assert res.total_length == 20

    def test_width_budget_splits_banks(self):
        """A bank of 8 independent blackboxes on k=2 takes 4 rounds —
        the Figure 9 mechanism."""
        dims = {"rot": {1: 100}}
        body = [CallSite("rot", (Q[i],)) for i in range(8)]
        for k, expect in ((1, 800), (2, 400), (4, 200), (8, 100)):
            res = schedule_coarse(module_with(body), dims, k=k)
            assert res.total_length == expect


class TestFlexibleDimensions:
    def test_wide_dim_used_when_alone(self):
        dims = {"box": {1: 100, 4: 30}}
        body = [CallSite("box", (Q[0],))]
        res = schedule_coarse(module_with(body), dims, k=4)
        assert res.total_length == 30
        assert res.total_width == 4

    def test_narrow_dims_chosen_to_coexist(self):
        """Two independent boxes on k=2: each should take width 1
        (cost 60) in parallel rather than serialize at width 2."""
        dims = {"box": {1: 60, 2: 50}}
        body = [CallSite("box", (Q[0],)), CallSite("box", (Q[1],))]
        res = schedule_coarse(module_with(body), dims, k=2)
        assert res.total_length == 60
        assert res.total_width == 2

    def test_iterations_multiply_cost(self):
        dims = {"box": {1: 7}}
        body = [CallSite("box", (Q[0],), iterations=5)]
        res = schedule_coarse(module_with(body), dims, k=1)
        assert res.total_length == 35

    def test_call_overhead_added_per_call(self):
        dims = {"box": {1: 10}}
        body = [CallSite("box", (Q[0],))]
        res = schedule_coarse(
            module_with(body), dims, k=1, call_overhead=4
        )
        assert res.total_length == 14

    def test_gate_cost_parameter(self):
        body = [Operation("T", (Q[0],)) for _ in range(3)]
        res = schedule_coarse(module_with(body), {}, k=1, gate_cost=5)
        assert res.total_length == 15

    def test_missing_callee_dims_raise(self):
        body = [CallSite("ghost", (Q[0],))]
        with pytest.raises(KeyError):
            schedule_coarse(module_with(body), {}, k=1)

    def test_empty_module(self):
        res = schedule_coarse(module_with([]), {}, k=2)
        assert res.total_length == 0
        assert res.total_width == 0


class TestMixedBodies:
    def test_gates_and_calls_respect_dependencies(self):
        dims = {"box": {1: 10}}
        body = [
            Operation("H", (Q[0],)),
            CallSite("box", (Q[0],)),
            Operation("T", (Q[0],)),
        ]
        res = schedule_coarse(module_with(body), dims, k=2, gate_cost=1)
        assert res.total_length == 12

    def test_staggered_starts_allowed(self):
        """Pipeline parallelism: a dependent op can start mid-way
        through an unrelated long box (Algorithm 3's
        max(totalL+1, te))."""
        dims = {"long": {1: 100}}
        body = [
            CallSite("long", (Q[0],)),     # 0..100
            Operation("H", (Q[1],)),        # can run at t=0
            Operation("T", (Q[1],)),        # t=1 — inside the long box
        ]
        res = schedule_coarse(module_with(body), dims, k=2, gate_cost=1)
        assert res.total_length == 100  # not 102

    def test_placements_reported(self):
        dims = {"box": {1: 10}}
        body = [CallSite("box", (Q[0],)), CallSite("box", (Q[1],))]
        res = schedule_coarse(module_with(body), dims, k=2)
        assert len(res.placements) == 2
        assert all(p.finish - p.start == 10 for p in res.placements)

    def test_parallelized_counter(self):
        dims = {"box": {1: 10}}
        body = [CallSite("box", (Q[0],)), CallSite("box", (Q[1],))]
        res = schedule_coarse(module_with(body), dims, k=2)
        assert res.parallelized == 2
        serial = schedule_coarse(
            module_with([CallSite("box", (Q[0],))] * 2), dims, k=2
        )
        assert serial.parallelized == 0
