"""Tests for the architectural model: machine config, memory hierarchy,
teleportation (including state-transfer fidelity), and EPR accounting."""

import math

import pytest

from repro.arch.machine import (
    GATE_CYCLES,
    LOCAL_MOVE_CYCLES,
    MultiSIMD,
    NAIVE_FACTOR,
    TELEPORT_CYCLES,
)
from repro.arch.memory import MemoryMap, Scratchpad
from repro.arch.teleport import EPRAccounting, teleportation_ops
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sim.statevector import Simulator


class TestMultiSIMD:
    def test_cost_constants_match_paper(self):
        assert GATE_CYCLES == 1
        assert TELEPORT_CYCLES == 4
        assert LOCAL_MOVE_CYCLES == 1
        assert NAIVE_FACTOR == 5

    def test_defaults(self):
        m = MultiSIMD(k=4)
        assert m.d is None
        assert m.region_capacity == math.inf
        assert not m.has_local_memory

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiSIMD(k=0)
        with pytest.raises(ValueError):
            MultiSIMD(k=2, d=0)
        with pytest.raises(ValueError):
            MultiSIMD(k=2, local_memory=-1)

    def test_with_local_memory(self):
        m = MultiSIMD(k=4).with_local_memory(16)
        assert m.local_memory == 16
        assert m.has_local_memory
        assert m.k == 4

    def test_zero_local_memory_is_disabled(self):
        assert not MultiSIMD(k=2, local_memory=0).has_local_memory

    def test_with_k(self):
        m = MultiSIMD(k=4, d=32, local_memory=8).with_k(16)
        assert (m.k, m.d, m.local_memory) == (16, 32, 8)

    def test_str(self):
        assert "Multi-SIMD(4,inf" in str(MultiSIMD(k=4))
        assert "Multi-SIMD(2,64" in str(MultiSIMD(k=2, d=64))


class TestScratchpad:
    def test_capacity_enforced(self):
        pad = Scratchpad(2)
        assert pad.try_store(Qubit("q", 0))
        assert pad.try_store(Qubit("q", 1))
        assert not pad.try_store(Qubit("q", 2))
        assert pad.occupancy == 2

    def test_store_is_idempotent(self):
        pad = Scratchpad(1)
        q = Qubit("q", 0)
        assert pad.try_store(q)
        assert pad.try_store(q)
        assert pad.occupancy == 1

    def test_retrieve_frees_space(self):
        pad = Scratchpad(1)
        q0, q1 = Qubit("q", 0), Qubit("q", 1)
        pad.try_store(q0)
        pad.retrieve(q0)
        assert pad.try_store(q1)

    def test_retrieve_missing_raises(self):
        with pytest.raises(KeyError):
            Scratchpad(1).retrieve(Qubit("q", 0))

    def test_peak_occupancy(self):
        pad = Scratchpad(3)
        qs = [Qubit("q", i) for i in range(3)]
        for q in qs:
            pad.try_store(q)
        for q in qs:
            pad.retrieve(q)
        assert pad.peak_occupancy == 3
        assert pad.occupancy == 0

    def test_infinite_capacity(self):
        pad = Scratchpad(math.inf)
        for i in range(100):
            assert pad.try_store(Qubit("q", i))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Scratchpad(-1)


class TestMemoryMap:
    def test_default_location_is_global(self):
        mm = MemoryMap(k=2)
        assert mm.location(Qubit("q", 0)) == ("global",)

    def test_move_and_locate(self):
        mm = MemoryMap(k=2)
        q = Qubit("q", 0)
        mm.move(q, ("region", 1))
        assert mm.location(q) == ("region", 1)

    def test_local_capacity_enforced(self):
        mm = MemoryMap(k=2, local_capacity=1)
        mm.move(Qubit("q", 0), ("local", 0))
        assert not mm.local_has_space(0)
        with pytest.raises(ValueError):
            mm.move(Qubit("q", 1), ("local", 0))

    def test_leaving_local_frees_slot(self):
        mm = MemoryMap(k=2, local_capacity=1)
        q = Qubit("q", 0)
        mm.move(q, ("local", 0))
        mm.move(q, ("region", 0))
        assert mm.local_has_space(0)

    def test_no_scratchpads_without_capacity(self):
        mm = MemoryMap(k=2)
        assert not mm.local_has_space(0)


class TestTeleportation:
    def test_transfers_arbitrary_state(self):
        """The Figure 2 circuit must move an arbitrary single-qubit
        state from source to destination exactly."""
        src, mid, dst = (Qubit("t", i) for i in range(3))
        prep = [
            Operation("H", (src,)),
            Operation("T", (src,)),
            Operation("Rz", (src,), 0.81),
        ]
        # Reference: the prepared state amplitudes.
        ref = Simulator([src])
        ref.run(prep)
        alpha, beta = ref.state[0], ref.state[1]

        sim = Simulator([src, mid, dst])
        sim.run(prep)
        sim.run(teleportation_ops(src, mid, dst))
        # Destination marginal must be (|alpha|^2, |beta|^2) and, for a
        # unitary-corrected protocol, the joint state must factor so
        # that dst's reduced state equals the source state. Check via
        # probabilities of dst in both Z and X bases.
        assert sim.probability_of({dst: 1}) == pytest.approx(
            abs(beta) ** 2, abs=1e-9
        )
        sim.apply(Operation("H", (dst,)))
        hx = (alpha + beta) / math.sqrt(2)
        assert sim.probability_of({dst: 1}) == pytest.approx(
            1 - abs(hx) ** 2, abs=1e-9
        )

    def test_transfers_basis_states(self):
        for bit in (0, 1):
            src, mid, dst = (Qubit("t", i) for i in range(3))
            sim = Simulator([src, mid, dst])
            sim.set_bits({src: bit})
            sim.run(teleportation_ops(src, mid, dst))
            assert sim.probability_of({dst: bit}) == pytest.approx(1.0)

    def test_cost_is_four_manipulation_steps_plus_distribution(self):
        # 2 EPR-prep ops + 4 protocol ops.
        ops = teleportation_ops(*(Qubit("t", i) for i in range(3)))
        assert len(ops) == 6


class TestEPRAccounting:
    def test_record_and_totals(self):
        acc = EPRAccounting()
        acc.record_epoch([("global", "region0"), ("region1", "global")])
        acc.record_epoch([("global", "region0")])
        assert acc.total_pairs == 3
        assert acc.pair_counts[("global", "region0")] == 2
        assert acc.peak_epoch_demand == 2

    def test_busiest_channels(self):
        acc = EPRAccounting()
        acc.record_epoch([("a", "b")] * 3 + [("c", "d")])
        top = acc.busiest_channels(1)
        assert top == [(("a", "b"), 3)]

    def test_empty_epoch(self):
        acc = EPRAccounting()
        acc.record_epoch([])
        assert acc.total_pairs == 0
        assert acc.peak_epoch_demand == 0
