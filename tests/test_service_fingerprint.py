"""Tests for content-addressed compile-request fingerprints."""

import math

from hypothesis import given, settings, strategies as st

from repro.arch.machine import MultiSIMD
from repro.core import Module, Program, ProgramBuilder
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.core.source import SourceLocation
from repro.service import (
    canonical_program,
    fingerprint_program,
    fingerprint_request,
)
from repro.toolflow import SchedulerConfig


def _grover_like(angle: float = 0.25) -> Program:
    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", 3)
    main.h(q[0]).cnot(q[0], q[1]).rz(q[2], angle)
    main.toffoli(q[0], q[1], q[2])
    return pb.build("main")


class TestProgramFingerprint:
    def test_identical_programs_fingerprint_identically(self):
        # Built twice, entirely independently: no shared objects.
        assert fingerprint_program(_grover_like()) == fingerprint_program(
            _grover_like()
        )

    def test_differing_angle_changes_fingerprint(self):
        assert fingerprint_program(
            _grover_like(0.25)
        ) != fingerprint_program(_grover_like(0.5))

    def test_statement_order_is_significant(self):
        q = [Qubit("q", i) for i in range(2)]
        a = Program(
            [Module("main", (), [Operation("H", (q[0],)),
                                 Operation("X", (q[1],))])],
            "main",
        )
        b = Program(
            [Module("main", (), [Operation("X", (q[1],)),
                                 Operation("H", (q[0],))])],
            "main",
        )
        assert fingerprint_program(a) != fingerprint_program(b)

    def test_module_insertion_order_is_not_significant(self):
        def leaf():
            return Module("leaf", (Qubit("a", 0),),
                          [Operation("H", (Qubit("a", 0),))])

        def main():
            return Module("main", (), [Operation("H", (Qubit("q", 0),))])

        ab = Program([main(), leaf()], "main")
        ba = Program([leaf(), main()], "main")
        assert fingerprint_program(ab) == fingerprint_program(ba)

    def test_source_locations_are_excluded(self):
        q = Qubit("q", 0)
        with_loc = Program(
            [Module("main", (),
                    [Operation("H", (q,),
                               loc=SourceLocation(3, 1, "f.qasm"))])],
            "main",
        )
        without = Program(
            [Module("main", (), [Operation("H", (q,))])], "main"
        )
        assert fingerprint_program(with_loc) == fingerprint_program(
            without
        )

    def test_canonical_form_is_json_and_repr_free(self):
        import json

        doc = canonical_program(_grover_like())
        text = json.dumps(doc, sort_keys=True)
        assert "object at 0x" not in text
        assert "Qubit(" not in text


class TestRequestFingerprint:
    def test_config_changes_invalidate(self):
        prog = _grover_like()
        base = fingerprint_request(prog, MultiSIMD(k=4))
        assert base != fingerprint_request(prog, MultiSIMD(k=2))
        assert base != fingerprint_request(
            prog, MultiSIMD(k=4, d=1024)
        )
        assert base != fingerprint_request(
            prog, MultiSIMD(k=4, local_memory=math.inf)
        )
        assert base != fingerprint_request(
            prog, MultiSIMD(k=4), SchedulerConfig("rcp")
        )
        assert base != fingerprint_request(
            prog, MultiSIMD(k=4), fth=16
        )
        assert base != fingerprint_request(
            prog, MultiSIMD(k=4), optimize=True
        )
        assert base != fingerprint_request(
            prog, MultiSIMD(k=4), strict=True
        )

    def test_default_scheduler_matches_explicit_default(self):
        prog = _grover_like()
        assert fingerprint_request(
            prog, MultiSIMD(k=4)
        ) == fingerprint_request(prog, MultiSIMD(k=4), SchedulerConfig())

    def test_pipeline_version_is_mixed_in(self, monkeypatch):
        from repro.service import fingerprint as fp_mod

        prog = _grover_like()
        before = fingerprint_request(prog, MultiSIMD(k=4))
        monkeypatch.setattr(fp_mod, "PIPELINE_VERSION", "9999.test")
        assert fingerprint_request(prog, MultiSIMD(k=4)) != before


_GATES_1Q = st.sampled_from(["H", "X", "Y", "Z", "S", "T"])


@st.composite
def _programs(draw):
    """A random single-module program over a 4-qubit register."""
    q = [Qubit("q", i) for i in range(4)]
    n = draw(st.integers(min_value=1, max_value=12))
    body = []
    for _ in range(n):
        kind = draw(st.sampled_from(["1q", "cnot", "rz"]))
        if kind == "1q":
            body.append(
                Operation(draw(_GATES_1Q), (q[draw(st.integers(0, 3))],))
            )
        elif kind == "cnot":
            i = draw(st.integers(0, 3))
            j = draw(st.integers(0, 3).filter(lambda v: v != i))
            body.append(Operation("CNOT", (q[i], q[j])))
        else:
            angle = draw(
                st.floats(
                    min_value=-math.pi,
                    max_value=math.pi,
                    allow_nan=False,
                )
            )
            body.append(
                Operation("Rz", (q[draw(st.integers(0, 3))],),
                          angle=angle)
            )
    return [("op", op.gate, tuple(op.qubits), op.angle) for op in body]


def _realize(spec) -> Program:
    body = [
        Operation(gate, qubits, angle=angle)
        for _, gate, qubits, angle in spec
    ]
    return Program([Module("main", (), body)], "main")


class TestFingerprintProperty:
    @settings(max_examples=50, deadline=None)
    @given(_programs())
    def test_independent_builds_fingerprint_identically(self, spec):
        # Two structurally identical programs built from scratch (no
        # shared Operation/Qubit objects) must collide exactly.
        assert fingerprint_program(_realize(spec)) == fingerprint_program(
            _realize(spec)
        )

    @settings(max_examples=50, deadline=None)
    @given(_programs(), _programs())
    def test_distinct_programs_fingerprint_distinctly(self, a, b):
        if a == b:
            return
        assert fingerprint_program(_realize(a)) != fingerprint_program(
            _realize(b)
        )
