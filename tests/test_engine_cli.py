"""Tests for the ``execute`` CLI verb: the exit-code contract, the
preflight refusal path, JSON output, and Chrome trace export."""

import json

import pytest

import repro.cli as cli
from repro.cli import main
from repro.core.qubits import Qubit
from repro.sched.types import Move


class TestExecuteBasics:
    def test_text_output(self, capsys):
        assert main(["execute", "BF", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "analytic runtime" in out
        assert "(= analytic)" in out  # ideal config matches exactly
        assert "preflight:         passed" in out

    def test_json_output(self, capsys):
        assert main(["execute", "BF", "-k", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["realized_runtime"] == doc["analytic_runtime"]
        assert doc["machine"]["k"] == 2
        assert doc["scheduler"] == "lpfs"
        assert doc["metrics"]["engine_stall_cycles"] == 0

    def test_scheduler_selection(self, capsys):
        assert main(
            ["execute", "BF", "-k", "2", "--scheduler", "sequential",
             "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["scheduler"] == "sequential"
        assert doc["realized_runtime"] == doc["analytic_runtime"]

    def test_unknown_source(self, capsys):
        assert main(["execute", "NOPE"]) == 2
        assert "neither a benchmark" in capsys.readouterr().err

    def test_bad_epr_rate(self, capsys):
        assert main(["execute", "BF", "--epr-rate", "fast"]) == 2
        assert "rate" in capsys.readouterr().err


class TestExecuteConstrained:
    def test_finite_rate_stalls_reported(self, capsys):
        assert main(
            ["execute", "Grovers", "-k", "2", "--epr-rate", "0.05",
             "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stalls"]["epr"] > 0
        assert doc["realized_runtime"] > doc["analytic_runtime"]

    def test_fault_flags_deterministic(self, capsys):
        argv = ["execute", "BF", "-k", "2", "--epr-rate", "0.5",
                "--fault-epr", "0.3", "--seed", "9", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["faults"]["epr_regenerations"] >= 0

    def test_qecc_level_enables_gate_errors(self, capsys):
        assert main(
            ["execute", "BF", "-k", "2", "--qecc-level", "1",
             "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["engine_config"]["faults"]["gate_error_rate"] > 0


class TestExecutePreflight:
    @pytest.fixture
    def corrupted_compile(self, monkeypatch):
        """compile_and_schedule that sabotages one movement plan."""
        real = cli.compile_and_schedule

        def sabotage(*args, **kwargs):
            result = real(*args, **kwargs)
            sched = next(iter(result.schedules.values()))
            target = next(ts for ts in sched.timesteps if ts.moves)
            target.moves.append(
                Move(
                    Qubit("ghost", 0),
                    ("region", 1),
                    ("region", 0),
                    "teleport",
                )
            )
            return result

        monkeypatch.setattr(cli, "compile_and_schedule", sabotage)

    def test_refused_with_exit_4(self, corrupted_compile, capsys):
        assert main(["execute", "BF", "-k", "2"]) == 4
        err = capsys.readouterr().err
        assert "preflight replay" in err
        assert "--no-preflight" in err
        assert "QL3" in err  # individual violation codes listed

    def test_no_preflight_overrides(self, corrupted_compile, capsys):
        assert main(
            ["execute", "BF", "-k", "2", "--no-preflight", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["realized_runtime"] > 0


class TestExecuteTrace:
    def test_trace_file_written(self, tmp_path, capsys):
        out = tmp_path / "bf.trace"
        assert main(
            ["execute", "BF", "-k", "2", "--trace", str(out)]
        ) == 0
        assert "trace events to" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert {"M", "X"} <= phases
        assert doc["otherData"]["schema"] == "repro.trace/1"

    def test_trace_covers_leaf_and_coarse(self, tmp_path, capsys):
        out = tmp_path / "bf.trace"
        assert main(
            ["execute", "BF", "-k", "2", "--trace", str(out),
             "--json"]
        ) == 0
        doc = json.loads(out.read_text())
        processes = {
            r["args"]["name"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert "walk_step" in processes  # leaf schedule
        assert "main" in processes  # coarse caller
