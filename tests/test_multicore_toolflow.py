"""Tests for the multi-core toolflow driver.

The headline guarantee: with one core — any topology — the multi-core
pipeline is bit-identical to the single-core pipeline, for every
benchmark in the registry.
"""

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS, benchmark_names
from repro.multicore import (
    CoreGraph,
    MulticoreConfig,
    PartitionError,
    compile_and_schedule_multicore,
)
from repro.toolflow import SchedulerConfig, compile_and_schedule

MACHINE = MultiSIMD(k=4)


def _schedule_fingerprint(sched):
    """Exact content of a schedule: placements and movement plan."""
    return [
        (
            [list(r) for r in ts.regions],
            [repr(m) for m in ts.moves],
        )
        for ts in sched.timesteps
    ]


@pytest.fixture(scope="module")
def single_core_results():
    out = {}
    for key in benchmark_names():
        spec = BENCHMARKS[key]
        out[key] = compile_and_schedule(
            spec.build(), MACHINE, SchedulerConfig(), fth=spec.fth
        )
    return out


class TestOneCoreBitIdentity:
    @pytest.mark.parametrize("key", benchmark_names())
    def test_registry_equivalence(self, key, single_core_results):
        spec = BENCHMARKS[key]
        single = single_core_results[key]
        multi = compile_and_schedule_multicore(
            spec.build(),
            MACHINE,
            MulticoreConfig(CoreGraph.all_to_all(1)),
            SchedulerConfig(),
            fth=spec.fth,
        )
        # Headline numbers.
        assert multi.runtime == single.runtime
        assert multi.schedule_length == single.schedule_length
        assert multi.total_gates == single.total_gates
        assert multi.critical_path == single.critical_path
        assert multi.flattened_percent == single.flattened_percent
        # Per-module blackbox dimensions, every width.
        assert set(multi.profiles) == set(single.profiles)
        for name, profile in multi.profiles.items():
            assert profile.length == single.profiles[name].length
            assert profile.runtime == single.profiles[name].runtime
        # Per-leaf schedules, timestep for timestep, move for move.
        assert set(multi.leaf_schedules) == set(single.schedules)
        for name, msched in multi.leaf_schedules.items():
            if not single.schedules[name].timesteps:
                # Empty leaf: nothing to place on any core.
                assert list(msched.core_schedules) == []
            else:
                assert list(msched.core_schedules) == [0]
                assert _schedule_fingerprint(
                    msched.core_schedules[0]
                ) == _schedule_fingerprint(single.schedules[name])
            assert msched.intercore_cycles == 0
        # No inter-core artifacts at all.
        assert multi.intercore_teleports == 0
        assert multi.cut_weight == 0


class TestMulticoreCompile:
    def test_forced_cut_adds_intercore_cost(self):
        spec = BENCHMARKS["BF"]
        machine = MultiSIMD(k=4, d=2)
        single = compile_and_schedule(
            spec.build(), machine, SchedulerConfig(), fth=spec.fth
        )
        multi = compile_and_schedule_multicore(
            spec.build(),
            machine,
            MulticoreConfig(CoreGraph.line(4)),
            SchedulerConfig(),
            fth=spec.fth,
        )
        assert multi.intercore_teleports > 0
        assert multi.intercore_cycles > 0
        assert multi.cut_weight > 0
        # Intra-core work shrank (narrower per-core schedules) but the
        # composed makespan includes the attributed inter-core cost.
        assert multi.runtime != single.runtime

    def test_makespan_decomposition_per_leaf(self):
        spec = BENCHMARKS["BF"]
        multi = compile_and_schedule_multicore(
            spec.build(),
            MultiSIMD(k=4, d=2),
            MulticoreConfig(CoreGraph.line(4)),
            fth=spec.fth,
        )
        for msched in multi.leaf_schedules.values():
            assert (
                msched.makespan
                == msched.intra_runtime + msched.intercore_cycles
            )

    def test_topology_monotonic_in_hop_distance(self):
        """The partition is topology-independent, so the same cut only
        gets more expensive as hop distances grow: all-to-all is a
        pointwise lower bound on every other topology."""
        spec = BENCHMARKS["BF"]
        machine = MultiSIMD(k=4, d=2)

        def makespan(graph):
            return compile_and_schedule_multicore(
                spec.build(), machine, MulticoreConfig(graph),
                fth=spec.fth,
            ).runtime

        base = makespan(CoreGraph.all_to_all(4))
        assert base <= makespan(CoreGraph.mesh(4))
        assert base <= makespan(CoreGraph.line(4))

    def test_metrics_columns(self):
        spec = BENCHMARKS["BF"]
        multi = compile_and_schedule_multicore(
            spec.build(),
            MultiSIMD(k=4, d=2),
            MulticoreConfig(CoreGraph.mesh(4)),
            fth=spec.fth,
        )
        metrics = multi.metrics()
        assert metrics["multicore_cores"] == 4
        assert metrics["multicore_makespan"] == multi.runtime
        assert set(metrics) == {
            "multicore_cores",
            "multicore_makespan",
            "multicore_intercore_cycles",
            "multicore_intercore_teleports",
            "multicore_intercore_pairs",
            "multicore_cut_weight",
            "multicore_max_hops",
        }

    def test_capacity_overflow_raises(self):
        spec = BENCHMARKS["BF"]
        with pytest.raises(PartitionError):
            compile_and_schedule_multicore(
                spec.build(),
                MultiSIMD(k=1, d=1),
                MulticoreConfig(CoreGraph.line(2)),
                fth=spec.fth,
            )

    def test_partition_determinism_across_runs(self):
        from repro.multicore.partition import assignment_signature

        spec = BENCHMARKS["GSE"]
        machine = MultiSIMD(k=4, d=4)
        config = MulticoreConfig(CoreGraph.mesh(4), seed=7)
        a = compile_and_schedule_multicore(
            spec.build(), machine, config, fth=spec.fth
        )
        b = compile_and_schedule_multicore(
            spec.build(), machine, config, fth=spec.fth
        )
        for name in a.partitions:
            assert assignment_signature(
                a.partitions[name].assignment
            ) == assignment_signature(b.partitions[name].assignment)
        assert a.runtime == b.runtime
