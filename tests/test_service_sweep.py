"""Tests for the parallel batch sweep runner.

The fault-injection workers below must be module-level (picklable) to
cross the process-pool boundary. ``_MAIN_PID`` is captured at import so
a worker can tell whether it is running in a pool child (crash) or
in-process after serial degradation (succeed).
"""

import os
import time

import pytest

from repro.service import (
    JobSpec,
    SweepGrid,
    build_sweep_payload,
    execute_job,
    run_sweep,
    validate_sweep_payload,
)

_MAIN_PID = os.getpid()


def _ok_worker(job, cache_dir, use_cache):
    return {
        "job": job.to_dict(),
        "label": job.label,
        "status": "ok",
        "cached": None,
        "fingerprint": "f" * 64,
        "elapsed_s": 0.0,
        "compute_s": 0.0,
        "spans": {},
        "metrics": None,
        "error": None,
        "attempts": 1,
    }


def _always_crashing_worker(job, cache_dir, use_cache):
    if os.getpid() != _MAIN_PID:  # pool child: die without cleanup
        os._exit(1)
    out = _ok_worker(job, cache_dir, use_cache)
    out["ran_in_main"] = True
    return out


def _crash_once_worker(job, cache_dir, use_cache):
    """Dies in the first pool; succeeds once a sentinel exists."""
    sentinel = os.path.join(cache_dir, "crashed-once")
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("x")
        os._exit(1)
    return _ok_worker(job, cache_dir, use_cache)


def _slow_worker(job, cache_dir, use_cache):
    time.sleep(3)
    return _ok_worker(job, cache_dir, use_cache)


class TestSweepGrid:
    def test_parse_and_expand_order(self):
        grid = SweepGrid.parse(
            benchmarks="BF,Grovers", schedulers="rcp,lpfs", ks="2,4"
        )
        jobs = grid.expand()
        assert [
            (j.benchmark, j.algorithm, j.k) for j in jobs
        ] == [
            ("BF", "rcp", 2), ("BF", "rcp", 4),
            ("BF", "lpfs", 2), ("BF", "lpfs", 4),
            ("Grovers", "rcp", 2), ("Grovers", "rcp", 4),
            ("Grovers", "lpfs", 2), ("Grovers", "lpfs", 4),
        ]
        # Expansion is deterministic.
        assert grid.expand() == jobs

    def test_parse_all(self):
        from repro.benchmarks import benchmark_names

        grid = SweepGrid.parse()
        assert grid.benchmarks == tuple(benchmark_names())

    def test_parse_d_and_local_memory(self):
        import math

        grid = SweepGrid.parse(
            benchmarks="BF", ds="inf,64", local_memories="none,inf,0.5"
        )
        assert grid.ds == (None, 64)
        assert grid.local_memories == (None, math.inf, 0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"benchmarks": "NOPE"},
            {"benchmarks": "BF", "schedulers": "fifo"},
            {"benchmarks": "BF", "ks": "two"},
            {"benchmarks": "BF", "ks": "0"},
            {"benchmarks": "BF", "ds": "x"},
            {"benchmarks": "BF", "local_memories": "lots"},
            {"benchmarks": ""},
        ],
    )
    def test_parse_rejects_bad_specs(self, kwargs):
        with pytest.raises(ValueError):
            SweepGrid.parse(**kwargs)

    def test_job_spec_roundtrip(self):
        import math

        job = JobSpec("BF", "rcp", k=2, d=64,
                      local_memory=math.inf, fth=128)
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_job_label(self):
        job = JobSpec("BF", "rcp", k=2)
        assert job.label == "BF rcp k=2 d=inf local=none"


class TestExecuteJob:
    def test_ok_outcome(self, tmp_path):
        outcome = execute_job(JobSpec("BF", k=2), str(tmp_path))
        assert outcome["status"] == "ok"
        assert outcome["cached"] is None
        assert outcome["metrics"]["total_gates"] > 0
        assert outcome["spans"]  # stage spans recorded
        warm = execute_job(JobSpec("BF", k=2), str(tmp_path))
        assert warm["status"] == "ok"
        assert warm["cached"] == "memory"
        assert warm["metrics"] == outcome["metrics"]
        assert warm["spans"] == outcome["spans"]

    def test_error_outcome_never_raises(self):
        bad = JobSpec("BF", k=0)  # MultiSIMD rejects k<1
        outcome = execute_job(bad)
        assert outcome["status"] == "error"
        assert outcome["error"]["kind"] == "error"
        assert outcome["metrics"] is None


class TestRunSweep:
    def test_serial_run(self, tmp_path):
        jobs = [JobSpec("BF", a, k=2) for a in ("rcp", "lpfs")]
        run = run_sweep(jobs, cache_dir=tmp_path, parallel=False)
        assert not run.parallel
        assert len(run.ok) == 2
        assert [o["job"]["algorithm"] for o in run.outcomes] == [
            "rcp", "lpfs",
        ]

    def test_parallel_matches_serial(self, tmp_path):
        jobs = SweepGrid.parse(
            benchmarks="BF,Grovers", schedulers="rcp,lpfs", ks="2"
        ).expand()
        serial = run_sweep(
            jobs, cache_dir=tmp_path / "s", parallel=False
        )
        par = run_sweep(
            jobs, cache_dir=tmp_path / "p", parallel=True,
            max_workers=2,
        )
        assert len(par.ok) == len(serial.ok) == len(jobs)
        for a, b in zip(serial.outcomes, par.outcomes):
            assert a["job"] == b["job"]  # deterministic order
            assert a["metrics"] == b["metrics"]
            assert a["fingerprint"] == b["fingerprint"]

    def test_worker_crash_degrades_to_serial(self, tmp_path):
        jobs = [JobSpec("BF", k=2)]
        run = run_sweep(
            jobs,
            cache_dir=tmp_path,
            max_workers=1,
            worker=_always_crashing_worker,
        )
        assert run.degraded_to_serial
        assert run.pool_restarts >= 1
        assert run.outcomes[0]["status"] == "ok"
        assert run.outcomes[0]["ran_in_main"]
        assert run.outcomes[0]["attempts"] == 3

    def test_worker_crash_retry_succeeds_in_fresh_pool(self, tmp_path):
        jobs = [JobSpec("BF", k=2)]
        run = run_sweep(
            jobs,
            cache_dir=tmp_path,
            max_workers=1,
            worker=_crash_once_worker,
        )
        assert run.outcomes[0]["status"] == "ok"
        assert run.pool_restarts == 1
        assert not run.degraded_to_serial
        assert run.outcomes[0]["attempts"] == 2

    def test_timeout_outcome(self, tmp_path):
        jobs = [JobSpec("BF", k=2)]
        run = run_sweep(
            jobs,
            cache_dir=tmp_path,
            max_workers=1,
            timeout=0.5,
            worker=_slow_worker,
        )
        assert run.outcomes[0]["status"] == "timeout"
        assert run.outcomes[0]["error"]["kind"] == "timeout"
        assert len(run.failed) == 1

    def test_cache_hits_counted(self, tmp_path):
        jobs = [JobSpec("BF", k=2), JobSpec("BF", k=2)]
        run = run_sweep(jobs, cache_dir=tmp_path, parallel=False)
        assert run.cache_hits >= 1
        assert 0.0 < run.hit_rate <= 1.0


class TestSweepPayload:
    def test_payload_is_schema_valid(self, tmp_path):
        import json

        grid = SweepGrid.parse(benchmarks="BF", ks="2")
        run = run_sweep(
            grid.expand(), cache_dir=tmp_path, parallel=False
        )
        payload = build_sweep_payload(run, grid)
        assert validate_sweep_payload(payload) == []
        json.dumps(payload)  # JSON-safe throughout

    def test_validator_flags_problems(self):
        assert validate_sweep_payload([]) == ["payload is not an object"]
        problems = validate_sweep_payload({"schema": "wrong"})
        assert any("schema" in p for p in problems)
        assert any("jobs" in p for p in problems)

    def test_validator_flags_bad_job(self, tmp_path):
        grid = SweepGrid.parse(benchmarks="BF", ks="2")
        run = run_sweep(
            grid.expand(), cache_dir=tmp_path, parallel=False
        )
        payload = build_sweep_payload(run, grid)
        payload["jobs"][0]["status"] = "exploded"
        assert any(
            "status" in p for p in validate_sweep_payload(payload)
        )


class TestEngineSweep:
    """The opt-in engine columns and the /2 payload schema."""

    def test_grid_parse_engine_and_rate(self):
        grid = SweepGrid.parse(
            benchmarks="BF", ks="2", engine=True, epr_rate="0.5"
        )
        assert grid.engine
        assert grid.epr_rate == 0.5
        job = grid.expand()[0]
        assert job.engine
        assert job.epr_rate == 0.5
        assert "engine(rate=0.5)" in job.label

    def test_grid_parse_inf_rate(self):
        grid = SweepGrid.parse(
            benchmarks="BF", ks="2", engine=True, epr_rate="inf"
        )
        assert grid.epr_rate is None
        assert "engine(rate=inf)" in grid.expand()[0].label

    @pytest.mark.parametrize("rate", ["fast", "0", "-1"])
    def test_grid_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError):
            SweepGrid.parse(
                benchmarks="BF", ks="2", engine=True, epr_rate=rate
            )

    def test_engine_job_roundtrip(self):
        job = JobSpec("BF", k=2, engine=True, epr_rate=0.5)
        assert JobSpec.from_dict(job.to_dict()) == job
        # Non-engine jobs keep the legacy dict shape.
        assert "engine" not in JobSpec("BF", k=2).to_dict()

    def test_engine_metrics_ideal(self, tmp_path):
        outcome = execute_job(
            JobSpec("BF", k=2, engine=True), str(tmp_path)
        )
        assert outcome["status"] == "ok"
        metrics = outcome["metrics"]
        assert (
            metrics["engine_runtime"]
            == metrics["engine_analytic_runtime"]
        )
        assert metrics["engine_stall_cycles"] == 0

    def test_engine_metrics_finite_rate(self, tmp_path):
        outcome = execute_job(
            JobSpec("Grovers", k=2, engine=True, epr_rate=0.05),
            str(tmp_path),
        )
        assert outcome["status"] == "ok"
        metrics = outcome["metrics"]
        assert metrics["engine_stall_epr"] > 0
        assert (
            metrics["engine_runtime"]
            > metrics["engine_analytic_runtime"]
        )

    def test_disk_cache_hit_feeds_engine_without_recompile(
        self, tmp_path
    ):
        """A disk hit rehydrates schedules from the gzip sidecar, so
        the engine runs directly on the cached result — no recompile."""
        from repro.service import sweep as sweep_mod

        job = JobSpec("BF", k=2, engine=True)
        cold = execute_job(job, str(tmp_path))
        # Drop the process-global service so the memory cache is
        # empty and the second run hits the disk cache.
        sweep_mod._SERVICES.pop(str(tmp_path), None)
        warm = execute_job(job, str(tmp_path))
        assert warm["cached"] == "disk"
        assert warm["metrics"] == cold["metrics"]
        # A recompile would run a fresh compute and re-store the
        # artifact; the warm service must have served purely from disk.
        service = sweep_mod._SERVICES[str(tmp_path)]
        assert service.stats.disk_hits == 1
        assert service.stats.stores == 0

    def test_pre_sidecar_artifact_recompiles_for_engine(self, tmp_path):
        """Results loaded from a store without the schedule sidecar
        (or with it deleted) still produce engine metrics via the
        recompile fallback."""
        from repro.service import sweep as sweep_mod

        job = JobSpec("BF", k=2, engine=True)
        cold = execute_job(job, str(tmp_path))
        service = sweep_mod._SERVICES.pop(str(tmp_path))
        fp = cold["fingerprint"]
        service.store._sched_path(fp).unlink()
        warm = execute_job(job, str(tmp_path))
        assert warm["cached"] == "disk"
        assert warm["metrics"] == cold["metrics"]

    def test_payload_schema_v3(self, tmp_path):
        grid = SweepGrid.parse(benchmarks="BF", ks="2", engine=True)
        run = run_sweep(
            grid.expand(), cache_dir=tmp_path, parallel=False
        )
        payload = build_sweep_payload(run, grid)
        assert payload["schema"] == "repro.bench-sweep/3"
        assert validate_sweep_payload(payload) == []
        assert payload["grid"]["engine"] is True

    def test_validator_accepts_legacy_v1_and_v2(self, tmp_path):
        grid = SweepGrid.parse(benchmarks="BF", ks="2")
        run = run_sweep(
            grid.expand(), cache_dir=tmp_path, parallel=False
        )
        payload = build_sweep_payload(run, grid)
        payload["schema"] = "repro.bench-sweep/1"
        assert validate_sweep_payload(payload) == []
        payload["schema"] = "repro.bench-sweep/2"
        assert validate_sweep_payload(payload) == []

    def test_validator_requires_engine_metrics(self, tmp_path):
        grid = SweepGrid.parse(benchmarks="BF", ks="2", engine=True)
        run = run_sweep(
            grid.expand(), cache_dir=tmp_path, parallel=False
        )
        payload = build_sweep_payload(run, grid)
        del payload["jobs"][0]["metrics"]["engine_runtime"]
        assert any(
            "engine_runtime" in p
            for p in validate_sweep_payload(payload)
        )
