"""Tests for the static resource/communication bounds (QL5xx)."""

from __future__ import annotations

import dataclasses
import json

from repro.analysis.dataflow import solve_bottom_up
from repro.analysis.deep import analyze_deep
from repro.analysis.resource_rules import (
    ResourceAnalysis,
    audit_profile_bounds,
    audit_schedule_bounds,
)
from repro.arch.machine import MultiSIMD
from repro.core.dag import DependenceDAG
from repro.core.module import Module, Program
from repro.core.operation import CallSite, Operation
from repro.core.qubits import Qubit
from repro.sched.comm import derive_movement
from repro.sched.sequential import schedule_sequential
from repro.sched.types import Schedule

Q = [Qubit("q", i) for i in range(8)]


def summaries_of(program: Program):
    return solve_bottom_up(program, ResourceAnalysis()).summaries


class TestSummarize:
    def test_leaf_counts(self):
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (Q[0],)),
                Operation("H", (Q[0],)),
                Operation("CNOT", (Q[0], Q[1])),
                Operation("MeasZ", (Q[1],)),
            ],
        )
        s = summaries_of(Program([main], entry="main"))["main"]
        assert s.ops == 4
        assert s.frame_qubits == 2
        assert s.op_footprint == 2
        assert s.inline_qubits == 2
        assert s.width_ub == 2  # min(ops=4, qubits=2)
        assert s.chain == 3  # q0: prep, H, CNOT
        assert s.comm_lb == 2

    def test_iterated_call_weighting_and_chains(self):
        kernel = Module(
            "kernel",
            params=(Q[0], Q[1]),
            body=[
                Operation("H", (Q[0],)),
                Operation("CNOT", (Q[0], Q[1])),
            ],
        )
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (Q[2],)),
                Operation("PrepZ", (Q[3],)),
                CallSite("kernel", (Q[2], Q[3]), iterations=5),
            ],
        )
        prog = Program([kernel, main], entry="main")
        s = summaries_of(prog)
        assert s["kernel"].param_chains == (2, 1)
        assert s["main"].ops == 2 + 5 * 2
        # q2's chain: its prep plus 5 x kernel's first-param chain.
        assert s["main"].chain == 1 + 5 * 2

    def test_callee_locals_count_once_per_iteration(self):
        helper = Module(
            "helper",
            params=(Q[0],),
            body=[
                Operation("PrepZ", (Q[1],)),
                Operation("CNOT", (Q[0], Q[1])),
                Operation("MeasZ", (Q[1],)),
            ],
        )
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (Q[2],)),
                CallSite("helper", (Q[2],), iterations=3),
            ],
        )
        s = summaries_of(Program([helper, main], entry="main"))
        assert s["helper"].inline_qubits == 2
        # one frame qubit + 3 iterations x 1 callee-local extra
        assert s["main"].inline_qubits == 1 + 3 * 1

    def test_chain_sums_across_call_sites(self):
        # The same qubit fed through two successive calls accumulates
        # both per-parameter chain contributions (sum, not max).
        kernel = Module(
            "kernel",
            params=(Q[0],),
            body=[
                Operation("H", (Q[0],)),
                Operation("X", (Q[0],)),
            ],
        )
        main = Module(
            "main",
            body=[
                CallSite("kernel", (Q[2],)),
                CallSite("kernel", (Q[2],)),
            ],
        )
        s = summaries_of(Program([kernel, main], entry="main"))
        assert s["main"].chain == 4

    def test_payload_round_trip(self):
        main = Module(
            "main",
            body=[
                Operation("H", (Q[0],)),
                Operation("CNOT", (Q[0], Q[1])),
            ],
        )
        analysis = ResourceAnalysis()
        s = summaries_of(Program([main], entry="main"))["main"]
        payload = analysis.to_payload(s)
        json.dumps(payload)
        assert analysis.from_payload(payload) == s


class TestScheduleBounds:
    MACHINE = MultiSIMD(k=2, d=2)

    def _dag(self):
        return DependenceDAG(
            [
                Operation("PrepZ", (Q[0],)),
                Operation("PrepZ", (Q[1],)),
                Operation("H", (Q[0],)),
                Operation("CNOT", (Q[0], Q[1])),
                Operation("MeasZ", (Q[1],)),
            ]
        )

    def test_real_schedule_is_clean(self):
        sched = schedule_sequential(self._dag(), k=2, d=2)
        comm = derive_movement(sched, self.MACHINE)
        assert len(audit_schedule_bounds(sched, comm=comm)) == 0

    def test_empty_schedule_is_clean(self):
        sched = Schedule(DependenceDAG([]), k=2, d=2)
        assert len(audit_schedule_bounds(sched)) == 0

    def test_width_over_bound_ql502(self):
        # Two ops on ONE qubit claimed to run in two regions at once:
        # impossible under qubit disjointness (footprint bound is 1).
        dag = DependenceDAG(
            [Operation("H", (Q[0],)), Operation("X", (Q[0],))]
        )
        sched = Schedule(dag, k=2, d=2)
        ts = sched.append_timestep()
        ts.regions[0].append(0)
        ts.regions[1].append(1)
        codes = [d.code for d in audit_schedule_bounds(sched)]
        assert "QL502" in codes

    def test_length_under_chain_ql504(self):
        # The same two dependent ops compressed into one region slot:
        # length 1 beats the busiest-qubit chain of 2.
        dag = DependenceDAG(
            [Operation("H", (Q[0],)), Operation("X", (Q[0],))]
        )
        sched = Schedule(dag, k=2, d=2)
        ts = sched.append_timestep()
        ts.regions[0].extend([0, 1])
        codes = [d.code for d in audit_schedule_bounds(sched)]
        assert codes == ["QL504"]

    def test_capacity_bound_ql504(self):
        # 4 independent single-qubit ops on a (1,2) machine need
        # ceil(4/2) = 2 timesteps; a 1-timestep schedule is a lie even
        # though no per-qubit chain exceeds 1.
        dag = DependenceDAG(
            [Operation("H", (Q[i],)) for i in range(4)]
        )
        sched = Schedule(dag, k=1, d=2)
        ts = sched.append_timestep()
        ts.regions[0].extend([0, 1, 2, 3])
        codes = [d.code for d in audit_schedule_bounds(sched)]
        assert codes == ["QL504"]

    def test_understated_teleports_ql503(self):
        sched = schedule_sequential(self._dag(), k=2, d=2)
        comm = derive_movement(sched, self.MACHINE)
        lying = dataclasses.replace(comm, teleports=0)
        codes = [
            d.code for d in audit_schedule_bounds(sched, comm=lying)
        ]
        assert codes == ["QL503"]

    def test_understated_comm_cycles_ql503(self):
        sched = schedule_sequential(self._dag(), k=2, d=2)
        comm = derive_movement(sched, self.MACHINE)
        lying = dataclasses.replace(comm, comm_cycles=0)
        codes = [
            d.code for d in audit_schedule_bounds(sched, comm=lying)
        ]
        assert codes == ["QL503"]

    def test_no_movement_plan_skips_comm_checks(self):
        # A schedule that never derived movement has nothing realized
        # to compare — zero teleports is "not yet", not a lie.
        sched = schedule_sequential(self._dag(), k=2, d=2)
        assert len(audit_schedule_bounds(sched)) == 0

    def test_hop_floor_scales_comm_floor(self):
        # This plan bills 16 comm cycles for 6 teleports: fine on a
        # single-hop interconnect, a lie if every teleport provably
        # crosses >= 5 links (floor 5 * 4 = 20 cycles).
        sched = schedule_sequential(self._dag(), k=2, d=2)
        comm = derive_movement(sched, self.MACHINE)
        assert comm.teleports > 0
        clean = audit_schedule_bounds(sched, comm=comm, hop_floor=1)
        assert len(clean) == 0
        hops = -(-(comm.comm_cycles + 1) // 4)  # first floor above
        codes = [
            d.code
            for d in audit_schedule_bounds(
                sched, comm=comm, hop_floor=hops
            )
        ]
        assert "QL503" in codes

    def test_hop_floor_must_be_positive(self):
        import pytest

        sched = schedule_sequential(self._dag(), k=2, d=2)
        with pytest.raises(ValueError):
            audit_schedule_bounds(sched, hop_floor=0)


class TestProfileBounds:
    def _summary(self):
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (Q[0],)),
                Operation("H", (Q[0],)),
                Operation("CNOT", (Q[0], Q[1])),
                Operation("MeasZ", (Q[1],)),
            ],
        )
        return summaries_of(Program([main], entry="main"))["main"]

    def test_consistent_profile_is_clean(self):
        s = self._summary()  # chain 3, comm_lb 2
        lengths = {1: 4, 2: 3}
        runtimes = {1: 12, 2: 11}
        assert len(audit_profile_bounds(lengths, runtimes, s)) == 0

    def test_length_under_chain_ql504(self):
        s = self._summary()
        diags = audit_profile_bounds({2: 2}, {2: 11}, s)
        assert [d.code for d in diags] == ["QL504"]

    def test_runtime_under_comm_floor_ql503(self):
        s = self._summary()
        # chain 3 + one 4-cycle teleport epoch = 7 minimum runtime.
        diags = audit_profile_bounds({2: 3}, {2: 6}, s)
        assert [d.code for d in diags] == ["QL503"]

    def test_empty_module_skipped(self):
        empty = Module("main", body=[])
        s = summaries_of(Program([empty], entry="main"))["main"]
        assert len(audit_profile_bounds({1: 0}, {1: 0}, s)) == 0


class TestWidthFit:
    def _tiny(self) -> Program:
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (Q[0],)),
                Operation("CNOT", (Q[0], Q[1])),
                Operation("MeasZ", (Q[1],)),
            ],
        )
        return Program([main], entry="main")

    def test_overprovisioned_machine_ql501(self):
        result = analyze_deep(self._tiny(), machine=MultiSIMD(k=4, d=4))
        assert [d.code for d in result.diagnostics] == ["QL501"]

    def test_fitting_machine_is_clean(self):
        result = analyze_deep(self._tiny(), machine=MultiSIMD(k=2, d=4))
        assert len(result.diagnostics) == 0

    def test_empty_entry_is_quiet(self):
        prog = Program([Module("main", body=[])], entry="main")
        result = analyze_deep(prog, machine=MultiSIMD(k=4, d=4))
        assert len(result.diagnostics) == 0
