"""Tests for trace export: the ``repro.trace/1`` native payload, its
validator, and the Chrome trace-event conversion."""

import json

import pytest

from repro.arch.machine import MultiSIMD
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.engine import (
    TRACE_SCHEMA,
    EventTrace,
    TraceEvent,
    build_payload,
    chrome_trace_events,
    run_schedule,
    validate_trace_payload,
    write_chrome_trace,
)
from repro.sched.comm import derive_movement
from repro.sched.rcp import schedule_rcp

Q = [Qubit("q", i) for i in range(6)]


def traced_run(k=2, n=16):
    machine = MultiSIMD(k=k)
    ops = []
    for i in range(n):
        a, b = Q[i % 4], Q[(i + 2) % 4]
        ops.append(
            Operation("CNOT", (a, b))
            if i % 3 == 0
            else Operation("H", (a,))
        )
    sched = schedule_rcp(DependenceDAG(ops), k=k)
    derive_movement(sched, machine)
    return run_schedule(sched, machine, scope="mod")


class TestTraceEvent:
    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            TraceEvent("x", "bogus", 0, 1, "region0")

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            TraceEvent("x", "gate", -1, 1, "region0")
        with pytest.raises(ValueError):
            TraceEvent("x", "gate", 0, -1, "region0")

    def test_to_dict_omits_empty_args(self):
        assert "args" not in TraceEvent(
            "x", "gate", 0, 1, "region0"
        ).to_dict()
        assert TraceEvent(
            "x", "gate", 0, 1, "region0", {"ops": 2}
        ).to_dict()["args"] == {"ops": 2}


class TestEventTrace:
    def test_busy_excludes_stalls(self):
        trace = EventTrace("m")
        trace.emit("H", "gate", 0, 1, "region0")
        trace.emit("teleport-epoch", "move", 1, 4, "memory")
        trace.emit("epr-stall", "stall", 5, 3, "memory")
        assert trace.busy_by_track() == {"region0": 1, "memory": 4}
        assert trace.stall_cycles() == {"epr-stall": 3}

    def test_payload_structure(self):
        trace = EventTrace("m")
        trace.emit("H", "gate", 0, 1, "region0")
        payload = trace.to_payload(runtime=10)
        assert payload["schema"] == TRACE_SCHEMA
        assert payload["runtime_cycles"] == 10
        assert payload["events"][0]["pid"] == "m"
        assert validate_trace_payload(payload) == []


class TestValidator:
    def _payload(self):
        trace = EventTrace("m")
        trace.emit("H", "gate", 0, 1, "region0")
        return trace.to_payload(runtime=5)

    def test_accepts_engine_output(self):
        run = traced_run()
        payload = run.trace.to_payload(runtime=run.realized_runtime)
        assert validate_trace_payload(payload) == []

    def test_rejects_non_object(self):
        assert validate_trace_payload([]) == [
            "payload is not an object"
        ]

    def test_rejects_wrong_schema(self):
        payload = self._payload()
        payload["schema"] = "repro.trace/0"
        assert any(
            "schema" in p for p in validate_trace_payload(payload)
        )

    def test_rejects_bad_runtime(self):
        payload = self._payload()
        payload["runtime_cycles"] = -3
        assert any(
            "runtime_cycles" in p
            for p in validate_trace_payload(payload)
        )

    def test_rejects_unknown_category(self):
        payload = self._payload()
        payload["events"][0]["cat"] = "bogus"
        assert any(
            "unknown category" in p
            for p in validate_trace_payload(payload)
        )

    def test_rejects_event_past_runtime(self):
        payload = self._payload()
        payload["events"][0]["dur"] = 99
        assert any(
            "extends past" in p
            for p in validate_trace_payload(payload)
        )

    def test_rejects_missing_keys(self):
        payload = self._payload()
        del payload["events"][0]["track"]
        assert any(
            ".track" in p for p in validate_trace_payload(payload)
        )


class TestChromeExport:
    def test_metadata_and_complete_events(self):
        run = traced_run()
        payload = run.trace.to_payload(runtime=run.realized_runtime)
        records = chrome_trace_events(payload)
        phases = {r["ph"] for r in records}
        assert "M" in phases  # process/thread names
        assert "X" in phases  # complete events
        names = {
            r["args"]["name"] for r in records if r["ph"] == "M"
        }
        assert "mod" in names  # the process
        assert any(n.startswith("region") for n in names)
        # every X event has the required keys
        for r in records:
            if r["ph"] == "X":
                assert {"name", "cat", "pid", "tid", "ts", "dur"} <= set(r)

    def test_instant_markers_for_zero_duration(self):
        trace = EventTrace("m")
        trace.emit("region-down", "fault", 3, 0, "region0")
        records = chrome_trace_events(trace.to_payload(runtime=5))
        instants = [r for r in records if r["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"

    def test_write_loadable_file(self, tmp_path):
        run = traced_run()
        payload = run.trace.to_payload(runtime=run.realized_runtime)
        path = tmp_path / "out.trace"
        count = write_chrome_trace(str(path), payload)
        doc = json.loads(path.read_text())
        # The object form chrome://tracing / Perfetto loads.
        assert isinstance(doc["traceEvents"], list)
        assert len(doc["traceEvents"]) == count
        assert doc["otherData"]["schema"] == TRACE_SCHEMA

    def test_multi_scope_payload_keeps_processes_apart(self):
        a, b = EventTrace("alpha"), EventTrace("beta")
        a.emit("H", "gate", 0, 1, "region0")
        b.emit("T", "gate", 0, 1, "region0")
        payload = build_payload([("alpha", a), ("beta", b)], runtime=2)
        assert validate_trace_payload(payload) == []
        records = chrome_trace_events(payload)
        pids = {
            r["pid"] for r in records if r["ph"] == "X"
        }
        assert len(pids) == 2

    def test_utilization_stats(self):
        trace = EventTrace("m")
        trace.emit("H", "gate", 0, 5, "region0")
        payload = trace.to_payload(runtime=10)
        assert payload["stats"]["utilization"]["m"]["region0"] == 0.5
