"""Tests for the artifact store, LRU tier, and compile service."""

import json

import pytest

from repro.arch.machine import MultiSIMD
from repro.core import ProgramBuilder
from repro.service import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    CacheStats,
    CompileService,
    LRUCache,
    fingerprint_request,
)
from repro.toolflow import SchedulerConfig


def _program(n: int = 3):
    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", n)
    for i in range(n - 1):
        main.cnot(q[i], q[i + 1])
    return pb.build("main")


FP = "ab" + "0" * 62
FP2 = "cd" + "1" * 62


class TestLRUCache:
    def test_get_put_and_eviction_order(self):
        lru = LRUCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh 'a'
        lru.put("c", 3)  # evicts 'b', the LRU entry
        assert "b" not in lru
        assert lru.get("a") == 1 and lru.get("c") == 3
        assert lru.stats.evictions == 1

    def test_pop_and_clear(self):
        lru = LRUCache(max_entries=4)
        lru.put("a", 1)
        lru.pop("a")
        lru.pop("a")  # absent: no-op
        assert lru.get("a") is None
        lru.put("b", 2)
        lru.clear()
        assert len(lru) == 0


class TestArtifactStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"result": {"x": 1}, "spans": {}}
        path = store.save(FP, payload)
        assert path.parent.name == FP[:2]  # prefix sharding
        assert store.load(FP) == payload
        assert list(store.fingerprints()) == [FP]
        assert len(store) == 1

    def test_load_missing_returns_none(self, tmp_path):
        assert ArtifactStore(tmp_path).load(FP) is None

    def test_corrupt_artifact_is_invalidated(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(FP, {"x": 1})
        store._path(FP).write_text("{not json")
        assert store.load(FP) is None
        assert not store._path(FP).exists()
        assert store.stats.invalidations == 1

    def test_stale_pipeline_version_is_invalidated(self, tmp_path):
        old = ArtifactStore(tmp_path, pipeline_version="2024.0")
        old.save(FP, {"x": 1})
        new = ArtifactStore(tmp_path, pipeline_version="2025.9")
        assert new.load(FP) is None  # refused...
        assert not new._path(FP).exists()  # ...and deleted

    def test_stale_schema_is_invalidated(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(FP, {"x": 1})
        doc = json.loads(store._path(FP).read_text())
        doc["schema"] = "something/else"
        store._path(FP).write_text(json.dumps(doc))
        assert store.load(FP) is None

    def test_envelope_fields(self, tmp_path):
        store = ArtifactStore(tmp_path, pipeline_version="v1")
        store.save(FP, {"x": 1})
        doc = json.loads(store._path(FP).read_text())
        assert doc["schema"] == ARTIFACT_SCHEMA
        assert doc["pipeline_version"] == "v1"
        assert doc["fingerprint"] == FP

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(FP, {"x": 1})
        store.save(FP2, {"x": 2})
        assert store.clear() == 2
        assert len(store) == 0


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(memory_hits=3, disk_hits=1, misses=4)
        assert stats.hits == 4
        assert stats.lookups == 8
        assert stats.hit_rate == 0.5
        assert CacheStats().hit_rate == 0.0

    def test_to_dict_is_json_safe(self):
        json.dumps(CacheStats().to_dict())


class TestCompileService:
    def test_miss_then_memory_hit(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        prog, machine = _program(), MultiSIMD(k=2)
        cold = service.lookup(prog, machine)
        assert cold.cached is None
        assert cold.spans  # fresh compute records stage spans
        warm = service.lookup(_program(), machine)  # rebuilt program
        assert warm.cached == "memory"
        assert warm.result is cold.result
        assert warm.fingerprint == cold.fingerprint
        assert service.stats.memory_hits == 1
        assert service.stats.misses == 1

    def test_disk_hit_across_service_instances(self, tmp_path):
        a = CompileService(cache_dir=tmp_path)
        prog, machine = _program(), MultiSIMD(k=2)
        cold = a.lookup(prog, machine)

        b = CompileService(cache_dir=tmp_path)  # fresh memory tier
        warm = b.lookup(_program(), machine)
        assert warm.cached == "disk"
        assert b.stats.disk_hits == 1
        r, c = warm.result, cold.result
        assert r.total_gates == c.total_gates
        assert r.schedule_length == c.schedule_length
        assert r.runtime == c.runtime
        assert r.parallel_speedup == pytest.approx(c.parallel_speedup)
        assert r.comm_aware_speedup == pytest.approx(
            c.comm_aware_speedup
        )
        # Spans from the original compute travel with the artifact.
        assert warm.spans == cold.spans

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        a = CompileService(cache_dir=tmp_path)
        a.lookup(_program(), MultiSIMD(k=2))
        b = CompileService(cache_dir=tmp_path)
        assert b.lookup(_program(), MultiSIMD(k=2)).cached == "disk"
        assert b.lookup(_program(), MultiSIMD(k=2)).cached == "memory"

    def test_config_change_misses(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        service.lookup(_program(), MultiSIMD(k=2))
        entry = service.lookup(
            _program(), MultiSIMD(k=2), SchedulerConfig("rcp")
        )
        assert entry.cached is None
        assert service.stats.misses == 2

    def test_pipeline_version_change_invalidates(self, tmp_path):
        a = CompileService(cache_dir=tmp_path, pipeline_version="v1")
        a.lookup(_program(), MultiSIMD(k=2))
        assert len(a.store) == 1
        b = CompileService(cache_dir=tmp_path, pipeline_version="v2")
        # Same fingerprint paths aside, v2 requests also fingerprint
        # differently only via PIPELINE_VERSION constant; force the
        # point by loading the stored artifact directly.
        fp = next(iter(a.store.fingerprints()))
        assert b.store.load(fp) is None
        assert b.stats.invalidations == 1

    def test_explicit_invalidate_and_clear(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        entry = service.lookup(_program(), MultiSIMD(k=2))
        service.invalidate(entry.fingerprint)
        assert service.lookup(_program(), MultiSIMD(k=2)).cached is None
        service.clear()
        assert len(service.memory) == 0
        assert len(service.store) == 0

    def test_use_cache_false_recomputes_and_refreshes(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        service.lookup(_program(), MultiSIMD(k=2))
        entry = service.lookup(
            _program(), MultiSIMD(k=2), use_cache=False
        )
        assert entry.cached is None
        # ... but the artifact is refreshed for later callers.
        assert service.lookup(
            _program(), MultiSIMD(k=2)
        ).cached == "memory"

    def test_memory_only_service(self):
        service = CompileService(cache_dir=None)
        assert service.store is None
        service.lookup(_program(), MultiSIMD(k=2))
        assert service.lookup(
            _program(), MultiSIMD(k=2)
        ).cached == "memory"

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        service = CompileService(
            cache_dir=tmp_path, max_memory_entries=1
        )
        service.lookup(_program(2), MultiSIMD(k=2))
        service.lookup(_program(3), MultiSIMD(k=2))  # evicts first
        assert service.stats.evictions == 1
        entry = service.lookup(_program(2), MultiSIMD(k=2))
        assert entry.cached == "disk"

    def test_fingerprint_matches_free_function(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        prog, machine = _program(), MultiSIMD(k=2)
        entry = service.lookup(prog, machine)
        assert entry.fingerprint == fingerprint_request(prog, machine)


class TestLRUConcurrency:
    def test_concurrent_mixed_operations_keep_invariants(self):
        """Regression: pre-lock, racing put/get could corrupt the
        OrderedDict mid-``move_to_end`` or double-count an eviction.
        Hammer one small LRU from several threads and check the
        bounded-size invariant and counter consistency afterwards."""
        import threading

        lru = LRUCache(max_entries=8)
        errors = []
        barrier = threading.Barrier(4)

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for i in range(2000):
                    key = f"k{(seed * 2000 + i) % 40}"
                    op = i % 3
                    if op == 0:
                        lru.put(key, i)
                    elif op == 1:
                        lru.get(key)
                    else:
                        lru.pop(key)
                    assert len(lru) <= 8
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert len(lru) <= 8
        assert lru.stats.evictions > 0

    def test_eviction_under_contention_counts_once_per_entry(self):
        """Every insertion beyond capacity evicts exactly one entry;
        with the lock the counters must balance exactly."""
        import threading

        lru = LRUCache(max_entries=4)
        per_thread, threads_n = 500, 4

        def writer(seed: int) -> None:
            for i in range(per_thread):
                lru.put(f"t{seed}-{i}", i)  # all keys unique

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        total_puts = per_thread * threads_n
        assert len(lru) == 4
        assert lru.stats.evictions == total_puts - 4


class TestPeek:
    def test_miss_returns_none_and_counts(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        assert service.peek("f" * 64) is None
        assert service.stats.misses == 1

    def test_memory_hit(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        entry = service.lookup(_program(), MultiSIMD(k=2))
        peeked = service.peek(entry.fingerprint)
        assert peeked is not None
        assert peeked.cached == "memory"
        assert peeked.result.runtime == entry.result.runtime

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        warm = CompileService(cache_dir=tmp_path)
        fp = warm.lookup(_program(), MultiSIMD(k=2)).fingerprint
        cold = CompileService(cache_dir=tmp_path)
        first = cold.peek(fp)
        assert first is not None and first.cached == "disk"
        second = cold.peek(fp)
        assert second is not None and second.cached == "memory"

    def test_never_computes(self):
        service = CompileService(cache_dir=None)  # memory-only, empty
        assert service.peek("a" * 64) is None


class TestStatsSnapshot:
    def test_roundtrip(self, tmp_path):
        from repro.service import (
            STATS_SNAPSHOT_SCHEMA,
            read_stats_snapshot,
            write_stats_snapshot,
        )

        stats = CacheStats(memory_hits=3, misses=1, stores=2)
        path = write_stats_snapshot(
            tmp_path, stats, extra={"server": {"jobs": 5}}
        )
        assert path.name == "stats.json"
        doc = read_stats_snapshot(tmp_path)
        assert doc["schema"] == STATS_SNAPSHOT_SCHEMA
        assert doc["stats"]["memory_hits"] == 3
        assert doc["extra"]["server"]["jobs"] == 5

    def test_missing_and_corrupt_read_as_none(self, tmp_path):
        from repro.service import read_stats_snapshot

        assert read_stats_snapshot(tmp_path) is None
        (tmp_path / "stats.json").write_text("{broken")
        assert read_stats_snapshot(tmp_path) is None
        (tmp_path / "stats.json").write_text(
            json.dumps({"schema": "other/1"})
        )
        assert read_stats_snapshot(tmp_path) is None


class TestInspectStore:
    def test_missing_directory(self, tmp_path):
        from repro.service import inspect_store

        report = inspect_store(tmp_path / "nope")
        assert report["exists"] is False
        assert report["artifacts"] == 0
        assert report["snapshot"] is None

    def test_counts_artifacts_shards_and_stale(self, tmp_path):
        from repro.service import inspect_store, write_stats_snapshot

        store = ArtifactStore(tmp_path)
        store.save(FP, {"result": {"x": 1}})
        store.save(FP2, {"result": {"y": 2}})
        stale = ArtifactStore(tmp_path, pipeline_version="museum")
        stale.save("ef" + "2" * 62, {"result": {"z": 3}})
        broken = tmp_path / "99"
        broken.mkdir()
        (broken / ("9" * 64 + ".json")).write_text("{nope")
        write_stats_snapshot(tmp_path, CacheStats(memory_hits=1))

        report = inspect_store(tmp_path)
        assert report["exists"] is True
        assert report["artifacts"] == 4
        assert report["shards"] == 4
        assert report["stale_artifacts"] == 2  # museum + unreadable
        assert report["unreadable_artifacts"] == 1
        assert report["total_bytes"] > 0
        assert report["by_pipeline_version"]["museum"] == 1
        assert report["snapshot"]["stats"]["memory_hits"] == 1


class TestScheduleSidecar:
    """The gzip schedule sidecar: saved on fresh computes, rehydrated
    on disk hits, and never allowed to go stale."""

    def _schedules(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        entry = service.lookup(_program(), MultiSIMD(k=2))
        assert entry.result.schedules
        return service, entry

    def test_save_load_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"main": {"algorithm": "lpfs", "timesteps": []}}
        path = store.save_schedules(FP, payload)
        assert path.name.endswith(".sched.json.gz")
        assert path.parent.name == FP[:2]
        assert store.load_schedules(FP) == payload
        assert store.load_schedules(FP2) is None

    def test_disk_hit_rehydrates_bit_identical_schedules(
        self, tmp_path
    ):
        from repro.sched.report import schedule_to_dict

        _, cold = self._schedules(tmp_path)
        warm = CompileService(cache_dir=tmp_path).lookup(
            _program(), MultiSIMD(k=2)
        )
        assert warm.cached == "disk"
        assert set(warm.result.schedules) == set(cold.result.schedules)
        for name, sched in cold.result.schedules.items():
            assert schedule_to_dict(
                warm.result.schedules[name]
            ) == schedule_to_dict(sched)

    def test_corrupt_sidecar_deleted_and_metrics_survive(
        self, tmp_path
    ):
        service, cold = self._schedules(tmp_path)
        fp = cold.fingerprint
        sidecar = service.store._sched_path(fp)
        sidecar.write_bytes(b"\x1f\x8b not really gzip")
        fresh = CompileService(cache_dir=tmp_path)
        warm = fresh.lookup(_program(), MultiSIMD(k=2))
        # The main artifact still serves (metrics intact); schedules
        # fall back to empty and the bad sidecar is gone.
        assert warm.cached == "disk"
        assert warm.result.schedules == {}
        assert warm.result.total_gates == cold.result.total_gates
        assert not sidecar.exists()

    def test_stale_sidecar_version_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path, pipeline_version="v1")
        store.save_schedules(FP, {"main": {}})
        new = ArtifactStore(tmp_path, pipeline_version="v2")
        assert new.load_schedules(FP) is None
        assert not new._sched_path(FP).exists()

    def test_invalidate_removes_sidecar(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(FP, {"x": 1})
        store.save_schedules(FP, {"main": {}})
        store.invalidate(FP)
        assert not store._path(FP).exists()
        assert not store._sched_path(FP).exists()

    def test_clear_removes_sidecars(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(FP, {"x": 1})
        store.save_schedules(FP, {"main": {}})
        assert store.clear() == 1
        assert not store._sched_path(FP).exists()

    def test_memory_hit_keeps_live_schedules(self, tmp_path):
        service, cold = self._schedules(tmp_path)
        warm = service.lookup(_program(), MultiSIMD(k=2))
        assert warm.cached == "memory"
        assert warm.result.schedules is cold.result.schedules
