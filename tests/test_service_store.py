"""Tests for the artifact store, LRU tier, and compile service."""

import json

import pytest

from repro.arch.machine import MultiSIMD
from repro.core import ProgramBuilder
from repro.service import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    CacheStats,
    CompileService,
    LRUCache,
    fingerprint_request,
)
from repro.toolflow import SchedulerConfig


def _program(n: int = 3):
    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", n)
    for i in range(n - 1):
        main.cnot(q[i], q[i + 1])
    return pb.build("main")


FP = "ab" + "0" * 62
FP2 = "cd" + "1" * 62


class TestLRUCache:
    def test_get_put_and_eviction_order(self):
        lru = LRUCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh 'a'
        lru.put("c", 3)  # evicts 'b', the LRU entry
        assert "b" not in lru
        assert lru.get("a") == 1 and lru.get("c") == 3
        assert lru.stats.evictions == 1

    def test_pop_and_clear(self):
        lru = LRUCache(max_entries=4)
        lru.put("a", 1)
        lru.pop("a")
        lru.pop("a")  # absent: no-op
        assert lru.get("a") is None
        lru.put("b", 2)
        lru.clear()
        assert len(lru) == 0


class TestArtifactStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"result": {"x": 1}, "spans": {}}
        path = store.save(FP, payload)
        assert path.parent.name == FP[:2]  # prefix sharding
        assert store.load(FP) == payload
        assert list(store.fingerprints()) == [FP]
        assert len(store) == 1

    def test_load_missing_returns_none(self, tmp_path):
        assert ArtifactStore(tmp_path).load(FP) is None

    def test_corrupt_artifact_is_invalidated(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(FP, {"x": 1})
        store._path(FP).write_text("{not json")
        assert store.load(FP) is None
        assert not store._path(FP).exists()
        assert store.stats.invalidations == 1

    def test_stale_pipeline_version_is_invalidated(self, tmp_path):
        old = ArtifactStore(tmp_path, pipeline_version="2024.0")
        old.save(FP, {"x": 1})
        new = ArtifactStore(tmp_path, pipeline_version="2025.9")
        assert new.load(FP) is None  # refused...
        assert not new._path(FP).exists()  # ...and deleted

    def test_stale_schema_is_invalidated(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(FP, {"x": 1})
        doc = json.loads(store._path(FP).read_text())
        doc["schema"] = "something/else"
        store._path(FP).write_text(json.dumps(doc))
        assert store.load(FP) is None

    def test_envelope_fields(self, tmp_path):
        store = ArtifactStore(tmp_path, pipeline_version="v1")
        store.save(FP, {"x": 1})
        doc = json.loads(store._path(FP).read_text())
        assert doc["schema"] == ARTIFACT_SCHEMA
        assert doc["pipeline_version"] == "v1"
        assert doc["fingerprint"] == FP

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(FP, {"x": 1})
        store.save(FP2, {"x": 2})
        assert store.clear() == 2
        assert len(store) == 0


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(memory_hits=3, disk_hits=1, misses=4)
        assert stats.hits == 4
        assert stats.lookups == 8
        assert stats.hit_rate == 0.5
        assert CacheStats().hit_rate == 0.0

    def test_to_dict_is_json_safe(self):
        json.dumps(CacheStats().to_dict())


class TestCompileService:
    def test_miss_then_memory_hit(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        prog, machine = _program(), MultiSIMD(k=2)
        cold = service.lookup(prog, machine)
        assert cold.cached is None
        assert cold.spans  # fresh compute records stage spans
        warm = service.lookup(_program(), machine)  # rebuilt program
        assert warm.cached == "memory"
        assert warm.result is cold.result
        assert warm.fingerprint == cold.fingerprint
        assert service.stats.memory_hits == 1
        assert service.stats.misses == 1

    def test_disk_hit_across_service_instances(self, tmp_path):
        a = CompileService(cache_dir=tmp_path)
        prog, machine = _program(), MultiSIMD(k=2)
        cold = a.lookup(prog, machine)

        b = CompileService(cache_dir=tmp_path)  # fresh memory tier
        warm = b.lookup(_program(), machine)
        assert warm.cached == "disk"
        assert b.stats.disk_hits == 1
        r, c = warm.result, cold.result
        assert r.total_gates == c.total_gates
        assert r.schedule_length == c.schedule_length
        assert r.runtime == c.runtime
        assert r.parallel_speedup == pytest.approx(c.parallel_speedup)
        assert r.comm_aware_speedup == pytest.approx(
            c.comm_aware_speedup
        )
        # Spans from the original compute travel with the artifact.
        assert warm.spans == cold.spans

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        a = CompileService(cache_dir=tmp_path)
        a.lookup(_program(), MultiSIMD(k=2))
        b = CompileService(cache_dir=tmp_path)
        assert b.lookup(_program(), MultiSIMD(k=2)).cached == "disk"
        assert b.lookup(_program(), MultiSIMD(k=2)).cached == "memory"

    def test_config_change_misses(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        service.lookup(_program(), MultiSIMD(k=2))
        entry = service.lookup(
            _program(), MultiSIMD(k=2), SchedulerConfig("rcp")
        )
        assert entry.cached is None
        assert service.stats.misses == 2

    def test_pipeline_version_change_invalidates(self, tmp_path):
        a = CompileService(cache_dir=tmp_path, pipeline_version="v1")
        a.lookup(_program(), MultiSIMD(k=2))
        assert len(a.store) == 1
        b = CompileService(cache_dir=tmp_path, pipeline_version="v2")
        # Same fingerprint paths aside, v2 requests also fingerprint
        # differently only via PIPELINE_VERSION constant; force the
        # point by loading the stored artifact directly.
        fp = next(iter(a.store.fingerprints()))
        assert b.store.load(fp) is None
        assert b.stats.invalidations == 1

    def test_explicit_invalidate_and_clear(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        entry = service.lookup(_program(), MultiSIMD(k=2))
        service.invalidate(entry.fingerprint)
        assert service.lookup(_program(), MultiSIMD(k=2)).cached is None
        service.clear()
        assert len(service.memory) == 0
        assert len(service.store) == 0

    def test_use_cache_false_recomputes_and_refreshes(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        service.lookup(_program(), MultiSIMD(k=2))
        entry = service.lookup(
            _program(), MultiSIMD(k=2), use_cache=False
        )
        assert entry.cached is None
        # ... but the artifact is refreshed for later callers.
        assert service.lookup(
            _program(), MultiSIMD(k=2)
        ).cached == "memory"

    def test_memory_only_service(self):
        service = CompileService(cache_dir=None)
        assert service.store is None
        service.lookup(_program(), MultiSIMD(k=2))
        assert service.lookup(
            _program(), MultiSIMD(k=2)
        ).cached == "memory"

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        service = CompileService(
            cache_dir=tmp_path, max_memory_entries=1
        )
        service.lookup(_program(2), MultiSIMD(k=2))
        service.lookup(_program(3), MultiSIMD(k=2))  # evicts first
        assert service.stats.evictions == 1
        entry = service.lookup(_program(2), MultiSIMD(k=2))
        assert entry.cached == "disk"

    def test_fingerprint_matches_free_function(self, tmp_path):
        service = CompileService(cache_dir=tmp_path)
        prog, machine = _program(), MultiSIMD(k=2)
        entry = service.lookup(prog, machine)
        assert entry.fingerprint == fingerprint_request(prog, machine)
