"""Unit tests for the verification helpers."""

import cmath

import numpy as np
import pytest

from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sim.verify import (
    check_permutation,
    circuits_equivalent,
    equivalent_up_to_global_phase,
    truth_table,
)

Q = [Qubit("q", i) for i in range(4)]


class TestGlobalPhase:
    def test_identical_matrices(self):
        u = np.eye(2, dtype=complex)
        assert equivalent_up_to_global_phase(u, u)

    def test_pure_phase_difference(self):
        u = np.eye(2, dtype=complex)
        v = cmath.exp(1j * 0.321) * u
        assert equivalent_up_to_global_phase(u, v)

    def test_relative_phase_not_equivalent(self):
        u = np.eye(2, dtype=complex)
        v = np.diag([1, cmath.exp(1j * 0.3)])
        assert not equivalent_up_to_global_phase(u, v)

    def test_different_shapes(self):
        assert not equivalent_up_to_global_phase(
            np.eye(2, dtype=complex), np.eye(4, dtype=complex)
        )

    def test_magnitude_difference_rejected(self):
        u = np.eye(2, dtype=complex)
        assert not equivalent_up_to_global_phase(u, 2.0 * u)


class TestCircuitsEquivalent:
    def test_hxh_equals_z(self):
        a = [
            Operation("H", (Q[0],)),
            Operation("X", (Q[0],)),
            Operation("H", (Q[0],)),
        ]
        b = [Operation("Z", (Q[0],))]
        assert circuits_equivalent(a, b, Q[:1])

    def test_tt_equals_s(self):
        a = [Operation("T", (Q[0],)), Operation("T", (Q[0],))]
        b = [Operation("S", (Q[0],))]
        assert circuits_equivalent(a, b, Q[:1])

    def test_x_not_equal_z(self):
        assert not circuits_equivalent(
            [Operation("X", (Q[0],))], [Operation("Z", (Q[0],))], Q[:1]
        )

    def test_swap_as_three_cnots(self):
        three = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("CNOT", (Q[1], Q[0])),
            Operation("CNOT", (Q[0], Q[1])),
        ]
        assert circuits_equivalent(
            three, [Operation("SWAP", (Q[0], Q[1]))], Q[:2]
        )


class TestTruthTable:
    def test_cnot_table(self):
        ops = [Operation("CNOT", (Q[0], Q[1]))]
        tbl = truth_table(ops, Q[:2], [Q[1]])
        assert tbl == {0: 0, 1: 1, 2: 1, 3: 0}

    def test_non_classical_circuit_raises(self):
        ops = [Operation("H", (Q[0],))]
        with pytest.raises(ValueError):
            truth_table(ops, [Q[0]], [Q[0]])

    def test_explicit_qubit_universe(self):
        ops = [Operation("CNOT", (Q[0], Q[2]))]
        tbl = truth_table(ops, [Q[0]], [Q[2]], all_qubits=Q[:3])
        assert tbl == {0: 0, 1: 1}


class TestPermutation:
    def test_x_is_bit_flip_permutation(self):
        assert check_permutation(
            [Operation("X", (Q[0],))], Q[:1], lambda j: j ^ 1
        )

    def test_swap_permutation(self):
        assert check_permutation(
            [Operation("SWAP", (Q[0], Q[1]))],
            Q[:2],
            lambda j: ((j & 1) << 1) | ((j >> 1) & 1),
        )

    def test_wrong_permutation_detected(self):
        assert not check_permutation(
            [Operation("X", (Q[0],))], Q[:1], lambda j: j
        )

    def test_non_permutation_detected(self):
        assert not check_permutation(
            [Operation("H", (Q[0],))], Q[:1], lambda j: j
        )
