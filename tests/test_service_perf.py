"""Unit tests for the ``perf`` harness (:mod:`repro.service.perf`)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.service import (
    PERF_SCHEMA,
    JobSpec,
    SweepRun,
    build_perf_payload,
    compare_perf_payloads,
    perf_grid,
    run_perf,
    validate_perf_payload,
)
from repro.service.perf import STAGE_FLOOR_S, _aggregate


def _outcome(label="BF|rcp", status="ok", compute_s=1.0, spans=None,
             rss=2048):
    return {
        "label": label,
        "status": status,
        "compute_s": compute_s,
        "spans": spans
        if spans is not None
        else {"schedule:rcp": {"calls": 2, "seconds": compute_s}},
        "peak_rss_kb": rss,
    }


def _run(outcomes, wall=1.0):
    return SweepRun(
        jobs=[], outcomes=outcomes, parallel=False, workers=1,
        wall_s=wall,
    )


class TestPerfGrid:
    def test_grid_is_pinned(self):
        jobs = perf_grid().expand()
        assert len(jobs) == 16  # 8 benchmarks x {rcp, lpfs}
        assert {j.algorithm for j in jobs} == {"rcp", "lpfs"}
        assert {(j.k, j.d, j.local_memory) for j in jobs} == {(4, 4, 4.0)}


class TestAggregate:
    def test_min_seconds_max_rss_across_repeats(self):
        runs = [
            _run([_outcome(compute_s=2.0, rss=1000)], wall=3.0),
            _run([_outcome(compute_s=1.5, rss=4000)], wall=2.5),
        ]
        agg = _aggregate(runs)
        assert agg["repeats"] == 2
        assert agg["total_compute_s"] == 1.5
        assert agg["wall_s"] == 2.5
        assert agg["peak_rss_kb"] == 4000
        assert agg["stages"]["schedule:rcp"]["seconds"] == 1.5
        assert agg["stages"]["schedule:rcp"]["calls"] == 2
        assert agg["failed_jobs"] == []
        assert agg["per_job"][0]["compute_s"] == 1.5

    def test_failed_jobs_recorded_and_excluded(self):
        runs = [
            _run(
                [
                    _outcome(label="good", compute_s=1.0),
                    _outcome(label="bad", status="error", compute_s=9.0),
                ]
            )
        ]
        agg = _aggregate(runs)
        assert agg["failed_jobs"] == ["bad"]
        assert agg["total_compute_s"] == 1.0


class TestPayload:
    def _fast(self):
        return _aggregate([_run([_outcome(compute_s=1.0)])])

    def _ref(self):
        return _aggregate([_run([_outcome(compute_s=2.0)])])

    def test_build_and_validate_round_trip(self):
        payload = build_perf_payload(perf_grid(), 1, self._fast(),
                                     self._ref())
        assert payload["schema"] == PERF_SCHEMA
        assert payload["speedup"] == pytest.approx(2.0)
        assert validate_perf_payload(payload) == []
        # JSON round-trip stays valid (what CI reads back from disk).
        assert validate_perf_payload(json.loads(json.dumps(payload))) == []

    def test_no_reference_means_no_speedup(self):
        payload = build_perf_payload(None, 1, self._fast(), None)
        assert payload["speedup"] is None
        assert validate_perf_payload(payload) == []

    def test_failed_jobs_suppress_speedup(self):
        fast = self._fast()
        fast["failed_jobs"] = ["BF|rcp"]
        payload = build_perf_payload(None, 1, fast, self._ref())
        assert payload["speedup"] is None

    def test_validator_flags_corruption(self):
        payload = build_perf_payload(None, 1, self._fast(), self._ref())
        for mutate, fragment in [
            (lambda d: d.update(schema="bogus/9"), "schema"),
            (lambda d: d.pop("speedup"), "speedup"),
            (lambda d: d["fast"].pop("stages"), "stages"),
            (
                lambda d: d["fast"]["stages"].update(x={"calls": "one"}),
                "calls",
            ),
            (lambda d: d.update(repeats="two"), "repeats"),
        ]:
            doc = copy.deepcopy(payload)
            mutate(doc)
            problems = validate_perf_payload(doc)
            assert problems, fragment
            assert any(fragment in p for p in problems), (fragment,
                                                          problems)

    def test_validator_rejects_non_object(self):
        assert validate_perf_payload(["not", "a", "dict"])


class TestCompare:
    def _doc(self, stage_s, total_s, ref_total=None):
        doc = {
            "fast": {
                "stages": {"schedule:rcp": {"calls": 1,
                                            "seconds": stage_s}},
                "total_compute_s": total_s,
            },
            "reference": (
                {"total_compute_s": ref_total}
                if ref_total is not None
                else None
            ),
        }
        return doc

    def test_identical_documents_pass(self):
        doc = self._doc(1.0, 1.0, ref_total=2.0)
        assert compare_perf_payloads(doc, doc) == []

    def test_stage_regression_flagged(self):
        base = self._doc(1.0, 1.0)
        cur = self._doc(2.0, 1.0)
        problems = compare_perf_payloads(cur, base)
        assert len(problems) == 1
        assert "schedule:rcp" in problems[0]

    def test_total_regression_flagged(self):
        base = self._doc(1.0, 1.0)
        cur = self._doc(1.0, 2.0)
        problems = compare_perf_payloads(cur, base)
        assert len(problems) == 1
        assert "total compute" in problems[0]

    def test_tolerance_is_respected(self):
        base = self._doc(1.0, 1.0)
        cur = self._doc(1.2, 1.2)
        assert compare_perf_payloads(cur, base, tolerance=0.25) == []
        assert compare_perf_payloads(cur, base, tolerance=0.1)

    def test_tiny_stages_skipped_as_noise(self):
        base = self._doc(STAGE_FLOOR_S / 2, STAGE_FLOOR_S / 2)
        cur = self._doc(STAGE_FLOOR_S * 10, STAGE_FLOOR_S / 2)
        assert compare_perf_payloads(cur, base) == []

    def test_machine_scale_from_reference_totals(self):
        # Current machine is 2x slower (reference total doubled): a 1.9x
        # stage slowdown is within the rescaled budget, a 3x is not.
        base = self._doc(1.0, 1.0, ref_total=10.0)
        ok = self._doc(1.9, 1.9, ref_total=20.0)
        bad = self._doc(3.0, 3.0, ref_total=20.0)
        assert compare_perf_payloads(ok, base) == []
        assert len(compare_perf_payloads(bad, base)) == 2

    def test_stage_missing_from_current_is_not_a_regression(self):
        base = self._doc(1.0, 1.0)
        cur = self._doc(1.0, 1.0)
        cur["fast"]["stages"] = {}
        assert compare_perf_payloads(cur, base) == []


class TestRunPerf:
    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_perf(repeats=0)

    def test_tiny_real_run(self):
        # One real (small) job through the measurement loop, both
        # pipelines, to cover the wiring end to end.
        jobs = [JobSpec("BF", "rcp", k=2)]
        payload = run_perf(repeats=1, jobs=jobs)
        assert validate_perf_payload(payload) == []
        assert payload["grid"] is None
        assert payload["fast"]["failed_jobs"] == []
        assert payload["reference"]["failed_jobs"] == []
        assert payload["speedup"] is not None
        assert payload["fast"]["stages"], "no spans recorded"
        assert payload["fast"]["per_job"][0]["label"].startswith("BF")


class TestPerfCLI:
    def test_bad_repeats_is_usage_error(self, capsys):
        assert main(["perf", "--repeats", "0"]) == 2
        assert "--repeats" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["perf", "--baseline", str(missing)]) == 2
        assert "not readable" in capsys.readouterr().err

    def test_invalid_baseline_json_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["perf", "--baseline", str(bad)]) == 2
        assert "not JSON" in capsys.readouterr().err

    def test_invalid_baseline_document_is_usage_error(self, tmp_path,
                                                      capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "wrong/0"}))
        assert main(["perf", "--baseline", str(bad)]) == 2
        assert "not a valid perf document" in capsys.readouterr().err
