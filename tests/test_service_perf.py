"""Unit tests for the ``perf`` harness (:mod:`repro.service.perf`)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.service import (
    PERF_SCHEMA,
    JobSpec,
    SweepRun,
    build_perf_payload,
    compare_perf_payloads,
    perf_grid,
    run_perf,
    validate_perf_payload,
)
from repro.service.perf import STAGE_FLOOR_S, _aggregate


def _outcome(label="BF|rcp", status="ok", compute_s=1.0, spans=None,
             rss=2048):
    return {
        "label": label,
        "status": status,
        "compute_s": compute_s,
        "spans": spans
        if spans is not None
        else {"schedule:rcp": {"calls": 2, "seconds": compute_s}},
        "peak_rss_kb": rss,
    }


def _run(outcomes, wall=1.0):
    return SweepRun(
        jobs=[], outcomes=outcomes, parallel=False, workers=1,
        wall_s=wall,
    )


class TestPerfGrid:
    def test_grid_is_pinned(self):
        jobs = perf_grid().expand()
        assert len(jobs) == 16  # 8 benchmarks x {rcp, lpfs}
        assert {j.algorithm for j in jobs} == {"rcp", "lpfs"}
        assert {(j.k, j.d, j.local_memory) for j in jobs} == {(4, 4, 4.0)}


class TestAggregate:
    def test_min_seconds_max_rss_across_repeats(self):
        runs = [
            _run([_outcome(compute_s=2.0, rss=1000)], wall=3.0),
            _run([_outcome(compute_s=1.5, rss=4000)], wall=2.5),
        ]
        agg = _aggregate(runs)
        assert agg["repeats"] == 2
        assert agg["total_compute_s"] == 1.5
        assert agg["wall_s"] == 2.5
        assert agg["peak_rss_kb"] == 4000
        assert agg["stages"]["schedule:rcp"]["seconds"] == 1.5
        assert agg["stages"]["schedule:rcp"]["calls"] == 2
        assert agg["failed_jobs"] == []
        assert agg["per_job"][0]["compute_s"] == 1.5

    def test_failed_jobs_recorded_and_excluded(self):
        runs = [
            _run(
                [
                    _outcome(label="good", compute_s=1.0),
                    _outcome(label="bad", status="error", compute_s=9.0),
                ]
            )
        ]
        agg = _aggregate(runs)
        assert agg["failed_jobs"] == ["bad"]
        assert agg["total_compute_s"] == 1.0


class TestPayload:
    def _fast(self):
        return _aggregate([_run([_outcome(compute_s=1.0)])])

    def _ref(self):
        return _aggregate([_run([_outcome(compute_s=2.0)])])

    def test_build_and_validate_round_trip(self):
        payload = build_perf_payload(perf_grid(), 1, self._fast(),
                                     self._ref())
        assert payload["schema"] == PERF_SCHEMA
        assert payload["speedup"] == pytest.approx(2.0)
        assert validate_perf_payload(payload) == []
        # JSON round-trip stays valid (what CI reads back from disk).
        assert validate_perf_payload(json.loads(json.dumps(payload))) == []

    def test_no_reference_means_no_speedup(self):
        payload = build_perf_payload(None, 1, self._fast(), None)
        assert payload["speedup"] is None
        assert validate_perf_payload(payload) == []

    def test_failed_jobs_suppress_speedup(self):
        fast = self._fast()
        fast["failed_jobs"] = ["BF|rcp"]
        payload = build_perf_payload(None, 1, fast, self._ref())
        assert payload["speedup"] is None

    def test_validator_flags_corruption(self):
        payload = build_perf_payload(None, 1, self._fast(), self._ref())
        for mutate, fragment in [
            (lambda d: d.update(schema="bogus/9"), "schema"),
            (lambda d: d.pop("speedup"), "speedup"),
            (lambda d: d["fast"].pop("stages"), "stages"),
            (
                lambda d: d["fast"]["stages"].update(x={"calls": "one"}),
                "calls",
            ),
            (lambda d: d.update(repeats="two"), "repeats"),
        ]:
            doc = copy.deepcopy(payload)
            mutate(doc)
            problems = validate_perf_payload(doc)
            assert problems, fragment
            assert any(fragment in p for p in problems), (fragment,
                                                          problems)

    def test_validator_rejects_non_object(self):
        assert validate_perf_payload(["not", "a", "dict"])


class TestCompare:
    def _doc(self, stage_s, total_s, ref_total=None):
        doc = {
            "fast": {
                "stages": {"schedule:rcp": {"calls": 1,
                                            "seconds": stage_s}},
                "total_compute_s": total_s,
            },
            "reference": (
                {"total_compute_s": ref_total}
                if ref_total is not None
                else None
            ),
        }
        return doc

    def test_identical_documents_pass(self):
        doc = self._doc(1.0, 1.0, ref_total=2.0)
        assert compare_perf_payloads(doc, doc) == []

    def test_stage_regression_flagged(self):
        base = self._doc(1.0, 1.0)
        cur = self._doc(2.0, 1.0)
        problems = compare_perf_payloads(cur, base)
        assert len(problems) == 1
        assert "schedule:rcp" in problems[0]

    def test_total_regression_flagged(self):
        base = self._doc(1.0, 1.0)
        cur = self._doc(1.0, 2.0)
        problems = compare_perf_payloads(cur, base)
        assert len(problems) == 1
        assert "total compute" in problems[0]

    def test_tolerance_is_respected(self):
        base = self._doc(1.0, 1.0)
        cur = self._doc(1.2, 1.2)
        assert compare_perf_payloads(cur, base, tolerance=0.25) == []
        assert compare_perf_payloads(cur, base, tolerance=0.1)

    def test_tiny_stages_skipped_as_noise(self):
        base = self._doc(STAGE_FLOOR_S / 2, STAGE_FLOOR_S / 2)
        cur = self._doc(STAGE_FLOOR_S * 10, STAGE_FLOOR_S / 2)
        assert compare_perf_payloads(cur, base) == []

    def test_machine_scale_from_reference_totals(self):
        # Current machine is 2x slower (reference total doubled): a 1.9x
        # stage slowdown is within the rescaled budget, a 3x is not.
        base = self._doc(1.0, 1.0, ref_total=10.0)
        ok = self._doc(1.9, 1.9, ref_total=20.0)
        bad = self._doc(3.0, 3.0, ref_total=20.0)
        assert compare_perf_payloads(ok, base) == []
        assert len(compare_perf_payloads(bad, base)) == 2

    def test_stage_missing_from_current_is_not_a_regression(self):
        base = self._doc(1.0, 1.0)
        cur = self._doc(1.0, 1.0)
        cur["fast"]["stages"] = {}
        assert compare_perf_payloads(cur, base) == []


class TestRunPerf:
    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_perf(repeats=0)

    def test_tiny_real_run(self):
        # One real (small) job through the measurement loop, both
        # pipelines plus a tiny in-process scale section, to cover the
        # wiring end to end.
        from repro.service import scale_perf_jobs

        jobs = [JobSpec("BF", "rcp", k=2)]
        payload = run_perf(
            repeats=1,
            jobs=jobs,
            scale_jobs=scale_perf_jobs(
                target_gates=1_500, kinds=("adder",)
            ),
            scale_fresh_process=False,
        )
        assert validate_perf_payload(payload) == []
        assert payload["grid"] is None
        assert payload["fast"]["failed_jobs"] == []
        assert payload["reference"]["failed_jobs"] == []
        assert payload["speedup"] is not None
        assert payload["fast"]["stages"], "no spans recorded"
        assert payload["fast"]["per_job"][0]["label"].startswith("BF")
        rows = payload["scale"]["jobs"]
        assert [r["status"] for r in rows] == ["ok", "ok"]
        assert payload["streamed_overhead"] is not None

    def test_no_scale_section(self):
        jobs = [JobSpec("BF", "rcp", k=2)]
        payload = run_perf(
            repeats=1, jobs=jobs, include_reference=False,
            include_scale=False,
        )
        assert payload["scale"] is None
        assert payload["streamed_overhead"] is None
        assert validate_perf_payload(payload) == []


class TestPerfCLI:
    def test_bad_repeats_is_usage_error(self, capsys):
        assert main(["perf", "--repeats", "0"]) == 2
        assert "--repeats" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["perf", "--baseline", str(missing)]) == 2
        assert "not readable" in capsys.readouterr().err

    def test_invalid_baseline_json_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["perf", "--baseline", str(bad)]) == 2
        assert "not JSON" in capsys.readouterr().err

    def test_invalid_baseline_document_is_usage_error(self, tmp_path,
                                                      capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "wrong/0"}))
        assert main(["perf", "--baseline", str(bad)]) == 2
        assert "not a valid perf document" in capsys.readouterr().err

def _scale_row(label, pipeline, mem=1000.0, interp=20000, status="ok"):
    return {
        "label": label,
        "status": status,
        "pipeline": pipeline,
        "kind": "adder",
        "algorithm": "lpfs",
        "target_gates": 1000,
        "total_gates": 1021,
        "elapsed_s": 0.5,
        "schedule_length": 700,
        "interp_rss_kb": interp,
        "peak_rss_kb": 30000,
        "peak_rss_kb_per_mgate": mem,
    }


def _scale_section(rows):
    return {"process_isolated": True, "jobs": rows}


class TestScaleValidator:
    def _payload(self, rows):
        fast = _aggregate([_run([_outcome(compute_s=1.0)])])
        return build_perf_payload(
            None, 1, fast, None, scale=_scale_section(rows)
        )

    def test_valid_scale_section(self):
        rows = [
            _scale_row("scale:adder@1000/streamed[w=8]", "streamed"),
            _scale_row("scale:adder@1000/materialized", "materialized"),
        ]
        payload = self._payload(rows)
        assert payload["schema"] == PERF_SCHEMA
        assert validate_perf_payload(payload) == []

    def test_schema_v1_accepted_without_scale(self):
        fast = _aggregate([_run([_outcome(compute_s=1.0)])])
        payload = build_perf_payload(None, 1, fast, None)
        payload["schema"] = "repro.bench-perf/1"
        del payload["scale"]
        del payload["streamed_overhead"]
        assert validate_perf_payload(payload) == []

    def test_v2_requires_scale_key(self):
        fast = _aggregate([_run([_outcome(compute_s=1.0)])])
        payload = build_perf_payload(None, 1, fast, None)
        del payload["scale"]
        problems = validate_perf_payload(payload)
        assert any("'scale'" in p for p in problems)

    def test_label_must_embed_pipeline(self):
        rows = [_scale_row("scale:adder@1000/oops", "streamed")]
        problems = validate_perf_payload(self._payload(rows))
        assert any("label must embed" in p for p in problems)

    def test_bad_pipeline_value(self):
        rows = [_scale_row("scale:adder@1000/windowed", "windowed")]
        problems = validate_perf_payload(self._payload(rows))
        assert any("pipeline" in p for p in problems)

    def test_error_rows_need_no_metrics(self):
        rows = [
            {
                "label": "scale:adder@1000/streamed[w=8]",
                "pipeline": "streamed",
                "status": "timeout",
                "error": "exceeded 600s",
            }
        ]
        assert validate_perf_payload(self._payload(rows)) == []


class TestMemoryGate:
    def _doc(self, rows):
        return {
            "fast": {"stages": {}, "total_compute_s": 0.0},
            "reference": None,
            "scale": _scale_section(rows),
        }

    def test_identical_passes(self):
        doc = self._doc(
            [_scale_row("scale:adder@1000/streamed[w=8]", "streamed")]
        )
        assert compare_perf_payloads(doc, doc) == []

    def test_memory_regression_flagged(self):
        label = "scale:adder@1000/streamed[w=8]"
        base = self._doc([_scale_row(label, "streamed", mem=1000.0)])
        cur = self._doc([_scale_row(label, "streamed", mem=2000.0)])
        problems = compare_perf_payloads(cur, base)
        assert len(problems) == 1
        assert "KiB/Mgate" in problems[0]
        # Within tolerance passes.
        ok = self._doc([_scale_row(label, "streamed", mem=1300.0)])
        assert compare_perf_payloads(ok, base,
                                     memory_tolerance=0.35) == []

    def test_interp_rss_rescales_budget(self):
        # Current machine's fresh interpreter is 2x bigger (e.g. a
        # different allocator): a 1.9x peak growth stays within the
        # rescaled budget, 3x does not.
        label = "scale:adder@1000/streamed[w=8]"
        base = self._doc(
            [_scale_row(label, "streamed", mem=1000.0, interp=20000)]
        )
        ok = self._doc(
            [_scale_row(label, "streamed", mem=1900.0, interp=40000)]
        )
        bad = self._doc(
            [_scale_row(label, "streamed", mem=3000.0, interp=40000)]
        )
        assert compare_perf_payloads(ok, base) == []
        assert len(compare_perf_payloads(bad, base)) == 1

    def test_pipeline_mismatch_refuses_comparison(self):
        label = "scale:adder@1000/streamed[w=8]"
        base_row = _scale_row(label, "streamed")
        cur_row = _scale_row(label, "materialized")
        problems = compare_perf_payloads(
            self._doc([cur_row]), self._doc([base_row])
        )
        assert len(problems) == 1
        assert "refusing to compare" in problems[0]

    def test_streamed_never_gates_against_materialized(self):
        # Different labels (the modes embed in them) simply don't pair:
        # a huge materialized number cannot trip the streamed gate.
        base = self._doc(
            [_scale_row("scale:adder@1000/materialized",
                        "materialized", mem=100.0)]
        )
        cur = self._doc(
            [_scale_row("scale:adder@1000/streamed[w=8]",
                        "streamed", mem=5000.0)]
        )
        assert compare_perf_payloads(cur, base) == []

    def test_v1_baseline_skips_memory_gate(self):
        cur = self._doc(
            [_scale_row("scale:adder@1000/streamed[w=8]", "streamed",
                        mem=9999.0)]
        )
        v1_base = {
            "fast": {"stages": {}, "total_compute_s": 0.0},
            "reference": None,
        }
        assert compare_perf_payloads(cur, v1_base) == []

    def test_error_rows_skipped(self):
        label = "scale:adder@1000/streamed[w=8]"
        base = self._doc([_scale_row(label, "streamed")])
        cur = self._doc(
            [_scale_row(label, "streamed", mem=9999.0,
                        status="error")]
        )
        assert compare_perf_payloads(cur, base) == []
