"""Tests for the inter-core makespan scheduler."""

import math

from repro.arch.machine import TELEPORT_CYCLES, MultiSIMD
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.multicore.makespan import (
    schedule_multicore,
    statement_cores,
)
from repro.multicore.partition import PartitionReport, partition_qubits
from repro.multicore.topology import CoreGraph
from repro.sched.comm import derive_movement
from repro.toolflow import SchedulerConfig

Q = [Qubit("q", i) for i in range(8)]


def _pin(assignment, cores):
    """A hand-built partition pinning specific qubits to cores."""
    occupancy = [0] * cores
    for core in assignment.values():
        occupancy[core] += 1
    return PartitionReport(
        cores=cores,
        capacity=math.inf,
        assignment=dict(assignment),
        cut_edges=0,
        cut_weight=0,
        total_weight=0,
        occupancy=tuple(occupancy),
        refined=False,
        moves=0,
        seed=0,
    )


class TestStatementCores:
    def test_majority_vote(self):
        assignment = {Q[0]: 1, Q[1]: 1, Q[2]: 0}
        stmts = [Operation("Toffoli", (Q[0], Q[1], Q[2]))]
        assert statement_cores(stmts, assignment) == [1]

    def test_tie_breaks_low(self):
        assignment = {Q[0]: 2, Q[1]: 1}
        stmts = [Operation("CNOT", (Q[0], Q[1]))]
        assert statement_cores(stmts, assignment) == [1]


class TestMakespan:
    def test_no_cut_no_intercore_cost(self):
        stmts = [Operation("CNOT", (Q[0], Q[1]))] * 3
        graph = CoreGraph.line(2)
        part = _pin({Q[0]: 0, Q[1]: 0}, 2)
        msched = schedule_multicore(
            stmts, graph, part, MultiSIMD(k=2), SchedulerConfig()
        )
        assert msched.intercore_cycles == 0
        assert msched.epochs == []
        assert msched.makespan == msched.intra_runtime
        assert msched.occupied_cores == [0]

    def test_cut_pays_teleport_epoch(self):
        stmts = [Operation("CNOT", (Q[0], Q[1]))]
        graph = CoreGraph.line(2)
        part = _pin({Q[0]: 0, Q[1]: 1}, 2)
        msched = schedule_multicore(
            stmts, graph, part, MultiSIMD(k=2), SchedulerConfig()
        )
        # One qubit crosses one link: one 4-cycle epoch.
        assert msched.intercore_teleports == 1
        assert msched.intercore_pairs == 1
        assert msched.intercore_cycles == TELEPORT_CYCLES
        assert msched.makespan == msched.intra_runtime + TELEPORT_CYCLES
        assert msched.max_hops == 1
        assert msched.min_cut_hops == 1

    def test_hop_distance_scales_rounds(self):
        """The same cut pays more on a line (2 hops) than all-to-all
        (1 hop): each extra link is a serial teleport round."""
        stmts = [Operation("CNOT", (Q[0], Q[1]))]
        pin = {Q[0]: 0, Q[1]: 2}
        far = schedule_multicore(
            stmts, CoreGraph.line(3), _pin(pin, 3),
            MultiSIMD(k=2), SchedulerConfig(),
        )
        near = schedule_multicore(
            stmts, CoreGraph.all_to_all(3), _pin(pin, 3),
            MultiSIMD(k=2), SchedulerConfig(),
        )
        assert far.max_hops == 2
        assert far.intercore_cycles == 2 * TELEPORT_CYCLES
        assert near.max_hops == 1
        assert near.intercore_cycles == TELEPORT_CYCLES
        # EPR pairs consumed = links crossed, attributed per link.
        assert far.intercore_pairs == 2
        assert sum(far.link_pairs().values()) == 2
        assert far.intra_runtime == near.intra_runtime
        assert near.makespan <= far.makespan

    def test_link_bandwidth_serializes_rounds(self):
        """Congested links serialize: on a line, gathering q1 and q2
        at core 0 routes two pairs over link (0, 1) in one epoch, so a
        sub-unit link bandwidth forces extra teleport rounds."""
        # One vote per core: the tie breaks to core 0, so q1 (one hop)
        # and q2 (two hops, via core 1) both cross link (0, 1).
        stmts = [Operation("Toffoli", (Q[0], Q[1], Q[2]))]
        pin = {Q[0]: 0, Q[1]: 1, Q[2]: 2}
        narrow = schedule_multicore(
            stmts, CoreGraph.line(3, bandwidth=0.5), _pin(pin, 3),
            MultiSIMD(k=2), SchedulerConfig(),
        )
        wide = schedule_multicore(
            stmts, CoreGraph.line(3, bandwidth=2.0), _pin(pin, 3),
            MultiSIMD(k=2), SchedulerConfig(),
        )
        assert narrow.epochs[0].core == 0
        assert narrow.epochs[0].link_loads[(0, 1)] == 2
        # Hop depth alone needs 2 rounds; a half-pair-per-round link
        # stretches the congested epoch to ceil(2 / 0.5) = 4.
        assert wide.epochs[0].rounds == 2
        assert narrow.epochs[0].rounds == 4
        assert narrow.intercore_cycles == 4 * TELEPORT_CYCLES
        assert wide.intercore_cycles == 2 * TELEPORT_CYCLES

    def test_residency_migrates(self):
        """A transferred qubit stays at its destination: the second
        statement on the same pair pays nothing."""
        stmts = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("CNOT", (Q[0], Q[1])),
        ]
        part = _pin({Q[0]: 0, Q[1]: 1}, 2)
        msched = schedule_multicore(
            stmts, CoreGraph.line(2), part,
            MultiSIMD(k=2), SchedulerConfig(),
        )
        assert len(msched.epochs) == 1
        assert msched.intercore_teleports == 1

    def test_intra_runtime_is_slowest_core(self):
        stmts = (
            [Operation("T", (Q[0],))] * 6 + [Operation("T", (Q[1],))]
        )
        part = _pin({Q[0]: 0, Q[1]: 1}, 2)
        graph = CoreGraph.line(2)
        machine = MultiSIMD(k=2)
        msched = schedule_multicore(
            stmts, graph, part, machine, SchedulerConfig()
        )
        runtimes = {
            core: msched.core_comm[core].runtime
            for core in msched.core_schedules
        }
        assert msched.intra_runtime == max(runtimes.values())

    def test_single_core_matches_direct_schedule(self):
        """With one core the multicore scheduler is exactly the
        single-core scheduler plus zero inter-core cost."""
        stmts = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("H", (Q[0],)),
            Operation("CNOT", (Q[1], Q[2])),
        ]
        graph = CoreGraph.all_to_all(1)
        part = partition_qubits(stmts, graph)
        machine = MultiSIMD(k=2)
        config = SchedulerConfig()
        msched = schedule_multicore(stmts, graph, part, machine, config)
        from repro.core.dag import DependenceDAG

        direct = config.schedule(
            DependenceDAG(stmts), k=machine.k, d=machine.d
        )
        single = msched.core_schedules[0]
        assert [
            [list(r) for r in ts.regions] for ts in single.timesteps
        ] == [
            [list(r) for r in ts.regions] for ts in direct.timesteps
        ]
        assert msched.intercore_cycles == 0
        assert (
            msched.intra_runtime
            == derive_movement(direct, machine).runtime
        )

    def test_audit_clean_schedule(self):
        from repro.multicore.audit import audit_multicore_bounds

        stmts = [Operation("CNOT", (Q[0], Q[1]))]
        part = _pin({Q[0]: 0, Q[1]: 1}, 2)
        msched = schedule_multicore(
            stmts, CoreGraph.line(2), part,
            MultiSIMD(k=2), SchedulerConfig(),
        )
        assert len(audit_multicore_bounds(msched, module="leaf")) == 0

    def test_audit_flags_understated_intercore_cycles(self):
        import dataclasses

        from repro.multicore.audit import audit_multicore_bounds

        stmts = [Operation("CNOT", (Q[0], Q[1]))]
        part = _pin({Q[0]: 0, Q[1]: 2}, 3)
        msched = schedule_multicore(
            stmts, CoreGraph.line(3), part,
            MultiSIMD(k=2), SchedulerConfig(),
        )
        # Zero out the epoch billing while keeping the transfers: now
        # the leaf claims cut teleports cost nothing.
        lying = dataclasses.replace(
            msched,
            epochs=[
                dataclasses.replace(e, cycles=0, rounds=0)
                for e in msched.epochs
            ],
        )
        diags = audit_multicore_bounds(lying, module="leaf")
        assert [d.code for d in diags] == ["QL503"]
        assert diags[0].module == "leaf"

    def test_to_dict_round_trippable_summary(self):
        stmts = [Operation("CNOT", (Q[0], Q[1]))]
        part = _pin({Q[0]: 0, Q[1]: 1}, 2)
        msched = schedule_multicore(
            stmts, CoreGraph.line(2), part,
            MultiSIMD(k=2), SchedulerConfig(),
        )
        doc = msched.to_dict()
        assert doc["makespan"] == msched.makespan
        assert doc["intercore_cycles"] == msched.intercore_cycles
        assert doc["topology"]["schema"] == "repro.core-graph/1"
