"""Tests for the schedule auditor (repro.analysis.schedule_audit) and
the collect-all violation plumbing in Schedule / replay."""

import pytest

from repro.analysis import audit_replay, audit_schedule
from repro.arch.machine import MultiSIMD
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sched.comm import derive_movement
from repro.sched.lpfs import schedule_lpfs
from repro.sched.replay import (
    ReplayAssertionError,
    ReplayError,
    replay_schedule,
)
from repro.sched.types import (
    Schedule,
    ScheduleAssertionError,
    ScheduleError,
)

A, B, C = Qubit("q", 0), Qubit("q", 1), Qubit("q", 2)


def _dag():
    return DependenceDAG([
        Operation("H", (A,)),
        Operation("CNOT", (A, B)),
        Operation("H", (B,)),
    ])


def _empty_schedule(k=2):
    return Schedule(_dag(), k=k)


class TestErrorClasses:
    def test_schedule_error_is_not_assertion_error(self):
        assert issubclass(ScheduleError, Exception)
        assert not issubclass(ScheduleError, AssertionError)

    def test_replay_error_is_not_assertion_error(self):
        assert issubclass(ReplayError, Exception)
        assert not issubclass(ReplayError, AssertionError)

    def test_deprecated_aliases(self):
        assert ScheduleAssertionError is ScheduleError
        assert ReplayAssertionError is ReplayError


class TestIterViolations:
    def test_good_schedule_has_none(self):
        sched = schedule_lpfs(_dag(), k=2)
        assert list(sched.iter_violations()) == []
        sched.validate()

    def test_collects_multiple_violations(self):
        # Node 0 unscheduled; node 2 placed before its dependence
        # (node 1); nodes 1 and 2 share qubit B in one timestep.
        sched = _empty_schedule()
        ts = sched.append_timestep()
        ts.regions[0].append(2)
        ts.regions[1].append(1)
        violations = list(sched.iter_violations())
        codes = [v.code for v in violations]
        assert "QL201" in codes  # node 0 never scheduled
        assert "QL202" in codes  # dependence 1 -> 2 broken
        assert "QL205" in codes  # qubit B touched twice in ts 0
        assert len(violations) >= 3

    def test_duplicate_node_detected(self):
        sched = _empty_schedule()
        t0 = sched.append_timestep()
        t0.regions[0].append(0)
        t1 = sched.append_timestep()
        t1.regions[0].append(0)  # again
        t2 = sched.append_timestep()
        t2.regions[0].append(1)
        t3 = sched.append_timestep()
        t3.regions[0].append(2)
        codes = [v.code for v in sched.iter_violations()]
        assert "QL201" in codes

    def test_simd_gate_mix_detected(self):
        sched = _empty_schedule()
        t0 = sched.append_timestep()
        t0.regions[0].append(0)
        t1 = sched.append_timestep()
        t1.regions[0].extend([1, 2])  # CNOT and H in one region
        codes = [v.code for v in sched.iter_violations()]
        assert "QL204" in codes

    def test_validate_raises_on_first(self):
        sched = _empty_schedule()
        with pytest.raises(ScheduleError):
            sched.validate()


class TestAuditSchedule:
    def test_collects_all_as_error_diagnostics(self):
        sched = _empty_schedule()
        ts = sched.append_timestep()
        ts.regions[0].append(2)
        ts.regions[1].append(1)
        diags = audit_schedule(sched, module="broken")
        assert diags.has_errors
        assert len(diags) >= 3
        assert {"QL201", "QL202", "QL205"} <= diags.codes()
        assert all(d.module == "broken" for d in diags)
        assert all(d.rule == "schedule-invariants" for d in diags)

    def test_clean_schedule_with_machine_is_empty(self):
        machine = MultiSIMD(k=2, local_memory=None)
        sched = schedule_lpfs(_dag(), k=2)
        derive_movement(sched, machine)
        assert len(audit_schedule(sched, machine)) == 0


class TestAuditReplay:
    def test_missing_moves_collected_not_raised(self):
        # A structurally fine schedule with its movement plan stripped:
        # every operand use becomes a residency violation.
        machine = MultiSIMD(k=2, local_memory=None)
        sched = schedule_lpfs(_dag(), k=2)
        derive_movement(sched, machine)
        for ts in sched.timesteps:
            ts.moves.clear()
        diags = audit_replay(sched, machine, module="stripped")
        assert diags.has_errors
        assert diags.codes() == {"QL301"}
        assert all(d.rule == "replay-invariants" for d in diags)
        # the raising path still aborts on the first violation
        with pytest.raises(ReplayError, match="not in region"):
            replay_schedule(sched, machine)

    def test_width_mismatch_reported(self):
        machine = MultiSIMD(k=1, local_memory=None)
        sched = schedule_lpfs(_dag(), k=2)
        derive_movement(sched, MultiSIMD(k=2, local_memory=None))
        diags = audit_replay(sched, machine)
        assert "QL306" in diags.codes()

    def test_violation_count_in_report(self):
        machine = MultiSIMD(k=2, local_memory=None)
        sched = schedule_lpfs(_dag(), k=2)
        derive_movement(sched, machine)
        for ts in sched.timesteps:
            ts.moves.clear()
        collected = []
        report = replay_schedule(
            sched, machine,
            on_violation=lambda c, m, t: collected.append((c, t)),
        )
        assert report.violations == len(collected) > 0

    def test_clean_replay_has_zero_violations(self):
        machine = MultiSIMD(k=2, local_memory=None)
        sched = schedule_lpfs(_dag(), k=2)
        derive_movement(sched, machine)
        report = replay_schedule(sched, machine)
        assert report.violations == 0
