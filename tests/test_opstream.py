"""Replayable op streams (:mod:`repro.core.opstream`) and the lazy
pass adapters (:mod:`repro.passes.stream`).

The load-bearing contract is replayability: every fresh iteration of a
stream must yield the identical op sequence, and the composed
``leaf_stream`` must emit exactly the ops the materialized
decompose+flatten pipeline places in the corresponding leaf body.
"""

from __future__ import annotations

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.core import ProgramBuilder
from repro.core.operation import Operation
from repro.core.opstream import (
    GeneratorStream,
    ListStream,
    OpStream,
    as_stream,
    iter_chunks,
    materialize,
)
from repro.core.qubits import Qubit
from repro.passes.stream import (
    decomposed_gate_counts,
    leaf_stream,
    plan_flatten,
)
from repro.toolflow import SchedulerConfig, compile_and_schedule

Q = [Qubit("q", i) for i in range(4)]
OPS = [
    Operation("H", (Q[0],)),
    Operation("CNOT", (Q[0], Q[1])),
    Operation("T", (Q[1],)),
    Operation("CNOT", (Q[2], Q[3])),
    Operation("H", (Q[3],)),
]


def op_key(op: Operation):
    return (op.gate, tuple(str(q) for q in op.qubits), op.angle)


class TestOpStream:
    def test_list_stream_replays(self):
        s = ListStream(OPS)
        assert list(s) == OPS
        assert list(s) == OPS  # second pass identical
        assert len(s) == 5

    def test_generator_stream_replays(self):
        calls = []

        def factory():
            calls.append(1)
            return iter(OPS)

        s = GeneratorStream(factory, length_hint=5)
        assert list(s) == OPS
        assert list(s) == OPS
        assert len(calls) == 2  # fresh iterator per pass
        assert len(s) == 5

    def test_unknown_length_raises(self):
        s = GeneratorStream(lambda: iter(OPS))
        with pytest.raises(TypeError):
            len(s)

    def test_as_stream_coercions(self):
        s = ListStream(OPS)
        assert as_stream(s) is s
        assert list(as_stream(OPS)) == OPS

        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 2)
        main.h(q[0])
        main.cnot(q[0], q[1])
        prog = pb.build("main")
        got = materialize(as_stream(prog.entry_module))
        assert [op.gate for op in got] == ["H", "CNOT"]

    def test_as_stream_rejects_non_leaf(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        sub.h(p[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("sub", [q[0]])
        prog = pb.build("main")
        with pytest.raises(ValueError, match="not a leaf"):
            as_stream(prog.entry_module)


class TestIterChunks:
    @pytest.mark.parametrize("window", [1, 2, 3, 5, 100])
    def test_chunks_preserve_order(self, window):
        chunks = list(iter_chunks(ListStream(OPS), window))
        assert all(len(c) <= window for c in chunks)
        assert [op for c in chunks for op in c] == OPS

    def test_none_is_one_chunk(self):
        chunks = list(iter_chunks(ListStream(OPS), None))
        assert chunks == [OPS]

    def test_empty_stream(self):
        assert list(iter_chunks(ListStream([]), 4)) == []
        assert list(iter_chunks(ListStream([]), None)) == []

    def test_bad_window(self):
        with pytest.raises(ValueError):
            list(iter_chunks(ListStream(OPS), 0))


@pytest.mark.parametrize("key", ["BF", "Grovers"])
def test_leaf_stream_matches_materialized_bodies(key):
    """``leaf_stream`` emits exactly the materialized pipeline's leaf
    bodies, op for op."""
    spec = BENCHMARKS[key]
    prog = spec.build()
    machine = MultiSIMD(k=4, d=None)
    result = compile_and_schedule(
        prog, machine, SchedulerConfig("rcp"), fth=spec.fth
    )
    leaves = [
        name for name, p in result.profiles.items() if p.is_leaf
    ]
    assert leaves
    for name in leaves:
        body = result.program.module(name).body
        streamed = materialize(leaf_stream(prog, name))
        assert len(streamed) == len(body)
        assert [op_key(o) for o in streamed] == [
            op_key(o) for o in body
        ]


@pytest.mark.parametrize("key", ["BF", "BWT", "Grovers", "Shors"])
def test_decomposed_counts_and_plan_match_pipeline(key):
    """Flattening *decisions* from hierarchical counts match the
    materialized pipeline's rewrite, module for module."""
    spec = BENCHMARKS[key]
    prog = spec.build()
    totals = decomposed_gate_counts(prog)
    plan = plan_flatten(prog, totals, spec.fth)
    result = compile_and_schedule(
        prog,
        MultiSIMD(k=4, d=None),
        SchedulerConfig("rcp"),
        fth=spec.fth,
    )
    assert totals[prog.entry] == result.total_gates
    assert plan.percent_flattened == result.flattened_percent
    for name, profile in result.profiles.items():
        assert plan.is_leaf_after(name) == profile.is_leaf
