"""Tests for QASM emission and parsing (round-trip fidelity)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import ProgramBuilder
from repro.core.qasm import QasmSyntaxError, emit_qasm, parse_qasm


def sample_program():
    pb = ProgramBuilder()
    sub = pb.module("rot_box")
    p = sub.param_register("p", 1)
    sub.rz(p[0], 0.325)
    main = pb.module("main")
    q = main.register("q", 3)
    main.h(q[0]).cnot(q[0], q[1]).toffoli(q[0], q[1], q[2])
    main.call("rot_box", [q[2]], iterations=7)
    main.meas_z(q[2])
    return pb.build("main")


class TestEmit:
    def test_contains_module_structure(self):
        text = emit_qasm(sample_program())
        assert ".module rot_box" in text
        assert ".module main .entry" in text
        assert text.count(".end") == 2

    def test_call_iteration_syntax(self):
        text = emit_qasm(sample_program())
        assert "call[7] rot_box p" not in text  # args are actuals
        assert "call[7] rot_box q[2]" in text

    def test_angle_syntax(self):
        text = emit_qasm(sample_program())
        assert "Rz (0.325) p[0]" in text

    def test_topological_emission_order(self):
        text = emit_qasm(sample_program())
        assert text.index(".module rot_box") < text.index(".module main")


class TestRoundTrip:
    def test_roundtrip_equality(self):
        prog = sample_program()
        parsed = parse_qasm(emit_qasm(prog))
        assert parsed.entry == prog.entry
        assert set(parsed.modules) == set(prog.modules)
        for name, mod in prog.modules.items():
            other = parsed.module(name)
            assert other.params == mod.params
            assert other.body == mod.body

    def test_roundtrip_preserves_angles_exactly(self):
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 1)
        angle = math.pi / 7
        main.rz(q[0], angle)
        parsed = parse_qasm(emit_qasm(pb.build("main")))
        op = next(parsed.entry_module.operations())
        assert op.angle == angle  # repr round-trip is exact

    def test_roundtrip_benchmark(self):
        from repro.benchmarks import build_grovers

        prog = build_grovers(n=4, iterations=2)
        parsed = parse_qasm(emit_qasm(prog))
        for name, mod in prog.modules.items():
            assert parsed.module(name).body == mod.body


class TestParseErrors:
    def test_unknown_gate(self):
        with pytest.raises(QasmSyntaxError, match="unknown gate"):
            parse_qasm(".module m .entry\n    BLORP q[0]\n.end\n")

    def test_bad_qubit(self):
        with pytest.raises(QasmSyntaxError, match="bad qubit"):
            parse_qasm(".module m .entry\n    H nope\n.end\n")

    def test_missing_end(self):
        with pytest.raises(QasmSyntaxError, match="missing .end"):
            parse_qasm(".module m .entry\n    H q[0]\n")

    def test_nested_module(self):
        with pytest.raises(QasmSyntaxError, match="nested"):
            parse_qasm(".module a\n.module b\n.end\n.end\n")

    def test_instruction_outside_module(self):
        with pytest.raises(QasmSyntaxError, match="outside module"):
            parse_qasm("H q[0]\n")

    def test_empty_text(self):
        with pytest.raises(QasmSyntaxError, match="no modules"):
            parse_qasm("; just a comment\n")

    def test_arity_error_carries_line(self):
        with pytest.raises(QasmSyntaxError, match="line 2"):
            parse_qasm(".module m .entry\n    CNOT q[0]\n.end\n")

    def test_unterminated_angle(self):
        with pytest.raises(QasmSyntaxError, match="unterminated"):
            parse_qasm(".module m .entry\n    Rz (0.5 q[0]\n.end\n")

    def test_comments_and_blanks_ignored(self):
        prog = parse_qasm(
            "; header\n\n.module m .entry\n    H q[0] ; flip\n\n.end\n"
        )
        assert prog.entry_module.direct_gate_count == 1

    def test_default_entry_is_last_module(self):
        prog = parse_qasm(
            ".module a\n    H q[0]\n.end\n.module b\n    T q[0]\n.end\n"
        )
        assert prog.entry == "b"


# --- property: emit/parse is the identity on random programs --------------

@st.composite
def random_program(draw):
    pb = ProgramBuilder()
    sub = pb.module("sub")
    sp = sub.param_register("p", 2)
    for _ in range(draw(st.integers(1, 5))):
        sub.gate(
            draw(st.sampled_from(["H", "T", "X", "S"])),
            sp[draw(st.integers(0, 1))],
        )
    main = pb.module("main")
    q = main.register("q", 4)
    for _ in range(draw(st.integers(1, 10))):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            main.gate(
                draw(st.sampled_from(["H", "T", "Z"])),
                q[draw(st.integers(0, 3))],
            )
        elif choice == 1:
            i, j = draw(
                st.lists(st.integers(0, 3), min_size=2, max_size=2,
                         unique=True)
            )
            main.cnot(q[i], q[j])
        else:
            i, j = draw(
                st.lists(st.integers(0, 3), min_size=2, max_size=2,
                         unique=True)
            )
            main.call(
                "sub", [q[i], q[j]],
                iterations=draw(st.integers(1, 100)),
            )
    return pb.build("main")


class TestRoundTripProperty:
    @given(random_program())
    @settings(max_examples=40, deadline=None)
    def test_identity(self, prog):
        parsed = parse_qasm(emit_qasm(prog))
        assert parsed.entry == prog.entry
        for name, mod in prog.modules.items():
            other = parsed.module(name)
            assert other.params == mod.params
            assert other.body == mod.body
