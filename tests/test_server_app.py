"""Integration tests for the compile daemon.

Each test runs a real :class:`~repro.server.ReproServer` (ephemeral
port, warm worker processes) inside ``asyncio.run`` and drives it with
the stdlib client. The ``delay_s`` testing hook (enabled via
``allow_delay``) holds jobs in flight deterministically so coalescing,
admission control, and drain behaviour can be asserted without racing
wall clocks.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.server import (
    ReproServer,
    ServerConfig,
    http_request,
    http_stream,
)
from repro.service import read_stats_snapshot


def _serve(tmp_path, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("cache_dir", str(tmp_path))
    kwargs.setdefault("allow_delay", True)
    return ReproServer(ServerConfig(**kwargs))


class TestBasicEndpoints:
    def test_healthz_stats_and_errors(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            health = await http_request(h, p, "GET", "/v1/healthz")
            assert health.status == 200
            assert health.json() == {"status": "ok", "draining": False}
            stats = await http_request(h, p, "GET", "/v1/stats")
            assert stats.status == 200
            doc = stats.json()
            assert doc["server"]["workers"] == 2
            assert doc["requests"]["total"] >= 1
            missing = await http_request(h, p, "GET", "/v1/nope")
            assert missing.status == 404
            bad_post = await http_request(h, p, "POST", "/v1/nope")
            assert bad_post.status == 404
            bad_method = await http_request(
                h, p, "DELETE", "/v1/healthz"
            )
            assert bad_method.status == 405
            unknown_job = await http_request(
                h, p, "GET", "/v1/jobs/j999999"
            )
            assert unknown_job.status == 404
            await server.drain()

        asyncio.run(go())

    def test_compile_then_cache_hit(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            body = {"source": "BF", "k": 4}
            first = await http_request(
                h, p, "POST", "/v1/compile", body=body
            )
            assert first.status == 200
            doc = first.json()
            assert doc["status"] == "ok"
            assert doc["metrics"]["runtime"] > 0
            assert doc["fingerprint"]
            assert first.headers["x-repro-cache"] == "miss"
            assert (
                first.headers["x-repro-fingerprint"]
                == doc["fingerprint"]
            )
            second = await http_request(
                h, p, "POST", "/v1/compile", body=body
            )
            assert second.status == 200
            # Tier-0: served off the store without occupying a worker.
            assert second.headers["x-repro-cache"] in ("memory", "disk")
            assert second.headers["x-repro-coalesced"] == "0"
            assert (
                second.headers["x-repro-fingerprint"]
                == doc["fingerprint"]
            )
            assert second.json()["fingerprint"] == doc["fingerprint"]
            stats = (await http_request(h, p, "GET", "/v1/stats")).json()
            assert stats["coalesce"]["cache_served"] >= 1
            await server.drain()

        asyncio.run(go())

    def test_schedule_lint_execute(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            sched = await http_request(
                h, p, "POST", "/v1/schedule",
                body={"source": "BF", "k": 4},
            )
            assert sched.status == 200
            assert sched.json()["modules"]
            lint = await http_request(
                h, p, "POST", "/v1/lint", body={"source": "BF"}
            )
            assert lint.status == 200
            assert "counts" in lint.json()["lint"]
            execute = await http_request(
                h, p, "POST", "/v1/execute",
                body={"source": "BF", "k": 4, "epr_rate": 0.5},
            )
            assert execute.status == 200
            assert execute.json()["metrics"]["engine_runtime"] > 0
            await server.drain()

        asyncio.run(go())

    def test_request_validation_errors(self, tmp_path):
        async def go():
            server = _serve(tmp_path, allow_delay=False)
            await server.start()
            h, p = server.host, server.port
            bad_field = await http_request(
                h, p, "POST", "/v1/compile",
                body={"source": "BF", "mystery": 1},
            )
            assert bad_field.status == 400
            assert "mystery" in bad_field.json()["error"]
            parse_fail = await http_request(
                h, p, "POST", "/v1/compile",
                body={"qasm": "this is not qasm"},
            )
            assert parse_fail.status == 400
            delay_off = await http_request(
                h, p, "POST", "/v1/lint",
                body={"source": "BF", "delay_s": 1.0},
            )
            assert delay_off.status == 400
            assert "allow-delay" in delay_off.json()["error"]
            await server.drain()

        asyncio.run(go())


class TestCoalescing:
    def test_storm_coalesces_to_one_compute(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            body = {"source": "BF", "k": 4, "delay_s": 0.3}
            responses = await asyncio.gather(
                *(
                    http_request(h, p, "POST", "/v1/compile", body=body)
                    for _ in range(8)
                )
            )
            assert [r.status for r in responses] == [200] * 8
            fingerprints = {r.json()["fingerprint"] for r in responses}
            assert len(fingerprints) == 1
            attached = sum(
                1
                for r in responses
                if r.headers["x-repro-coalesced"] == "1"
            )
            assert attached == 7  # exactly one fresh compute
            stats = (await http_request(h, p, "GET", "/v1/stats")).json()
            assert stats["jobs"]["submitted"] == 1
            assert stats["coalesce"]["coalesced"] == 7
            await server.drain()

        asyncio.run(go())

    def test_compile_and_schedule_coalesce_together(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            body = {"source": "BF", "k": 4, "delay_s": 0.3}
            compile_task = asyncio.create_task(
                http_request(h, p, "POST", "/v1/compile", body=body)
            )
            await asyncio.sleep(0.05)
            schedule = await http_request(
                h, p, "POST", "/v1/schedule", body=body
            )
            compiled = await compile_task
            assert compiled.status == schedule.status == 200
            assert schedule.headers["x-repro-coalesced"] == "1"
            stats = (await http_request(h, p, "GET", "/v1/stats")).json()
            assert stats["jobs"]["submitted"] == 1
            await server.drain()

        asyncio.run(go())


class TestAdmissionControl:
    def test_queue_overflow_gets_429(self, tmp_path):
        async def go():
            server = _serve(tmp_path, workers=1, queue_depth=2)
            await server.start()
            h, p = server.host, server.port
            slow = [
                {"source": "BF", "k": k, "delay_s": 1.0} for k in (3, 5)
            ]
            tasks = [
                asyncio.create_task(
                    http_request(h, p, "POST", "/v1/compile", body=b)
                )
                for b in slow
            ]
            await asyncio.sleep(0.15)  # both admitted (1 busy, 1 queued)
            refused = await http_request(
                h, p, "POST", "/v1/compile",
                body={"source": "BF", "k": 6, "delay_s": 1.0},
            )
            assert refused.status == 429
            assert int(refused.headers["retry-after"]) >= 1
            assert "queue full" in refused.json()["error"]
            # A twin of admitted work still attaches (no new slot).
            twin = await http_request(
                h, p, "POST", "/v1/compile", body=slow[0]
            )
            assert twin.status == 200
            assert twin.headers["x-repro-coalesced"] == "1"
            for r in await asyncio.gather(*tasks):
                assert r.status == 200
            stats = (await http_request(h, p, "GET", "/v1/stats")).json()
            assert stats["requests"]["rejected_queue"] == 1
            await server.drain()

        asyncio.run(go())

    def test_per_tenant_rate_limit(self, tmp_path):
        async def go():
            server = _serve(tmp_path, rate=1.0, burst=2.0)
            await server.start()
            h, p = server.host, server.port
            statuses = []
            for _ in range(4):
                r = await http_request(
                    h, p, "POST", "/v1/lint",
                    body={"source": "BF"},
                    headers={"X-Tenant": "alice"},
                )
                statuses.append(r.status)
            assert statuses.count(429) >= 1
            limited = next(
                r
                for r in [
                    await http_request(
                        h, p, "POST", "/v1/lint",
                        body={"source": "BF"},
                        headers={"X-Tenant": "alice"},
                    )
                ]
            )
            assert limited.status == 429
            assert "retry-after" in limited.headers
            # A different tenant has its own bucket.
            bob = await http_request(
                h, p, "POST", "/v1/lint",
                body={"source": "BF"},
                headers={"X-Tenant": "bob"},
            )
            assert bob.status == 200
            stats = (await http_request(h, p, "GET", "/v1/stats")).json()
            assert stats["requests"]["rejected_ratelimit"] >= 2
            await server.drain()

        asyncio.run(go())


class TestJobsAndStreaming:
    def test_async_submit_then_poll(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            accepted = await http_request(
                h, p, "POST", "/v1/compile?wait=0",
                body={"source": "BF", "k": 4, "delay_s": 0.2},
            )
            assert accepted.status == 202
            job_id = accepted.json()["job"]
            assert accepted.headers["x-repro-job"] == job_id
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                snap = (
                    await http_request(
                        h, p, "GET", f"/v1/jobs/{job_id}"
                    )
                ).json()
                if snap["state"] == "done":
                    break
                await asyncio.sleep(0.05)
            assert snap["state"] == "done"
            assert snap["outcome"]["status"] == "ok"
            assert any(
                e["event"] == "span" for e in snap["events"]
            )
            await server.drain()

        asyncio.run(go())

    def test_streaming_compile_emits_span_events(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            status, headers, _writer, lines = await http_stream(
                h, p, "POST", "/v1/compile?stream=1",
                body={"source": "BF", "k": 2},
            )
            assert status == 200
            events = [line async for line in lines]
            assert events[0]["event"] == "job"
            kinds = [e["event"] for e in events]
            assert "span" in kinds
            assert kinds[-1] == "outcome"
            assert events[-1]["outcome"]["status"] == "ok"
            await server.drain()

        asyncio.run(go())

    def test_streaming_a_cached_result(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            body = {"source": "BF", "k": 4}
            await http_request(h, p, "POST", "/v1/compile", body=body)
            status, headers, _writer, lines = await http_stream(
                h, p, "POST", "/v1/compile?stream=1", body=body
            )
            assert status == 200
            events = [line async for line in lines]
            assert [e["event"] for e in events] == ["outcome"]
            assert events[0]["outcome"]["cached"] in ("memory", "disk")
            await server.drain()

        asyncio.run(go())

    def test_stream_attach_to_finished_job(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            accepted = await http_request(
                h, p, "POST", "/v1/compile?wait=0",
                body={"source": "BF", "k": 4},
            )
            job_id = accepted.json()["job"]
            waited = await http_request(
                h, p, "POST", "/v1/compile",
                body={"source": "BF", "k": 5},
            )
            assert waited.status == 200
            status, _headers, _writer, lines = await http_stream(
                h, p, "GET", f"/v1/jobs/{job_id}?stream=1"
            )
            assert status == 200
            events = [line async for line in lines]
            assert events[-1]["event"] == "outcome"
            assert events[-1]["outcome"]["status"] == "ok"
            await server.drain()

        asyncio.run(go())


class TestTimeoutsAndRecycling:
    def test_job_timeout_recycles_worker(self, tmp_path):
        async def go():
            server = _serve(tmp_path, workers=1, job_timeout=0.3)
            await server.start()
            h, p = server.host, server.port
            timed_out = await http_request(
                h, p, "POST", "/v1/compile",
                body={"source": "BF", "k": 4, "delay_s": 5.0},
            )
            assert timed_out.status == 504
            doc = timed_out.json()
            assert doc["status"] == "timeout"
            assert doc["error"]["kind"] == "timeout"
            assert server.pool.recycled == 1
            # The replacement worker serves new requests.
            ok = await http_request(
                h, p, "POST", "/v1/compile",
                body={"source": "BF", "k": 4},
            )
            assert ok.status == 200
            stats = (await http_request(h, p, "GET", "/v1/stats")).json()
            assert stats["jobs"]["timeouts"] == 1
            assert stats["server"]["recycled"] == 1
            await server.drain()

        asyncio.run(go())

    def test_worker_crash_reports_500_and_recovers(self, tmp_path):
        async def go():
            server = _serve(tmp_path, workers=1)
            await server.start()
            h, p = server.host, server.port
            pending = asyncio.create_task(
                http_request(
                    h, p, "POST", "/v1/compile",
                    body={"source": "BF", "k": 4, "delay_s": 5.0},
                )
            )
            await asyncio.sleep(0.2)
            busy = [w for w in server.pool._workers if w.busy]
            assert busy
            os.kill(busy[0].proc.pid, signal.SIGKILL)
            crashed = await pending
            assert crashed.status == 500
            assert crashed.json()["error"]["kind"] == "worker"
            assert server.pool.recycled == 1
            ok = await http_request(
                h, p, "POST", "/v1/compile",
                body={"source": "BF", "k": 4},
            )
            assert ok.status == 200
            await server.drain()

        asyncio.run(go())


class TestDrain:
    def test_drain_completes_inflight_and_rejects_new(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            inflight = asyncio.create_task(
                http_request(
                    h, p, "POST", "/v1/compile",
                    body={"source": "BF", "k": 4, "delay_s": 0.5},
                )
            )
            await asyncio.sleep(0.15)
            drain_task = server.request_drain()
            assert server.request_drain() is drain_task  # idempotent
            finished = await inflight
            assert finished.status == 200  # in-flight work completed
            assert finished.json()["status"] == "ok"
            await drain_task
            # New connections are refused once the listener is closed.
            with pytest.raises((ConnectionError, OSError)):
                await http_request(h, p, "GET", "/v1/healthz")
            return server

        server = asyncio.run(go())
        snapshot = read_stats_snapshot(server.config.cache_dir)
        assert snapshot is not None
        extra = snapshot["extra"]["server"]
        assert extra["jobs"]["completed"] == 1
        assert extra["server"]["draining"] is True

    def test_post_during_drain_is_503(self, tmp_path):
        async def go():
            server = _serve(tmp_path)
            await server.start()
            h, p = server.host, server.port
            server._draining = True  # freeze the draining state
            refused = await http_request(
                h, p, "POST", "/v1/compile", body={"source": "BF"}
            )
            assert refused.status == 503
            health = await http_request(h, p, "GET", "/v1/healthz")
            assert health.json()["draining"] is True
            server._draining = False
            await server.drain()

        asyncio.run(go())

    def test_stats_file_written_on_drain(self, tmp_path):
        stats_file = tmp_path / "final-stats.json"

        async def go():
            server = _serve(
                tmp_path / "cache", stats_file=str(stats_file)
            )
            await server.start()
            h, p = server.host, server.port
            r = await http_request(
                h, p, "POST", "/v1/compile", body={"source": "BF"}
            )
            assert r.status == 200
            await server.drain()

        asyncio.run(go())
        doc = json.loads(stats_file.read_text())
        assert doc["jobs"]["completed"] == 1


class TestSigtermSubprocess:
    """The real thing: a `repro serve` process, TERM mid-flight."""

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [env.get("PYTHONPATH"), "src"])
        )
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "1", "--allow-delay",
                "--cache-dir", str(tmp_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line, line
            host, port = line.rsplit("http://", 1)[1].strip().rsplit(
                ":", 1
            )

            async def drive():
                task = asyncio.create_task(
                    http_request(
                        host, int(port), "POST", "/v1/compile",
                        body={"source": "BF", "k": 4, "delay_s": 0.8},
                        timeout=60,
                    )
                )
                await asyncio.sleep(0.4)  # request is in flight
                proc.send_signal(signal.SIGTERM)
                return await task

            response = asyncio.run(drive())
            assert response.status == 200  # drain completed the job
            assert proc.wait(timeout=30) == 0  # clean exit
            remaining = proc.stdout.read()
            assert "drained cleanly" in remaining
        finally:
            if proc.poll() is None:
                proc.kill()
