"""Tests for static EPR pre-distribution planning."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.epr_schedule import epr_demand_timeline, plan_epr_distribution
from repro.arch.machine import MultiSIMD
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sched.comm import derive_movement
from repro.sched.rcp import schedule_rcp

Q = [Qubit("q", i) for i in range(6)]


def scheduled(ops, k=2, local=None):
    dag = DependenceDAG(ops)
    sched = schedule_rcp(dag, k=k)
    machine = MultiSIMD(k=k, local_memory=local)
    stats = derive_movement(sched, machine)
    return sched, stats


class TestDemandTimeline:
    def test_initial_fetch_at_cycle_zero(self):
        sched, _ = scheduled([Operation("H", (Q[0],))])
        demands, runtime = epr_demand_timeline(sched)
        assert demands[0].cycle == 0
        assert demands[0].pairs == 1
        assert runtime == 5  # 4 teleport + 1 gate

    def test_total_matches_comm_stats(self):
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("H", (Q[2],)),
            Operation("CNOT", (Q[1], Q[2])),
        ]
        sched, stats = scheduled(ops)
        demands, runtime = epr_demand_timeline(sched)
        assert sum(d.pairs for d in demands) == stats.teleports
        assert runtime == stats.runtime

    def test_channels_recorded(self):
        sched, _ = scheduled([Operation("CNOT", (Q[0], Q[1]))])
        demands, _ = epr_demand_timeline(sched)
        assert demands[0].channels == {("global", "region0"): 2}

    def test_no_teleports_no_demand(self):
        # Serial chain: only the initial fetch teleports.
        ops = [Operation("T", (Q[0],)) for _ in range(5)]
        sched, _ = scheduled(ops)
        demands, _ = epr_demand_timeline(sched)
        assert len(demands) == 1


class TestPlan:
    def test_infinite_rate_never_stalls(self):
        ops = [Operation("CNOT", (Q[i], Q[i + 1])) for i in range(4)]
        sched, stats = scheduled(ops)
        plan = plan_epr_distribution(sched)
        assert plan.stall_cycles == 0
        assert plan.runtime == stats.runtime
        assert plan.total_pairs == stats.teleports

    def test_prestage_reported(self):
        sched, _ = scheduled([Operation("CNOT", (Q[0], Q[1]))])
        plan = plan_epr_distribution(sched)
        assert plan.prestage_pairs == 2

    def test_low_rate_stalls(self):
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("H", (Q[2],)),
            Operation("CNOT", (Q[0], Q[1])),
            Operation("T", (Q[2],)),
            Operation("CNOT", (Q[0], Q[1])),
        ]
        sched, _ = scheduled(ops, k=1)
        fast = plan_epr_distribution(sched, rate=100.0)
        slow = plan_epr_distribution(sched, rate=0.01)
        assert fast.stall_cycles == 0
        assert slow.stall_cycles > 0
        assert slow.runtime > fast.runtime

    def test_min_masking_rate_masks(self):
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("H", (Q[2],)),
            Operation("CNOT", (Q[0], Q[1])),
            Operation("T", (Q[2],)),
            Operation("CNOT", (Q[0], Q[1])),
        ]
        sched, _ = scheduled(ops, k=1)
        plan = plan_epr_distribution(sched)
        if plan.min_masking_rate > 0:
            check = plan_epr_distribution(
                sched, rate=plan.min_masking_rate
            )
            assert check.stall_cycles == 0

    def test_rate_below_masking_stalls(self):
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("H", (Q[2],)),
            Operation("CNOT", (Q[0], Q[1])),
            Operation("T", (Q[2],)),
            Operation("CNOT", (Q[0], Q[1])),
        ]
        sched, _ = scheduled(ops, k=1)
        plan = plan_epr_distribution(sched)
        if plan.min_masking_rate > 0.02:
            worse = plan_epr_distribution(
                sched, rate=plan.min_masking_rate / 2
            )
            assert worse.stall_cycles > 0

    def test_invalid_rate(self):
        sched, _ = scheduled([Operation("H", (Q[0],))])
        with pytest.raises(ValueError):
            plan_epr_distribution(sched, rate=0)

    def test_buffer_at_least_prestage(self):
        sched, _ = scheduled([Operation("CNOT", (Q[0], Q[1]))])
        plan = plan_epr_distribution(sched, rate=1.0)
        assert plan.peak_buffer >= plan.prestage_pairs

    @given(st.floats(0.05, 50.0))
    @settings(max_examples=30, deadline=None)
    def test_runtime_monotone_in_rate(self, rate):
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("H", (Q[2],)),
            Operation("CNOT", (Q[0], Q[1])),
            Operation("T", (Q[2],)),
            Operation("CNOT", (Q[0], Q[1])),
        ]
        sched, _ = scheduled(ops, k=1)
        lo = plan_epr_distribution(sched, rate=rate)
        hi = plan_epr_distribution(sched, rate=rate * 2)
        assert hi.stall_cycles <= lo.stall_cycles
