"""Tests for the peephole optimization pass, including simulator-backed
semantics preservation."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import ProgramBuilder
from repro.core.module import Module
from repro.core.operation import CallSite, Operation
from repro.core.qubits import Qubit
from repro.passes.optimize import (
    OptimizeStats,
    optimize_module,
    optimize_program,
)
from repro.sim.statevector import circuit_unitary
from repro.sim.verify import equivalent_up_to_global_phase

Q = [Qubit("q", i) for i in range(5)]


def leaf(ops):
    return Module("m", (), list(ops))


def gates(module):
    return [
        (s.gate, s.qubits) if isinstance(s, Operation) else ("call", s.callee)
        for s in module.body
    ]


class TestCancellation:
    def test_adjacent_self_inverse_pair(self):
        out = optimize_module(
            leaf([Operation("H", (Q[0],)), Operation("H", (Q[0],))])
        )
        assert out.body == []

    def test_dagger_pair(self):
        out = optimize_module(
            leaf([Operation("T", (Q[0],)), Operation("Tdag", (Q[0],))])
        )
        assert out.body == []

    def test_cnot_pair(self):
        out = optimize_module(
            leaf(
                [
                    Operation("CNOT", (Q[0], Q[1])),
                    Operation("CNOT", (Q[0], Q[1])),
                ]
            )
        )
        assert out.body == []

    def test_reversed_cnot_not_cancelled(self):
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("CNOT", (Q[1], Q[0])),
        ]
        assert len(optimize_module(leaf(ops)).body) == 2

    def test_cascading(self):
        ops = [
            Operation("H", (Q[0],)),
            Operation("T", (Q[0],)),
            Operation("Tdag", (Q[0],)),
            Operation("H", (Q[0],)),
        ]
        assert optimize_module(leaf(ops)).body == []

    def test_intervening_op_blocks(self):
        ops = [
            Operation("H", (Q[0],)),
            Operation("T", (Q[0],)),
            Operation("H", (Q[0],)),
        ]
        assert len(optimize_module(leaf(ops)).body) == 3

    def test_intervening_op_on_other_operand_blocks(self):
        # CNOT / X(target) / CNOT must not cancel.
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("X", (Q[1],)),
            Operation("CNOT", (Q[0], Q[1])),
        ]
        assert len(optimize_module(leaf(ops)).body) == 3

    def test_unrelated_qubits_untouched(self):
        ops = [
            Operation("H", (Q[0],)),
            Operation("H", (Q[1],)),
            Operation("H", (Q[0],)),
        ]
        # The two H(q0) are separated only by H(q1), which commutes in
        # the dependence sense? No: adjacency is per-qubit; H(q1) does
        # not touch q0, so the H(q0) pair is adjacent and cancels.
        out = optimize_module(leaf(ops))
        assert gates(out) == [("H", (Q[1],))]

    def test_call_is_barrier(self):
        ops = [
            Operation("H", (Q[0],)),
            CallSite("sub", (Q[0],)),
            Operation("H", (Q[0],)),
        ]
        out = optimize_module(leaf(ops))
        assert len(out.body) == 3

    def test_stats_counted(self):
        stats = OptimizeStats()
        optimize_module(
            leaf([Operation("S", (Q[0],)), Operation("Sdag", (Q[0],))]),
            stats,
        )
        assert stats.cancelled_pairs == 1
        assert stats.removed_ops == 2


class TestRotationMerging:
    def test_merge(self):
        ops = [
            Operation("Rz", (Q[0],), 0.3),
            Operation("Rz", (Q[0],), 0.4),
        ]
        out = optimize_module(leaf(ops))
        assert len(out.body) == 1
        assert out.body[0].angle == pytest.approx(0.7)

    def test_merge_to_zero_drops(self):
        ops = [
            Operation("Rz", (Q[0],), 0.3),
            Operation("Rz", (Q[0],), -0.3),
        ]
        assert optimize_module(leaf(ops)).body == []

    def test_full_turn_drops(self):
        ops = [
            Operation("Rz", (Q[0],), 1.5 * math.pi),
            Operation("Rz", (Q[0],), 0.5 * math.pi),
        ]
        assert optimize_module(leaf(ops)).body == []

    def test_merge_cascades(self):
        ops = [Operation("Rz", (Q[0],), 0.25) for _ in range(4)]
        out = optimize_module(leaf(ops))
        assert len(out.body) == 1
        assert out.body[0].angle == pytest.approx(1.0)

    def test_different_axes_not_merged(self):
        ops = [
            Operation("Rz", (Q[0],), 0.3),
            Operation("Rx", (Q[0],), 0.3),
        ]
        assert len(optimize_module(leaf(ops)).body) == 2

    def test_crz_merging(self):
        ops = [
            Operation("CRz", (Q[0], Q[1]), 0.2),
            Operation("CRz", (Q[0], Q[1]), 0.5),
        ]
        out = optimize_module(leaf(ops))
        assert len(out.body) == 1
        assert out.body[0].angle == pytest.approx(0.7)


class TestProgramLevel:
    def test_optimize_program(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        sub.h(p[0]).h(p[0]).t(p[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.x(q[0]).x(q[0])
        main.call("sub", [q[0]])
        prog, stats = optimize_program(pb.build("main"))
        assert stats.cancelled_pairs == 2
        assert prog.module("sub").direct_gate_count == 1
        assert prog.entry_module.direct_gate_count == 0


# --- semantics preservation (simulator-backed) -----------------------------

_GATE_POOL = ["H", "T", "Tdag", "S", "Sdag", "X", "Z"]


@st.composite
def random_circuit(draw):
    qs = Q[:3]
    n = draw(st.integers(0, 25))
    ops = []
    for _ in range(n):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            ops.append(
                Operation(
                    draw(st.sampled_from(_GATE_POOL)),
                    (draw(st.sampled_from(qs)),),
                )
            )
        elif kind == 1:
            pair = draw(
                st.lists(st.sampled_from(qs), min_size=2, max_size=2,
                         unique=True)
            )
            ops.append(Operation("CNOT", tuple(pair)))
        else:
            ops.append(
                Operation(
                    "Rz",
                    (draw(st.sampled_from(qs)),),
                    draw(st.sampled_from([0.3, -0.3, 1.1, math.pi])),
                )
            )
    return ops


class TestSemanticsPreserved:
    @given(random_circuit())
    @settings(max_examples=50, deadline=None)
    def test_unitary_unchanged(self, ops):
        out = optimize_module(leaf(ops))
        u = circuit_unitary(ops, Q[:3])
        v = circuit_unitary(list(out.operations()), Q[:3])
        assert equivalent_up_to_global_phase(u, v)

    @given(random_circuit())
    @settings(max_examples=50, deadline=None)
    def test_never_grows(self, ops):
        out = optimize_module(leaf(ops))
        assert len(out.body) <= len(ops)

    @given(random_circuit())
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, ops):
        once = optimize_module(leaf(ops))
        twice = optimize_module(once)
        assert once.body == twice.body
