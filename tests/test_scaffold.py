"""Tests for the Scaffold-dialect front-end."""

import math

import pytest

from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.core.scaffold import (
    ScaffoldSyntaxError,
    ScaffoldWarning,
    parse_scaffold,
)


def q(reg, i=0):
    return Qubit(reg, i)


class TestBasics:
    def test_minimal_module(self):
        prog = parse_scaffold("module main ( ) { qbit a; H(a); }")
        assert prog.entry == "main"
        assert list(prog.entry_module.operations()) == [
            Operation("H", (q("a"),))
        ]

    def test_qreg_and_indexing(self):
        prog = parse_scaffold(
            "module main ( ) { qreg r[3]; CNOT(r[0], r[2]); }"
        )
        op = next(prog.entry_module.operations())
        assert op.qubits == (q("r", 0), q("r", 2))

    def test_parameters(self):
        prog = parse_scaffold(
            """
            module bell ( qbit a, qbit b ) { H(a); CNOT(a, b); }
            module main ( ) { qreg x[2]; bell(x[0], x[1]); }
            """
        )
        bell = prog.module("bell")
        assert bell.params == (q("a"), q("b"))
        call = next(prog.entry_module.calls())
        assert call.callee == "bell"
        assert call.args == (q("x", 0), q("x", 1))

    def test_qreg_parameter(self):
        prog = parse_scaffold(
            """
            module f ( qreg r[2] ) { CNOT(r[0], r[1]); }
            module main ( ) { qreg x[2]; f(x[0], x[1]); }
            """
        )
        assert prog.module("f").params == (q("r", 0), q("r", 1))

    def test_comments(self):
        prog = parse_scaffold(
            """
            // line comment
            module main ( ) {
                qbit a;
                /* block
                   comment */
                H(a); // trailing
            }
            """
        )
        assert prog.entry_module.direct_gate_count == 1

    def test_entry_defaults_to_main(self):
        prog = parse_scaffold(
            """
            module zz ( qbit a ) { Z(a); }
            module main ( ) { qbit b; zz(b); }
            """
        )
        assert prog.entry == "main"

    def test_entry_falls_back_to_last(self):
        prog = parse_scaffold("module only ( ) { qbit a; X(a); }")
        assert prog.entry == "only"


class TestAngles:
    def test_literal_angle(self):
        prog = parse_scaffold("module main ( ) { qbit a; Rz(a, 0.5); }")
        op = next(prog.entry_module.operations())
        assert op.angle == pytest.approx(0.5)

    def test_pi_expression(self):
        prog = parse_scaffold(
            "module main ( ) { qbit a; Rz(a, pi / 4); }"
        )
        op = next(prog.entry_module.operations())
        assert op.angle == pytest.approx(math.pi / 4)

    def test_compound_expression(self):
        prog = parse_scaffold(
            "module main ( ) { qbit a; Rz(a, 2 * pi / 8 + 0.25); }"
        )
        op = next(prog.entry_module.operations())
        assert op.angle == pytest.approx(2 * math.pi / 8 + 0.25)

    def test_negative_angle(self):
        prog = parse_scaffold(
            "module main ( ) { qbit a; Rz(a, -pi / 2); }"
        )
        op = next(prog.entry_module.operations())
        assert op.angle == pytest.approx(-math.pi / 2)

    def test_missing_angle_rejected(self):
        with pytest.raises(ScaffoldSyntaxError, match="angle"):
            parse_scaffold("module main ( ) { qbit a; Rz(a); }")

    def test_unexpected_angle_rejected(self):
        with pytest.raises(ScaffoldSyntaxError, match="no angle"):
            parse_scaffold("module main ( ) { qbit a; H(a, 0.5); }")


class TestLoops:
    def test_for_unrolls_with_index_arithmetic(self):
        prog = parse_scaffold(
            """
            module main ( ) {
                qreg r[4];
                for i in 0 .. 2 { CNOT(r[i], r[i + 1]); }
            }
            """
        )
        ops = list(prog.entry_module.operations())
        assert [op.qubits for op in ops] == [
            (q("r", 0), q("r", 1)),
            (q("r", 1), q("r", 2)),
            (q("r", 2), q("r", 3)),
        ]

    def test_nested_for(self):
        prog = parse_scaffold(
            """
            module main ( ) {
                qreg r[4];
                for i in 0 .. 1 { for j in 2 .. 3 { CNOT(r[i], r[j]); } }
            }
            """
        )
        assert prog.entry_module.direct_gate_count == 4

    def test_loop_variable_in_angle(self):
        prog = parse_scaffold(
            """
            module main ( ) {
                qreg r[3];
                for i in 0 .. 2 { Rz(r[i], pi / (i + 1)); }
            }
            """
        )
        angles = [op.angle for op in prog.entry_module.operations()]
        assert angles == pytest.approx(
            [math.pi, math.pi / 2, math.pi / 3]
        )

    def test_repeat_call_uses_iterations(self):
        prog = parse_scaffold(
            """
            module step ( qbit a ) { T(a); }
            module main ( ) {
                qbit x;
                repeat 1000000000 { step(x); }
            }
            """
        )
        call = next(prog.entry_module.calls())
        assert call.iterations == 1_000_000_000
        # never unrolled
        assert len(prog.entry_module.body) == 1

    def test_repeat_gates_unrolls(self):
        prog = parse_scaffold(
            "module main ( ) { qbit a; repeat 3 { T(a); } }"
        )
        assert prog.entry_module.direct_gate_count == 3

    def test_repeat_gate_unroll_limit(self):
        with pytest.raises(ScaffoldSyntaxError, match="unroll"):
            parse_scaffold(
                "module main ( ) { qbit a; repeat 1000000 { T(a); } }"
            )

    def test_for_unroll_limit(self):
        with pytest.raises(ScaffoldSyntaxError, match="unroll"):
            parse_scaffold(
                "module main ( ) { qbit a;"
                " for i in 0 .. 9999999 { T(a); } }"
            )

    def test_nested_repeat_multiplies(self):
        prog = parse_scaffold(
            """
            module step ( qbit a ) { T(a); }
            module main ( ) {
                qbit x;
                repeat 10 { repeat 20 { step(x); } }
            }
            """
        )
        call = next(prog.entry_module.calls())
        assert call.iterations == 200


class TestErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("module main ( ) { qbit a; BLORP(a); }", "unknown module"),
            ("module main ( ) { qbit a; H(b); }", "undeclared"),
            ("module main ( ) { qreg r[2]; H(r); }", "needs an index"),
            ("module main ( ) { qreg r[2]; H(r[5]); }", "out of range"),
            ("module main ( ) { qbit a; qbit a; H(a); }", "duplicate"),
            ("module main ( ) { qbit a; H(a) }", "expected"),
            ("module main ( ) { qbit a; CNOT(a); }", "line"),
            ("", "no modules"),
            ("module main ( ) { qbit a; H(a);", "missing"),
        ],
    )
    def test_syntax_errors(self, source, match):
        with pytest.raises(Exception, match=match):
            parse_scaffold(source)

    def test_line_numbers_in_errors(self):
        source = "module main ( ) {\n  qbit a;\n  H(a) ;\n  X(); \n}\n"
        with pytest.raises(ScaffoldSyntaxError, match="line 4"):
            parse_scaffold(source)


class TestLocations:
    def test_error_carries_line_and_column(self):
        source = "module main ( ) {\n    qbit a;\n    H(b);\n}\n"
        with pytest.raises(ScaffoldSyntaxError) as ei:
            parse_scaffold(source)
        exc = ei.value
        assert exc.line == 3
        assert exc.column == 7  # the 'b' operand
        assert "line 3, col 7" in str(exc)
        assert "undeclared" in exc.bare_message

    def test_malformed_module_header_location(self):
        source = "module main qbit a ) { H(a); }"
        with pytest.raises(ScaffoldSyntaxError) as ei:
            parse_scaffold(source)
        assert ei.value.line == 1
        assert ei.value.code == "QL101"

    def test_bad_loop_bounds_location(self):
        source = (
            "module main ( ) {\n"
            "    qbit a;\n"
            "    for i in 5 .. 2 { H(a); }\n"
            "}\n"
        )
        with pytest.raises(
            ScaffoldSyntaxError, match="empty loop range"
        ) as ei:
            parse_scaffold(source)
        assert ei.value.line == 3

    def test_unknown_gate_location_and_code(self):
        source = "module main ( ) {\n    qbit a;\n    BLORP(a);\n}\n"
        with pytest.raises(ScaffoldSyntaxError) as ei:
            parse_scaffold(source)
        exc = ei.value
        assert exc.code == "QL103"
        assert exc.line == 3
        assert exc.column == 5
        assert "BLORP" in exc.bare_message

    def test_call_arity_error_location(self):
        source = (
            "module box ( qbit a, qbit b ) { CNOT(a, b); }\n"
            "module main ( ) {\n"
            "    qbit x;\n"
            "    box(x);\n"
            "}\n"
        )
        with pytest.raises(
            ScaffoldSyntaxError, match="expects 2"
        ) as ei:
            parse_scaffold(source)
        assert ei.value.line == 4
        assert ei.value.code == "QL103"

    def test_statement_locations_attached(self):
        source = (
            "module main ( ) {\n"
            "    qbit a;\n"
            "    H(a);\n"
            "    MeasZ(a);\n"
            "}\n"
        )
        prog = parse_scaffold(source, filename="t.scd")
        ops = list(prog.entry_module.operations())
        assert ops[0].loc is not None
        assert ops[0].loc.line == 3
        assert ops[0].loc.file == "t.scd"
        assert ops[1].loc.line == 4
        assert prog.entry_module.loc.line == 1

    def test_call_site_location_attached(self):
        source = (
            "module box ( qbit a ) { H(a); }\n"
            "module main ( ) {\n"
            "    qbit x;\n"
            "    box(x);\n"
            "}\n"
        )
        prog = parse_scaffold(source)
        call = next(prog.entry_module.calls())
        assert call.loc.line == 4

    def test_locations_do_not_affect_equality(self):
        with_loc = parse_scaffold(
            "module main ( ) { qbit a; H(a); }"
        ).entry_module.body[0]
        assert with_loc.loc is not None
        assert with_loc == Operation("H", (q("a"),))


class TestWarningsSink:
    def test_degenerate_loop_warning(self):
        warnings = []
        parse_scaffold(
            "module main ( ) {\n"
            "    qbit a;\n"
            "    for i in 2 .. 2 { H(a); }\n"
            "}\n",
            warnings=warnings,
        )
        assert len(warnings) == 1
        w = warnings[0]
        assert isinstance(w, ScaffoldWarning)
        assert w.kind == "degenerate-loop"
        assert w.loc.line == 3

    def test_degenerate_repeat_warning(self):
        warnings = []
        parse_scaffold(
            "module main ( ) { qbit a; repeat 1 { H(a); } }",
            warnings=warnings,
        )
        assert [w.kind for w in warnings] == ["degenerate-repeat"]

    def test_no_sink_no_error(self):
        # Warnings are silently dropped without a sink.
        prog = parse_scaffold(
            "module main ( ) { qbit a; repeat 1 { H(a); } }"
        )
        assert prog.entry_module is not None

    def test_clean_source_produces_no_warnings(self):
        warnings = []
        parse_scaffold(
            "module main ( ) {\n"
            "    qreg r[4];\n"
            "    for i in 0 .. 3 { H(r[i]); }\n"
            "}\n",
            warnings=warnings,
        )
        assert warnings == []


class TestEndToEnd:
    def test_scaffold_through_toolflow(self):
        from repro.arch.machine import MultiSIMD
        from repro.toolflow import compile_and_schedule

        prog = parse_scaffold(
            """
            module toffoli_box ( qbit a, qbit b, qbit c ) {
                Toffoli(a, b, c);
            }
            module main ( ) {
                qreg r[5];
                toffoli_box(r[0], r[1], r[2]);
                toffoli_box(r[0], r[3], r[4]);
            }
            """
        )
        result = compile_and_schedule(prog, MultiSIMD(k=2), fth=2 ** 62)
        assert result.total_gates == 30
        assert result.schedule_length < 24  # Figure 4's effect

    def test_scaffold_semantics_via_simulator(self):
        from repro.sim.compile_check import verify_compilation
        from repro.core.builder import ProgramBuilder

        prog = parse_scaffold(
            """
            module main ( ) {
                qreg r[2];
                H(r[0]);
                CNOT(r[0], r[1]);
                Rz(r[1], pi / 4);
            }
            """
        )
        pb = ProgramBuilder()
        main = pb.module("main")
        r = main.register("r", 2)
        main.h(r[0]).cnot(r[0], r[1]).rz(r[1], math.pi / 4)
        assert verify_compilation(pb.build("main"), prog)

    def test_roundtrip_through_qasm(self):
        from repro.core.qasm import emit_qasm, parse_qasm

        prog = parse_scaffold(
            """
            module inner ( qbit a ) { T(a); }
            module main ( ) { qbit x; repeat 7 { inner(x); } H(x); }
            """
        )
        back = parse_qasm(emit_qasm(prog))
        assert back.entry == "main"
        assert next(back.entry_module.calls()).iterations == 7
