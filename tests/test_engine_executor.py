"""Tests for the discrete-event execution engine core: the
analytic-equality invariant, agreement with the static EPR and NUMA
planners, stall monotonicity, and the replay preflight."""

import math

import pytest

from repro.arch.epr_schedule import plan_epr_distribution
from repro.arch.machine import MultiSIMD
from repro.arch.numa import NUMAConfig, numa_runtime
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.engine import (
    EngineConfig,
    EngineError,
    EPRPool,
    MachineState,
    PreflightError,
    run_schedule,
)
from repro.sched.comm import derive_movement
from repro.sched.lpfs import schedule_lpfs
from repro.sched.rcp import schedule_rcp
from repro.sched.sequential import schedule_sequential
from repro.sched.types import Move

Q = [Qubit("q", i) for i in range(10)]


def chain_dag(n=12):
    """A mixed DAG with real cross-region traffic."""
    ops = []
    for i in range(n):
        a, b = Q[i % 6], Q[(i + 3) % 6]
        if i % 3 == 0:
            ops.append(Operation("CNOT", (a, b)))
        else:
            ops.append(Operation("H" if i % 2 else "T", (a,)))
    return DependenceDAG(ops)


def annotated(machine, scheduler=schedule_rcp, n=12):
    sched = scheduler(chain_dag(n), k=machine.k)
    stats = derive_movement(sched, machine)
    return sched, stats


SCHEDULERS = [schedule_sequential, schedule_rcp, schedule_lpfs]


class TestIdealInvariant:
    """Faults off + infinite rate + no NUMA => realized == analytic."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_realized_equals_analytic(self, scheduler):
        machine = MultiSIMD(k=3)
        sched, stats = annotated(machine, scheduler)
        run = run_schedule(sched, machine)
        assert run.realized_runtime == stats.runtime
        assert run.analytic_runtime == stats.runtime
        assert run.stalls.total == 0
        assert run.gate_cycles == sched.length
        assert run.comm_cycles == stats.comm_cycles

    def test_epoch_tallies_match_comm_stats(self):
        machine = MultiSIMD(k=2)
        sched, stats = annotated(machine)
        run = run_schedule(sched, machine)
        assert run.teleport_epochs == stats.teleport_epochs
        assert run.local_epochs == stats.local_epochs
        assert run.epr_pairs == stats.teleports

    def test_scratchpad_machine(self):
        machine = MultiSIMD(k=2, local_memory=4)
        sched, stats = annotated(machine, schedule_lpfs, n=18)
        run = run_schedule(sched, machine)
        assert run.realized_runtime == stats.runtime

    def test_ops_executed_covers_dag(self):
        machine = MultiSIMD(k=2)
        sched, _ = annotated(machine)
        run = run_schedule(sched, machine)
        assert run.ops_executed == sched.op_count

    def test_utilization_bounded(self):
        machine = MultiSIMD(k=3)
        sched, _ = annotated(machine)
        run = run_schedule(sched, machine)
        assert run.utilization
        assert all(0.0 <= u <= 1.0 for u in run.utilization.values())

    def test_empty_schedule(self):
        machine = MultiSIMD(k=2)
        sched = schedule_rcp(DependenceDAG([]), k=2)
        derive_movement(sched, machine)
        run = run_schedule(sched, machine)
        assert run.realized_runtime == 0
        assert run.analytic_runtime == 0


class TestEPRRateAgreement:
    """Engine stalls at finite rate == the static plan's stalls."""

    @pytest.mark.parametrize("rate", [0.05, 0.1, 0.25, 0.5, 1.0, 2.0])
    def test_matches_plan(self, rate):
        machine = MultiSIMD(k=3)
        sched, _ = annotated(machine, n=18)
        plan = plan_epr_distribution(sched, rate)
        run = run_schedule(
            sched, machine, EngineConfig(epr_rate=rate)
        )
        assert run.stalls.epr == plan.stall_cycles
        assert run.realized_runtime == plan.runtime
        assert run.stalls.bandwidth == 0
        assert run.stalls.fault == 0

    def test_min_masking_rate_never_stalls(self):
        machine = MultiSIMD(k=3)
        sched, _ = annotated(machine, n=18)
        plan = plan_epr_distribution(sched)
        if plan.min_masking_rate > 0:
            run = run_schedule(
                sched,
                machine,
                EngineConfig(epr_rate=plan.min_masking_rate),
            )
            assert run.stalls.epr == 0

    def test_monotone_in_rate(self):
        machine = MultiSIMD(k=3)
        sched, stats = annotated(machine, n=18)
        prev = stats.runtime
        for rate in (4.0, 1.0, 0.5, 0.25, 0.1, 0.05):
            run = run_schedule(
                sched, machine, EngineConfig(epr_rate=rate)
            )
            assert run.realized_runtime >= prev
            prev = run.realized_runtime


class TestNUMAAgreement:
    """Engine bandwidth serialization == the static NUMA billing."""

    @pytest.mark.parametrize(
        "config",
        [
            NUMAConfig(banks=2, channel_bandwidth=1.0),
            NUMAConfig(banks=2, channel_bandwidth=2.0),
            NUMAConfig(banks=4, channel_bandwidth=1.0, bank_egress=2.0),
            NUMAConfig(banks=1, bank_egress=1.0),
        ],
    )
    def test_matches_numa_runtime(self, config):
        machine = MultiSIMD(k=3)
        sched, _ = annotated(machine, n=18)
        stats = numa_runtime(sched, config)
        run = run_schedule(sched, machine, EngineConfig(numa=config))
        assert run.realized_runtime == stats.runtime
        assert run.teleport_rounds == stats.teleport_rounds
        assert run.stalls.epr == 0
        assert run.stalls.fault == 0

    def test_unconstrained_numa_adds_nothing(self):
        machine = MultiSIMD(k=3)
        sched, stats = annotated(machine)
        run = run_schedule(
            sched, machine, EngineConfig(numa=NUMAConfig(banks=3))
        )
        assert run.realized_runtime == stats.runtime
        assert run.stalls.bandwidth == 0

    def test_combined_rate_and_bandwidth_compose(self):
        machine = MultiSIMD(k=3)
        sched, stats = annotated(machine, n=18)
        numa = NUMAConfig(banks=2, channel_bandwidth=1.0)
        run = run_schedule(
            sched,
            machine,
            EngineConfig(epr_rate=0.25, numa=numa),
        )
        assert run.stalls.bandwidth > 0 or run.stalls.epr > 0
        assert (
            run.realized_runtime
            == stats.runtime + run.stalls.total
        )


class TestPreflight:
    def test_clean_schedule_passes(self):
        machine = MultiSIMD(k=2)
        sched, _ = annotated(machine)
        run = run_schedule(sched, machine, preflight=True)
        assert run.preflight_violations == 0

    def test_skipped_preflight_reports_none(self):
        machine = MultiSIMD(k=2)
        sched, _ = annotated(machine)
        run = run_schedule(sched, machine, preflight=False)
        assert run.preflight_violations is None

    def test_broken_plan_refused(self):
        machine = MultiSIMD(k=2)
        sched, _ = annotated(machine)
        # Corrupt the movement plan: claim a qubit teleports from a
        # region it is not in.
        target = next(
            ts for ts in sched.timesteps if ts.moves
        )
        bogus = Move(Q[9], ("region", 1), ("region", 0), "teleport")
        target.moves.append(bogus)
        with pytest.raises(PreflightError) as err:
            run_schedule(sched, machine)
        assert err.value.violations
        codes = {code for code, _, _ in err.value.violations}
        assert codes & {"QL301", "QL302", "QL305"}

    def test_no_preflight_executes_broken_plan(self):
        machine = MultiSIMD(k=2)
        sched, _ = annotated(machine)
        target = next(ts for ts in sched.timesteps if ts.moves)
        target.moves.append(
            Move(Q[9], ("region", 1), ("region", 0), "teleport")
        )
        run = run_schedule(sched, machine, preflight=False)
        assert run.realized_runtime > 0

    def test_machine_too_small(self):
        machine = MultiSIMD(k=4)
        sched, _ = annotated(machine)
        with pytest.raises(EngineError):
            run_schedule(sched, MultiSIMD(k=2))


class TestEPRPool:
    def test_infinite_rate_never_stalls(self):
        pool = EPRPool()
        assert pool.stall_for(1000, 0) == 0

    def test_prestage_covers_cycle_zero(self):
        pool = EPRPool(rate=0.1, prestage=5)
        assert pool.stall_for(5, 0) == 0
        assert pool.stall_for(6, 0) == 10

    def test_stall_accounts_consumption(self):
        pool = EPRPool(rate=1.0)
        moves = [
            Move(Q[i], ("global",), ("region", 0), "teleport")
            for i in range(3)
        ]
        pool.consume(moves)
        assert pool.consumed == 3
        assert pool.stall_for(2, 2) == 3  # need 5 produced, have 2

    def test_wasted_attempts_delay_later_epochs(self):
        fast = EPRPool(rate=1.0)
        slow = EPRPool(rate=1.0)
        moves = [Move(Q[0], ("global",), ("region", 0), "teleport")]
        fast.consume(moves, wasted_attempts=0)
        slow.consume(moves, wasted_attempts=4)
        assert slow.stall_for(3, 2) > fast.stall_for(3, 2)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            EPRPool(rate=0.0)

    def test_channel_accounting(self):
        pool = EPRPool()
        pool.consume(
            [
                Move(Q[0], ("global",), ("region", 1), "teleport"),
                Move(Q[1], ("global",), ("region", 1), "teleport"),
            ]
        )
        assert pool.channel_pairs == {("global", "region1"): 2}


class TestMachineState:
    def test_move_tracking(self):
        state = MachineState(2, MultiSIMD(k=2, local_memory=2))
        state.apply_move(
            Move(Q[0], ("global",), ("region", 1), "teleport")
        )
        assert state.location(Q[0]) == ("region", 1)
        state.apply_move(
            Move(Q[0], ("region", 1), ("local", 1), "local")
        )
        assert Q[0] in state.pads[1]
        assert state.peak_pad[1] == 1
        state.apply_move(
            Move(Q[0], ("local", 1), ("region", 1), "local")
        )
        assert Q[0] not in state.pads[1]

    def test_cannot_rewind_clock(self):
        state = MachineState(1, MultiSIMD(k=1))
        with pytest.raises(ValueError):
            state.advance(-1)

    def test_utilization_zero_runtime(self):
        state = MachineState(2, MultiSIMD(k=2))
        assert state.utilization() == {0: 0.0, 1: 0.0}


class TestEngineConfig:
    def test_defaults_are_ideal(self):
        assert EngineConfig().ideal

    def test_finite_rate_not_ideal(self):
        assert not EngineConfig(epr_rate=1.0).ideal

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            EngineConfig(epr_rate=0)

    def test_to_dict_json_safe(self):
        import json

        from repro.engine import FaultConfig

        config = EngineConfig(
            epr_rate=math.inf,
            numa=NUMAConfig(banks=2),
            faults=FaultConfig(epr_failure_prob=0.1),
        )
        doc = json.loads(json.dumps(config.to_dict()))
        assert doc["epr_rate"] == "inf"
        assert doc["numa"]["banks"] == 2
        assert doc["faults"]["epr_failure_prob"] == 0.1
