"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("BF", "BWT", "CN", "Grovers", "GSE", "SHA-1",
                    "Shors", "TFP"):
            assert key in out


class TestEstimate:
    def test_benchmark_estimate(self, capsys):
        assert main(["estimate", "GSE"]) == 0
        out = capsys.readouterr().out
        assert "total gates" in out
        assert "minimum qubits: 13" in out

    def test_unknown_source(self, capsys):
        assert main(["estimate", "NOPE"]) == 2
        assert "neither a benchmark" in capsys.readouterr().err


class TestCompile:
    def test_benchmark_compile(self, capsys):
        assert main(["compile", "GSE", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "comm-aware speedup" in out
        assert "Multi-SIMD(2,inf)" in out

    def test_json_output(self, capsys):
        assert main(["compile", "GSE", "-k", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["machine"]["k"] == 2
        assert data["scheduler"] == "lpfs"
        assert data["total_gates"] > 0

    def test_rcp_selection(self, capsys):
        assert main(
            ["compile", "GSE", "-k", "2", "--scheduler", "rcp",
             "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scheduler"] == "rcp"

    def test_local_memory_flag(self, capsys):
        assert main(
            ["compile", "GSE", "-k", "2", "--local-mem", "inf"]
        ) == 0
        assert "local=inf" in capsys.readouterr().out

    def test_bad_local_memory(self, capsys):
        assert main(["compile", "GSE", "--local-mem", "lots"]) == 2
        assert "bad local-memory" in capsys.readouterr().err

    def test_timeline_and_profile(self, capsys):
        assert main(
            ["compile", "GSE", "-k", "2", "--timeline", "4",
             "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "blackbox dimensions" in out
        assert "cycle" in out

    def test_qasm_file_roundtrip(self, tmp_path, capsys):
        # emit a benchmark, then compile the emitted file.
        target = tmp_path / "prog.qasm"
        assert main(["emit", "GSE", "-o", str(target)]) == 0
        capsys.readouterr()
        assert main(["compile", str(target), "-k", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["entry"] == "main"


class TestEmit:
    def test_emit_to_stdout(self, capsys):
        assert main(["emit", "GSE"]) == 0
        out = capsys.readouterr().out
        assert ".module main .entry" in out

    def test_emit_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.qasm"
        assert main(["emit", "Grovers", "-o", str(target)]) == 0
        assert target.exists()
        assert ".module main .entry" in target.read_text()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fth_override(self, capsys):
        assert main(
            ["compile", "GSE", "-k", "2", "--fth", "100"]
        ) == 0
        assert "FTh=100" in capsys.readouterr().out


class TestScaffoldInput:
    def test_compile_scaffold_file(self, tmp_path, capsys):
        source = tmp_path / "prog.scaffold"
        source.write_text(
            """
            module box ( qbit a, qbit b, qbit c ) { Toffoli(a, b, c); }
            module main ( ) {
                qreg r[5];
                box(r[0], r[1], r[2]);
                box(r[0], r[3], r[4]);
            }
            """
        )
        assert main(
            ["compile", str(source), "-k", "2", "--fth", "0", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["total_gates"] == 30

    def test_emit_scaffold_as_qasm(self, tmp_path, capsys):
        source = tmp_path / "prog.scd"
        source.write_text(
            "module main ( ) { qbit a; repeat 9 { H(a); } }"
        )
        assert main(["emit", str(source)]) == 0
        out = capsys.readouterr().out
        assert ".module main .entry" in out


CLEAN_SCAFFOLD = """
module main ( ) {
    qreg q[2];
    PrepZ(q[0]);
    PrepZ(q[1]);
    H(q[0]);
    CNOT(q[0], q[1]);
    MeasZ(q[0]);
    MeasZ(q[1]);
}
"""

# Unknown gate: front-end call-resolution error (QL103).
BROKEN_SCAFFOLD = """
module main ( ) {
    qreg q[2];
    H(q[0]);
    BLORP(q[1]);
}
"""

# Operates on a measured qubit: dataflow error (QL006).
USE_AFTER_MEASURE = """
module main ( ) {
    qbit a;
    PrepZ(a);
    MeasZ(a);
    H(a);
}
"""


class TestLint:
    def test_clean_benchmark_exits_zero(self, capsys):
        assert main(["lint", "Grovers"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_clean_file(self, tmp_path, capsys):
        source = tmp_path / "clean.scd"
        source.write_text(CLEAN_SCAFFOLD)
        assert main(["lint", str(source)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_dirty_file_exits_one(self, tmp_path, capsys):
        source = tmp_path / "dirty.scd"
        source.write_text(BROKEN_SCAFFOLD)
        assert main(["lint", str(source)]) == 1
        out = capsys.readouterr().out
        assert "QL103" in out
        assert "BLORP" in out
        assert "dirty.scd:5" in out

    def test_dataflow_error_exits_one(self, tmp_path, capsys):
        source = tmp_path / "uam.scd"
        source.write_text(USE_AFTER_MEASURE)
        assert main(["lint", str(source)]) == 1
        assert "QL006" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        source = tmp_path / "dirty.scd"
        source.write_text(BROKEN_SCAFFOLD)
        assert main(["lint", str(source), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["error"] >= 1
        codes = {d["code"] for d in data["diagnostics"]}
        assert "QL103" in codes
        entry = next(
            d for d in data["diagnostics"] if d["code"] == "QL103"
        )
        assert entry["severity"] == "error"
        assert entry["location"]["line"] == 5

    def test_fail_on_never(self, tmp_path):
        source = tmp_path / "dirty.scd"
        source.write_text(BROKEN_SCAFFOLD)
        assert main(
            ["lint", str(source), "--fail-on", "never"]
        ) == 0

    def test_fail_on_warning(self, tmp_path):
        # A degenerate loop is a warning-level finding (QL102).
        source = tmp_path / "warn.scd"
        source.write_text(
            """
            module main ( ) {
                qbit a;
                PrepZ(a);
                for i in 0 .. 0 { H(a); }
                MeasZ(a);
            }
            """
        )
        assert main(["lint", str(source)]) == 0
        assert main(
            ["lint", str(source), "--fail-on", "warning"]
        ) == 1

    def test_lint_all_registry(self, capsys):
        assert main(["lint", "all"]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out or "warning" in out

    def test_unknown_source(self, capsys):
        assert main(["lint", "NOPE"]) == 2
        assert "neither a benchmark" in capsys.readouterr().err


class TestExitCodes:
    def test_parse_error_is_three(self, tmp_path, capsys):
        source = tmp_path / "bad.scd"
        source.write_text(BROKEN_SCAFFOLD)
        assert main(["compile", str(source), "-k", "2"]) == 3
        err = capsys.readouterr().err
        assert "BLORP" in err
        assert "line 5" in err

    def test_qasm_parse_error_is_three(self, tmp_path, capsys):
        source = tmp_path / "bad.qasm"
        source.write_text("this is not qasm at all\n")
        assert main(["estimate", str(source)]) == 3
        assert "error:" in capsys.readouterr().err

    def test_strict_analysis_failure_is_one(self, tmp_path, capsys):
        source = tmp_path / "uam.scd"
        source.write_text(USE_AFTER_MEASURE)
        assert main(
            ["compile", str(source), "-k", "2", "--strict"]
        ) == 1
        assert "QL006" in capsys.readouterr().err

    def test_strict_clean_compile_passes(self, capsys):
        assert main(["compile", "GSE", "-k", "2", "--strict"]) == 0
        assert "comm-aware speedup" in capsys.readouterr().out

    def test_schedule_error_is_four(self, monkeypatch, capsys):
        from repro import cli
        from repro.sched.types import ScheduleError

        def boom(*_args, **_kwargs):
            raise ScheduleError("synthetic invariant violation")

        monkeypatch.setattr(cli, "compile_and_schedule", boom)
        assert main(["compile", "GSE", "-k", "2"]) == 4
        assert "synthetic" in capsys.readouterr().err

    def test_replay_error_is_four(self, monkeypatch, capsys):
        from repro import cli
        from repro.sched.replay import ReplayError

        def boom(*_args, **_kwargs):
            raise ReplayError("unrealisable plan")

        monkeypatch.setattr(cli, "compile_and_schedule", boom)
        assert main(["compile", "GSE", "-k", "2"]) == 4
        assert "unrealisable" in capsys.readouterr().err
