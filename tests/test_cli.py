"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("BF", "BWT", "CN", "Grovers", "GSE", "SHA-1",
                    "Shors", "TFP"):
            assert key in out


class TestEstimate:
    def test_benchmark_estimate(self, capsys):
        assert main(["estimate", "GSE"]) == 0
        out = capsys.readouterr().out
        assert "total gates" in out
        assert "minimum qubits: 13" in out

    def test_unknown_source(self):
        with pytest.raises(SystemExit, match="neither a benchmark"):
            main(["estimate", "NOPE"])


class TestCompile:
    def test_benchmark_compile(self, capsys):
        assert main(["compile", "GSE", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "comm-aware speedup" in out
        assert "Multi-SIMD(2,inf)" in out

    def test_json_output(self, capsys):
        assert main(["compile", "GSE", "-k", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["machine"]["k"] == 2
        assert data["scheduler"] == "lpfs"
        assert data["total_gates"] > 0

    def test_rcp_selection(self, capsys):
        assert main(
            ["compile", "GSE", "-k", "2", "--scheduler", "rcp",
             "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scheduler"] == "rcp"

    def test_local_memory_flag(self, capsys):
        assert main(
            ["compile", "GSE", "-k", "2", "--local-mem", "inf"]
        ) == 0
        assert "local=inf" in capsys.readouterr().out

    def test_bad_local_memory(self):
        with pytest.raises(SystemExit, match="bad local-memory"):
            main(["compile", "GSE", "--local-mem", "lots"])

    def test_timeline_and_profile(self, capsys):
        assert main(
            ["compile", "GSE", "-k", "2", "--timeline", "4",
             "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "blackbox dimensions" in out
        assert "cycle" in out

    def test_qasm_file_roundtrip(self, tmp_path, capsys):
        # emit a benchmark, then compile the emitted file.
        target = tmp_path / "prog.qasm"
        assert main(["emit", "GSE", "-o", str(target)]) == 0
        capsys.readouterr()
        assert main(["compile", str(target), "-k", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["entry"] == "main"


class TestEmit:
    def test_emit_to_stdout(self, capsys):
        assert main(["emit", "GSE"]) == 0
        out = capsys.readouterr().out
        assert ".module main .entry" in out

    def test_emit_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.qasm"
        assert main(["emit", "Grovers", "-o", str(target)]) == 0
        assert target.exists()
        assert ".module main .entry" in target.read_text()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fth_override(self, capsys):
        assert main(
            ["compile", "GSE", "-k", "2", "--fth", "100"]
        ) == 0
        assert "FTh=100" in capsys.readouterr().out


class TestScaffoldInput:
    def test_compile_scaffold_file(self, tmp_path, capsys):
        source = tmp_path / "prog.scaffold"
        source.write_text(
            """
            module box ( qbit a, qbit b, qbit c ) { Toffoli(a, b, c); }
            module main ( ) {
                qreg r[5];
                box(r[0], r[1], r[2]);
                box(r[0], r[3], r[4]);
            }
            """
        )
        assert main(
            ["compile", str(source), "-k", "2", "--fth", "0", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["total_gates"] == 30

    def test_emit_scaffold_as_qasm(self, tmp_path, capsys):
        source = tmp_path / "prog.scd"
        source.write_text(
            "module main ( ) { qbit a; repeat 9 { H(a); } }"
        )
        assert main(["emit", str(source)]) == 0
        out = capsys.readouterr().out
        assert ".module main .entry" in out
