"""The ``verify`` CLI verb: exit-code contract and printed output.

Exit 0 = proven equivalent, 1 = semantic mismatch (minimal
counterexample printed), 2 = usage error, 4 = an op outside the
classical-permutation subset was located (with the offending gate)."""

from __future__ import annotations

import json

import pytest

from repro.arch.machine import MultiSIMD
from repro.cli import main
from repro.core.qasm import emit_qasm
from repro.service.stream_io import write_schedule_stream
from repro.sim.specs import build_kernel_program
from repro.toolflow import SchedulerConfig, compile_and_schedule_streamed

MACHINE = MultiSIMD(k=4, d=None)


@pytest.fixture(scope="module")
def adder_qasm(tmp_path_factory):
    """A width-4 Cuccaro adder kernel as a QASM file."""
    prog = build_kernel_program("adder", 4)
    path = tmp_path_factory.mktemp("verify") / "adder4.qasm"
    path.write_text(emit_qasm(prog))
    return str(path)


@pytest.fixture(scope="module")
def adder_stream(tmp_path_factory):
    """A schedule-stream export of the width-4 adder kernel."""
    prog = build_kernel_program("adder", 4)
    result = compile_and_schedule_streamed(
        prog, MACHINE, SchedulerConfig("lpfs"), decompose=False,
        window=64, keep_schedules=True,
    )
    path = tmp_path_factory.mktemp("verify") / "adder4.jsonl"
    write_schedule_stream(
        str(path), result.columns["add"], result.stream_schedules["add"],
        MACHINE, module="add",
    )
    qasm = tmp_path_factory.mktemp("verify") / "adder4s.qasm"
    qasm.write_text(emit_qasm(prog))
    return str(qasm), str(path)


class TestSelfCheck:
    def test_schedule_replay_ok(self, adder_qasm, capsys):
        assert main(["verify", adder_qasm]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "add" in out

    def test_window_and_scheduler_flags(self, adder_qasm, capsys):
        assert main(
            ["verify", adder_qasm, "--window", "64",
             "--scheduler", "rcp", "-k", "2"]
        ) == 0
        assert "rcp" in capsys.readouterr().out

    def test_non_reversible_source_refused(self, capsys):
        # scale:adder's entry applies a Hadamard prologue: located by
        # the hierarchical pre-scan, exit 4, no scheduling attempted.
        assert main(["verify", "scale:adder:1e3"]) == 4
        err = capsys.readouterr().err
        assert "H(" in err
        assert "not classically reversible" in err
        assert "--spec" in err


class TestSpecMode:
    def test_exhaustive_adder(self, adder_qasm, capsys):
        assert main(
            ["verify", adder_qasm, "--spec", "adder", "--exhaustive"]
        ) == 0
        out = capsys.readouterr().out
        assert "ripple-carry adder" in out
        assert "all 512 inputs" in out  # 2*4+1 input bits
        assert "schedule replay" in out

    def test_scale_adder_sampled(self, capsys):
        # The H prologue lives in the entry, outside the bound kernel;
        # the spec composes the call multiplicity in closed form.
        assert main(
            ["verify", "scale:adder:1e4", "--spec", "adder",
             "--samples", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "64 sampled inputs" in out
        assert "applications" in out

    def test_no_schedule_skips_second_proof(self, adder_qasm, capsys):
        assert main(
            ["verify", adder_qasm, "--spec", "adder", "--exhaustive",
             "--no-schedule"]
        ) == 0
        assert "schedule replay" not in capsys.readouterr().out

    def test_unknown_spec(self, adder_qasm, capsys):
        assert main(["verify", adder_qasm, "--spec", "nope"]) == 2
        assert "unknown spec" in capsys.readouterr().err

    def test_shape_mismatch_reported(self, adder_qasm, capsys):
        assert main(
            ["verify", adder_qasm, "--spec", "compare"]
        ) == 2
        assert "register shape" in capsys.readouterr().err

    def test_iterations_override(self, adder_qasm, capsys):
        assert main(
            ["verify", adder_qasm, "--spec", "adder", "--exhaustive",
             "--iterations", "3", "--no-schedule"]
        ) == 0
        assert "3 applications" in capsys.readouterr().out


class TestStreamMode:
    def test_replay_matches(self, adder_stream, capsys):
        qasm, stream = adder_stream
        assert main(["verify", qasm, "--stream", stream]) == 0
        assert "OK" in capsys.readouterr().out

    def test_corrupted_stream_mismatch(self, adder_stream, tmp_path,
                                       capsys):
        qasm, stream = adder_stream
        lines = open(stream).read().splitlines()
        header = json.loads(lines[0])
        cnot = header["gates"].index("CNOT")
        for i, line in enumerate(lines[1:], start=1):
            data = json.loads(line)
            if "comm" in data:
                raise AssertionError("no CNOT found")
            hit = False
            for _r, ops in data["regions"]:
                for entry in ops:
                    if entry[1] == cnot and entry[2][0] != entry[2][1]:
                        entry[2].reverse()
                        hit = True
                        break
                if hit:
                    break
            if hit:
                lines[i] = json.dumps(data, separators=(",", ":"))
                break
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        assert main(["verify", qasm, "--stream", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "MISMATCH" in out
        assert "counterexample input:" in out

    def test_missing_file(self, adder_qasm, capsys):
        assert main(
            ["verify", adder_qasm, "--stream", "/nonexistent.jsonl"]
        ) == 2
        assert "not found" in capsys.readouterr().err


class TestUsage:
    def test_exhaustive_and_samples_conflict(self, adder_qasm, capsys):
        assert main(
            ["verify", adder_qasm, "--exhaustive", "--samples", "8"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_sample_count(self, adder_qasm, capsys):
        assert main(["verify", adder_qasm, "--samples", "0"]) == 2
        assert "--samples" in capsys.readouterr().err

    def test_unknown_source(self, capsys):
        assert main(["verify", "NOPE.qasm"]) == 2
