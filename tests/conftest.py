"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import ProgramBuilder
from repro.core.dag import DependenceDAG
from repro.core.qubits import Qubit


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from current pipeline output",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should regenerate golden snapshots."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def qubits():
    """Ten generic qubits q[0..9]."""
    return [Qubit("q", i) for i in range(10)]


@pytest.fixture
def two_toffoli_program():
    """The paper's Figure 4 program: two Toffolis sharing qubit a."""
    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", 5)
    main.toffoli(q[0], q[1], q[2])
    main.toffoli(q[0], q[3], q[4])
    return pb.build("main")


@pytest.fixture
def modular_toffoli_program():
    """Figure 4's modular variant: each Toffoli in its own module."""
    pb = ProgramBuilder()
    tof = pb.module("toffoli_box")
    p = tof.param_register("p", 3)
    tof.toffoli(p[0], p[1], p[2])
    main = pb.module("main")
    q = main.register("q", 5)
    main.call("toffoli_box", [q[0], q[1], q[2]])
    main.call("toffoli_box", [q[0], q[3], q[4]])
    return pb.build("main")


def make_chain_program(length: int = 20):
    """A fully serial single-qubit chain (worst case for parallelism)."""
    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", 1)
    for i in range(length):
        main.gate("T" if i % 2 == 0 else "H", q[0])
    return pb.build("main")


def make_parallel_program(width: int = 8, depth: int = 4):
    """`width` independent single-qubit chains (embarrassingly
    parallel)."""
    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", width)
    for _ in range(depth):
        for i in range(width):
            main.h(q[i])
    return pb.build("main")


@pytest.fixture
def chain_program():
    return make_chain_program()


@pytest.fixture
def parallel_program():
    return make_parallel_program()


def leaf_dag(program):
    """DAG of the entry module (must be a leaf)."""
    entry = program.entry_module
    assert entry.is_leaf
    return DependenceDAG(list(entry.body))
