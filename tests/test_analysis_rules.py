"""Tests for the built-in program-level lint rules (QL001-QL007).

Each rule gets one clean and one dirty fixture; a property test then
checks the central calibration claim: every registry benchmark is free
of ERROR-severity findings.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import ProgramBuilder
from repro.analysis import Severity, analyze_program
from repro.benchmarks import BENCHMARKS, benchmark_names
from repro.core.operation import CallSite


def _clean_entry(pb: ProgramBuilder) -> None:
    """Add a well-formed entry module calling nothing."""
    m = pb.module("main")
    q = m.register("q", 2)
    m.prep_z(q[0]).prep_z(q[1])
    m.h(q[0]).cnot(q[0], q[1])
    m.meas_z(q[0]).meas_z(q[1])


def _codes(program, code=None):
    diags = analyze_program(program)
    if code is None:
        return diags.codes()
    return diags.by_code(code)


class TestUseBeforeInit:  # QL001
    def test_dirty_measure_first(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.meas_z(q[0])
        found = _codes(pb.build("main"), "QL001")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "measured before" in found[0].message
        assert found[0].qubit == "q[0]"

    def test_dirty_unprepared_in_prepping_module(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 2)
        m.prep_z(q[0]).h(q[0])
        m.h(q[1])  # q[1] never prepared, but the module preps q[0]
        m.meas_z(q[0]).meas_z(q[1])
        found = _codes(pb.build("main"), "QL001")
        assert len(found) == 1
        assert found[0].qubit == "q[1]"
        assert "without preparation" in found[0].message

    def test_clean(self):
        pb = ProgramBuilder()
        _clean_entry(pb)
        assert not _codes(pb.build("main"), "QL001")

    def test_params_are_exempt(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        sub.h(p[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.prep_z(q[0]).call(sub, [q[0]]).meas_z(q[0])
        assert not _codes(pb.build("main"), "QL001")


class TestCallAliasing:  # QL002
    def test_dirty_argument_captures_callee_local(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        anc = sub.register("anc", 1)
        sub.cnot(p[0], anc[0])
        main = pb.module("main")
        # The caller's 'anc' register collides with the callee's local
        # 'anc': under name-based binding the argument aliases it.
        anc_m = main.register("anc", 1)
        main.prep_z(anc_m[0]).call(sub, [anc_m[0]])
        found = _codes(pb.build("main"), "QL002")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "aliases" in found[0].message
        assert found[0].module == "main"

    def test_dirty_duplicate_args_on_handbuilt_call(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 2)
        sub.cnot(p[0], p[1])
        main = pb.module("main")
        q = main.register("q", 2)
        main.prep_z(q[0]).prep_z(q[1]).call(sub, [q[0], q[1]])
        program = pb.build("main")
        # The constructor rejects duplicate args, so forge the call the
        # way an external deserialiser might.
        call = next(
            s for s in program.module("main").body
            if isinstance(s, CallSite)
        )
        object.__setattr__(call, "args", (q[0], q[0]))
        found = _codes(program, "QL002")
        assert any("two parameters" in d.message for d in found)

    def test_clean(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        anc = sub.register("anc", 1)
        sub.cnot(p[0], anc[0]).cnot(p[0], anc[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.prep_z(q[0]).call(sub, [q[0]]).meas_z(q[0])
        assert not _codes(pb.build("main"), "QL002")


class TestAncillaLeak:  # QL003
    def test_dirty_leaked_ancilla(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        anc = sub.register("anc", 1)
        sub.cnot(p[0], anc[0])  # entangled, never uncomputed
        main = pb.module("main")
        q = main.register("q", 1)
        main.prep_z(q[0]).call(sub, [q[0]]).meas_z(q[0])
        found = _codes(pb.build("main"), "QL003")
        assert len(found) == 1
        assert found[0].module == "sub"
        assert found[0].qubit == "anc[0]"
        assert "ancilla leak" in found[0].message

    def test_clean_uncompute_palindrome(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        anc = sub.register("anc", 1)
        # compute / use / uncompute on the ancilla
        sub.cnot(p[0], anc[0])
        sub.cz(anc[0], p[0])
        sub.cnot(p[0], anc[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.prep_z(q[0]).call(sub, [q[0]]).meas_z(q[0])
        assert not _codes(pb.build("main"), "QL003")

    def test_clean_measured_ancilla(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        anc = sub.register("anc", 1)
        sub.cnot(p[0], anc[0]).meas_z(anc[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.prep_z(q[0]).call(sub, [q[0]]).meas_z(q[0])
        assert not _codes(pb.build("main"), "QL003")

    def test_entry_module_is_exempt(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 2)
        m.prep_z(q[0]).prep_z(q[1]).cnot(q[0], q[1])
        assert not _codes(pb.build("main"), "QL003")


class TestDeadQubit:  # QL004
    def test_dirty_unused_parameter(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 2)
        sub.h(p[0])  # p[1] unused
        main = pb.module("main")
        q = main.register("q", 2)
        main.prep_z(q[0]).prep_z(q[1])
        main.call(sub, [q[0], q[1]])
        main.meas_z(q[0]).meas_z(q[1])
        found = _codes(pb.build("main"), "QL004")
        assert len(found) == 1
        assert found[0].qubit == "p[1]"

    def test_clean(self):
        pb = ProgramBuilder()
        _clean_entry(pb)
        assert not _codes(pb.build("main"), "QL004")


class TestUnreachableModule:  # QL005
    def test_dirty_orphan_module(self):
        pb = ProgramBuilder()
        orphan = pb.module("orphan")
        p = orphan.param_register("p", 1)
        orphan.h(p[0])
        _clean_entry(pb)
        found = _codes(pb.build("main"), "QL005")
        assert len(found) == 1
        assert found[0].module == "orphan"

    def test_clean(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        sub.h(p[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.prep_z(q[0]).call(sub, [q[0]]).meas_z(q[0])
        assert not _codes(pb.build("main"), "QL005")


class TestUseAfterMeasure:  # QL006
    def test_dirty_gate_after_measure(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.prep_z(q[0]).meas_z(q[0]).h(q[0])
        found = _codes(pb.build("main"), "QL006")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "after measurement" in found[0].message

    def test_dirty_double_measure_is_warning(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.prep_z(q[0]).h(q[0]).meas_z(q[0]).meas_z(q[0])
        found = _codes(pb.build("main"), "QL006")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "measured twice" in found[0].message

    def test_dirty_double_prep_is_warning(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.prep_z(q[0]).prep_z(q[0]).h(q[0]).meas_z(q[0])
        found = _codes(pb.build("main"), "QL006")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "prepared twice" in found[0].message

    def test_clean_reprepared_qubit(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.prep_z(q[0]).h(q[0]).meas_z(q[0])
        m.prep_z(q[0]).h(q[0]).meas_z(q[0])
        assert not _codes(pb.build("main"), "QL006")

    def test_call_weakens_measured_state(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        sub.prep_z(p[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.prep_z(q[0]).meas_z(q[0])
        main.call(sub, [q[0]])  # callee may re-prepare
        main.h(q[0]).meas_z(q[0])
        assert not _codes(pb.build("main"), "QL006")


class TestAngleSanity:  # QL007
    def test_dirty_unreduced_angle(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.prep_z(q[0]).rz(q[0], 9.0).meas_z(q[0])
        found = _codes(pb.build("main"), "QL007")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "exceeds" in found[0].message

    def test_zero_angle_is_info(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.prep_z(q[0]).rz(q[0], 0.0).meas_z(q[0])
        found = _codes(pb.build("main"), "QL007")
        assert len(found) == 1
        assert found[0].severity is Severity.INFO

    def test_clean(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.prep_z(q[0]).rz(q[0], math.pi / 4).meas_z(q[0])
        assert not _codes(pb.build("main"), "QL007")


class TestAnalyzeProgram:
    def test_codes_filter(self):
        pb = ProgramBuilder()
        m = pb.module("main")
        q = m.register("q", 1)
        m.meas_z(q[0])  # QL001
        m.rz(q[0], 0.0)  # QL007 (info) -- also QL006 error
        program = pb.build("main")
        only = analyze_program(program, codes=["QL007"])
        assert only.codes() == {"QL007"}

    def test_unknown_code_rejected(self):
        pb = ProgramBuilder()
        _clean_entry(pb)
        with pytest.raises(KeyError):
            analyze_program(pb.build("main"), codes=["QL999"])


# Cache built benchmarks: hypothesis revisits keys, builds are costly.
_BUILT = {}


def _built(key):
    if key not in _BUILT:
        _BUILT[key] = BENCHMARKS[key].build()
    return _BUILT[key]


class TestBenchmarkCalibration:
    @settings(deadline=None, max_examples=8)
    @given(st.sampled_from(benchmark_names()))
    def test_registry_benchmarks_have_no_errors(self, key):
        diags = analyze_program(_built(key))
        assert not diags.has_errors, diags.render()
