"""Unit tests for the daemon's job registry, rate limiter, API
model, and worker loop (run in-process, no forking)."""

import asyncio
import queue
import threading

import pytest

from repro.server.api import (
    ApiError,
    ApiRequest,
    build_program,
    parse_api_request,
    request_key,
    run_api_request,
    status_for_outcome,
)
from repro.server.jobs import (
    DONE,
    ERROR,
    Job,
    JobRegistry,
    QUEUED,
    RateLimiter,
    RUNNING,
    TIMEOUT,
    TokenBucket,
)
from repro.server.pool import worker_main
from repro.service import CompileService


def _job(key="compile:fp", **kwargs):
    return Job(
        id="j000001",
        key=key,
        kind="compile",
        fingerprint="fp",
        request={"kind": "compile", "source": "BF"},
        **kwargs,
    )


class TestJob:
    def test_lifecycle_and_snapshot(self):
        job = _job()
        assert job.state == QUEUED and not job.finished
        job.mark_running()
        assert job.state == RUNNING and job.started_unix is not None
        job.finish(DONE, {"status": "ok"})
        assert job.finished and job.done.is_set()
        snap = job.snapshot()
        assert snap["job"] == "j000001"
        assert snap["state"] == DONE
        assert snap["outcome"] == {"status": "ok"}

    def test_finish_is_idempotent(self):
        job = _job()
        job.finish(ERROR, {"status": "error"})
        job.finish(DONE, {"status": "ok"})  # late duplicate: ignored
        assert job.state == ERROR
        assert job.outcome == {"status": "error"}

    def test_mark_running_only_from_queued(self):
        job = _job()
        job.finish(TIMEOUT, {"status": "timeout"})
        job.mark_running()
        assert job.state == TIMEOUT

    def test_publish_assigns_sequence_numbers(self):
        job = _job()
        job.publish({"event": "start"})
        job.publish({"event": "span", "name": "pass:flatten"})
        assert [e["seq"] for e in job.events] == [0, 1]

    def test_subscribe_replays_then_streams_live(self):
        async def go():
            job = _job()
            job.publish({"event": "start"})
            q = job.subscribe()
            job.publish({"event": "span", "name": "x"})
            job.finish(DONE, {"status": "ok"})
            seen = []
            while True:
                item = await q.get()
                if item is None:
                    break
                seen.append(item["event"])
            return seen

        assert asyncio.run(go()) == ["start", "span"]

    def test_subscribe_to_finished_job_ends_immediately(self):
        async def go():
            job = _job()
            job.publish({"event": "start"})
            job.finish(DONE, {"status": "ok"})
            q = job.subscribe()
            first = await q.get()
            sentinel = await q.get()
            return first["event"], sentinel

        assert asyncio.run(go()) == ("start", None)


class TestJobRegistry:
    def test_create_then_coalesce(self):
        reg = JobRegistry()
        job, created = reg.get_or_create(
            "compile:fp", "compile", "fp", {}, "t"
        )
        assert created and job.coalesced == 0
        twin, created2 = reg.get_or_create(
            "compile:fp", "compile", "fp", {}, "t"
        )
        assert twin is job and not created2
        assert job.coalesced == 1
        assert reg.coalesced == 1 and reg.submitted == 1

    def test_finish_releases_coalescing_slot(self):
        reg = JobRegistry()
        job, _ = reg.get_or_create("compile:fp", "compile", "fp", {}, "t")
        reg.finish(job, DONE, {"status": "ok"})
        assert reg.active_count == 0
        fresh, created = reg.get_or_create(
            "compile:fp", "compile", "fp", {}, "t"
        )
        assert created and fresh is not job
        assert reg.completed == 1

    def test_finish_counters_by_state(self):
        reg = JobRegistry()
        for state, attr in (
            (DONE, "completed"),
            (ERROR, "failed"),
            (TIMEOUT, "timeouts"),
        ):
            job, _ = reg.get_or_create(
                f"compile:{state}", "compile", state, {}, "t"
            )
            reg.finish(job, state, {"status": state})
            assert getattr(reg, attr) == 1
        doc = reg.to_dict()
        assert doc["submitted"] == 3 and doc["active"] == 0

    def test_history_prunes_only_finished(self):
        reg = JobRegistry(history=2)
        keep, _ = reg.get_or_create("compile:live", "compile", "x", {}, "t")
        for i in range(4):
            job, _ = reg.get_or_create(
                f"compile:{i}", "compile", str(i), {}, "t"
            )
            reg.finish(job, DONE, {"status": "ok"})
        assert len(reg.jobs) == 2  # pruned down to the history bound
        assert reg.get(keep.id) is keep  # live jobs are never evicted
        assert reg.get(job.id) is job  # newest finished job retained

    def test_finished_jobs_stay_queryable(self):
        reg = JobRegistry()
        job, _ = reg.get_or_create("compile:fp", "compile", "fp", {}, "t")
        reg.finish(job, DONE, {"status": "ok"})
        assert reg.get(job.id).state == DONE


class TestTokenBucket:
    def test_burst_then_rejection(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.acquire(now=0.0) == (True, 0.0)
        assert bucket.acquire(now=0.0) == (True, 0.0)
        allowed, retry = bucket.acquire(now=0.0)
        assert not allowed and retry == pytest.approx(1.0)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        bucket.acquire(now=0.0)
        bucket.acquire(now=0.0)
        assert bucket.acquire(now=0.1)[0] is False
        assert bucket.acquire(now=0.6)[0] is True  # ~1 token back

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=1.0)
        bucket.acquire(now=0.0)
        bucket.acquire(now=10.0)
        allowed, _ = bucket.acquire(now=10.0)
        assert not allowed  # refill capped at burst=1, not 1000


class TestRateLimiter:
    def test_disabled_when_rate_none(self):
        limiter = RateLimiter(None)
        for _ in range(100):
            assert limiter.acquire("t") == (True, 0.0)
        assert limiter.rejections == 0

    def test_tenants_are_isolated(self):
        limiter = RateLimiter(rate=1.0, burst=1.0)
        assert limiter.acquire("alice", now=0.0)[0]
        assert not limiter.acquire("alice", now=0.0)[0]
        assert limiter.acquire("bob", now=0.0)[0]
        assert limiter.rejections == 1

    def test_default_burst_is_twice_rate(self):
        assert RateLimiter(rate=5.0).burst == 10.0
        assert RateLimiter(rate=0.1).burst == 1.0  # floor of 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0.5)


class TestParseApiRequest:
    def test_benchmark_compile_defaults(self):
        req = parse_api_request("compile", {"source": "BF"})
        assert req.kind == "compile"
        assert req.k == 4 and req.scheduler == "lpfs"
        assert req.resolved_fth >= 1  # benchmark-specific threshold

    def test_roundtrips_through_dict(self):
        req = parse_api_request(
            "execute",
            {
                "source": "BF",
                "k": 2,
                "local_memory": "inf",
                "epr_rate": 0.5,
                "seed": 7,
            },
        )
        again = ApiRequest.from_dict(req.to_dict())
        assert again == req

    @pytest.mark.parametrize(
        "kind,body",
        [
            ("nope", {"source": "BF"}),
            ("compile", []),  # not an object
            ("compile", {}),  # no source at all
            ("compile", {"source": "BF", "qasm": "x"}),  # two sources
            ("compile", {"source": "NotABench"}),
            ("compile", {"source": "BF", "mystery": 1}),
            ("compile", {"source": "BF", "k": 0}),
            ("compile", {"source": "BF", "k": "four"}),
            ("compile", {"source": "BF", "d": 0}),
            ("compile", {"source": "BF", "scheduler": "magic"}),
            ("compile", {"source": "BF", "fth": 0}),
            ("compile", {"source": "BF", "local_memory": "lots"}),
            ("compile", {"source": "BF", "delay_s": -1}),
            ("compile", {"source": "BF", "delay_s": 1e9}),
            ("compile", {"qasm": 42}),
            ("execute", {"source": "BF", "epr_rate": -1}),
            ("execute", {"source": "BF", "epr_rate": "fast"}),
            ("execute", {"source": "BF", "seed": 1.5}),
            ("lint", {"source": "BF", "k": 2}),  # k not valid for lint
        ],
    )
    def test_rejects_bad_bodies_with_400(self, kind, body):
        with pytest.raises(ApiError) as err:
            parse_api_request(kind, body)
        assert err.value.status == 400

    def test_execute_inf_epr_rate_normalizes_to_none(self):
        req = parse_api_request(
            "execute", {"source": "BF", "epr_rate": "inf"}
        )
        assert req.epr_rate is None


class TestRequestKey:
    def test_compile_and_schedule_share_a_job_key(self):
        compile_req = parse_api_request("compile", {"source": "BF"})
        schedule_req = parse_api_request("schedule", {"source": "BF"})
        program = build_program(compile_req)
        key_c, fp_c = request_key(compile_req, program)
        key_s, fp_s = request_key(schedule_req, program)
        assert key_c == key_s and fp_c == fp_s
        assert key_c.startswith("compile:")

    def test_execute_mixes_engine_parameters(self):
        program = build_program(
            parse_api_request("compile", {"source": "BF"})
        )
        keys = set()
        for body in (
            {"source": "BF"},
            {"source": "BF", "seed": 1},
            {"source": "BF", "epr_rate": 0.5},
        ):
            req = parse_api_request("execute", body)
            key, fp = request_key(req, program)
            assert key.startswith("execute:")
            keys.add(key)
        assert len(keys) == 3  # engine params change the key

    def test_lint_keys_under_its_own_kind(self):
        req = parse_api_request("lint", {"source": "BF"})
        key, _ = request_key(req, build_program(req))
        assert key.startswith("lint:")

    def test_config_changes_change_the_fingerprint(self):
        program = build_program(
            parse_api_request("compile", {"source": "BF"})
        )
        fps = set()
        for body in (
            {"source": "BF"},
            {"source": "BF", "k": 2},
            {"source": "BF", "scheduler": "rcp"},
            {"source": "BF", "optimize": True},
        ):
            req = parse_api_request("compile", body)
            fps.add(request_key(req, program)[1])
        assert len(fps) == 4


class TestStatusForOutcome:
    @pytest.mark.parametrize(
        "outcome,status",
        [
            ({"status": "ok"}, 200),
            ({"status": "error", "error": {"kind": "parse"}}, 400),
            ({"status": "error", "error": {"kind": "analysis"}}, 422),
            ({"status": "timeout", "error": {"kind": "timeout"}}, 504),
            ({"status": "error", "error": {"kind": "schedule"}}, 500),
            ({"status": "error"}, 500),
        ],
    )
    def test_mapping(self, outcome, status):
        assert status_for_outcome(outcome) == status


class TestRunApiRequest:
    def test_compile_outcome(self):
        service = CompileService()  # memory-only
        outcome = run_api_request(
            {"kind": "compile", "source": "BF", "k": 4}, service
        )
        assert outcome["status"] == "ok"
        assert outcome["metrics"]["runtime"] > 0
        assert outcome["spans"]  # span timings recorded
        assert outcome["elapsed_s"] >= 0

    def test_schedule_outcome_adds_module_summary(self):
        outcome = run_api_request(
            {"kind": "schedule", "source": "BF", "k": 4},
            CompileService(),
        )
        assert outcome["status"] == "ok"
        assert outcome["modules"]
        entry = next(iter(outcome["modules"].values()))
        assert "is_leaf" in entry

    def test_parse_failure_is_classified(self):
        outcome = run_api_request(
            {"kind": "compile", "qasm": "not a program"},
            CompileService(),
        )
        assert outcome["status"] == "error"
        assert outcome["error"]["kind"] == "parse"
        assert status_for_outcome(outcome) == 400

    def test_execute_outcome_has_engine_metrics(self):
        outcome = run_api_request(
            {
                "kind": "execute",
                "source": "BF",
                "k": 4,
                "epr_rate": 0.5,
                "seed": 0,
            },
            CompileService(),
        )
        assert outcome["status"] == "ok"
        assert outcome["metrics"]["engine_runtime"] > 0
        assert outcome["metrics"]["engine_stall_epr"] >= 0

    def test_execute_recompiles_disk_cached_results(self, tmp_path):
        # Warm the disk store with one service, execute with another:
        # the disk artifact has no schedule bodies, so the worker must
        # recompile before the engine run.
        warm = CompileService(cache_dir=str(tmp_path))
        assert (
            run_api_request(
                {"kind": "compile", "source": "BF", "k": 4}, warm
            )["status"]
            == "ok"
        )
        cold = CompileService(cache_dir=str(tmp_path))
        outcome = run_api_request(
            {"kind": "execute", "source": "BF", "k": 4}, cold
        )
        assert outcome["status"] == "ok"
        assert outcome["cached"] == "disk"
        assert outcome["metrics"]["engine_runtime"] > 0

    def test_lint_outcomes_for_each_source_kind(self):
        service = CompileService()
        for body in (
            {"kind": "lint", "source": "BF"},
            {"kind": "lint", "qasm": "qubit q0;\nh q0;\n"},
            {
                "kind": "lint",
                "scaffold": "module main() { qbit q[1]; H(q[0]); }",
            },
        ):
            outcome = run_api_request(body, service)
            assert outcome["status"] == "ok", outcome
            assert "counts" in outcome["lint"]

    def test_delay_hook_requires_opt_in(self):
        import time

        started = time.perf_counter()
        outcome = run_api_request(
            {"kind": "lint", "source": "BF", "delay_s": 5.0},
            CompileService(),
            allow_delay=False,
        )
        assert outcome["status"] == "ok"
        assert time.perf_counter() - started < 4.0  # delay not honored


class TestWorkerMain:
    """The worker loop driven in-process over plain queues."""

    def _run_worker(self, tasks):
        task_q, event_q = queue.Queue(), queue.Queue()
        for task in tasks:
            task_q.put(task)
        task_q.put(None)  # shutdown sentinel
        thread = threading.Thread(
            target=worker_main,
            args=(task_q, event_q, None, True, True),
        )
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()
        events = []
        while not event_q.empty():
            events.append(event_q.get_nowait())
        return events

    def test_emits_start_spans_done(self):
        events = self._run_worker(
            [("j1", {"kind": "compile", "source": "BF", "k": 4})]
        )
        kinds = [e[0] for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "done"
        assert "span" in kinds
        done = events[-1]
        assert done[1] == "j1"
        assert done[2]["status"] == "ok"
        span_names = {e[2]["name"] for e in events if e[0] == "span"}
        assert any(n.startswith("pass:") for n in span_names)

    def test_processes_jobs_in_order_and_stays_warm(self):
        events = self._run_worker(
            [
                ("j1", {"kind": "compile", "source": "BF", "k": 4}),
                ("j2", {"kind": "compile", "source": "BF", "k": 4}),
            ]
        )
        done = [e for e in events if e[0] == "done"]
        assert [e[1] for e in done] == ["j1", "j2"]
        # Same worker, same in-memory LRU: the twin is a memory hit.
        assert done[1][2]["cached"] == "memory"

    def test_malformed_task_still_produces_terminal_event(self):
        events = self._run_worker([("j1", {"source": "BF"})])  # no kind
        done = [e for e in events if e[0] == "done"]
        assert len(done) == 1
        assert done[0][2]["status"] == "error"
        assert done[0][2]["error"]["kind"] == "worker"
