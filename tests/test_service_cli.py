"""Tests for the ``repro bench`` CLI verb."""

import json

from repro.cli import main
from repro.service import SWEEP_SCHEMA, validate_sweep_payload


def _bench(tmp_path, *extra, out="sweep.json"):
    path = tmp_path / out
    argv = [
        "bench", "BF", "-k", "2", "--serial",
        "--cache-dir", str(tmp_path / "cache"),
        "-o", str(path),
        *extra,
    ]
    return main(argv), path


class TestBenchCommand:
    def test_text_output_and_report(self, tmp_path, capsys):
        code, path = _bench(tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "BF" in out
        assert "1/1 jobs ok" in out
        payload = json.loads(path.read_text())
        assert payload["schema"] == SWEEP_SCHEMA
        assert validate_sweep_payload(payload) == []
        job = payload["jobs"][0]
        assert job["status"] == "ok"
        assert job["metrics"]["total_gates"] > 0
        # Per-stage instrumentation made it into the report.
        assert any(k.startswith("pass:") for k in job["spans"])
        assert any(k.startswith("schedule:") for k in job["spans"])

    def test_second_run_hits_cache_with_identical_metrics(
        self, tmp_path, capsys
    ):
        code, cold_path = _bench(tmp_path, out="cold.json")
        assert code == 0
        code, warm_path = _bench(tmp_path, out="warm.json")
        assert code == 0
        assert "1 served from cache (100%)" in capsys.readouterr().out
        cold = json.loads(cold_path.read_text())
        warm = json.loads(warm_path.read_text())
        assert warm["cache"]["hit_rate"] >= 0.9
        assert warm["jobs"][0]["cached"] in ("memory", "disk")
        assert [j["metrics"] for j in warm["jobs"]] == [
            j["metrics"] for j in cold["jobs"]
        ]
        assert [j["fingerprint"] for j in warm["jobs"]] == [
            j["fingerprint"] for j in cold["jobs"]
        ]

    def test_json_format(self, tmp_path, capsys):
        code, _ = _bench(tmp_path, "--format", "json")
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == SWEEP_SCHEMA
        assert len(payload["jobs"]) == 1

    def test_grid_options(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        code = main([
            "bench", "BF,Grovers", "--schedulers", "rcp,lpfs",
            "-k", "2", "--serial", "--no-cache",
            "-o", str(path),
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert len(payload["jobs"]) == 4
        assert payload["grid"]["benchmarks"] == ["BF", "Grovers"]
        assert payload["grid"]["algorithms"] == ["rcp", "lpfs"]
        capsys.readouterr()

    def test_unknown_benchmark_is_usage_error(self, capsys):
        code = main([
            "bench", "NOPE", "--serial", "-o", "",
        ])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bad_scheduler_is_usage_error(self, capsys):
        code = main([
            "bench", "BF", "--schedulers", "fifo", "--serial",
            "-o", "",
        ])
        assert code == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_empty_output_skips_report(self, tmp_path, capsys):
        code = main([
            "bench", "BF", "-k", "2", "--serial", "--no-cache",
            "-o", "",
        ])
        assert code == 0
        assert "wrote" not in capsys.readouterr().out

    def test_no_cache_never_hits(self, tmp_path, capsys):
        for _ in range(2):
            code = main([
                "bench", "BF", "-k", "2", "--serial", "--no-cache",
                "-o", "",
            ])
            assert code == 0
        assert "0 served from cache" in capsys.readouterr().out
