.module main
H q[0]
