.module main
.entry
H ψ[0]
.end
