.module box p[0]
H p[0]
.end
.module main
.entry
call[x] box q[0]
.end
