.module main
.entry
H q
.end
