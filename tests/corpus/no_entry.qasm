.module helper
H q[0]
.end
