"""Tests for the interprocedural qubit-lifetime analysis (QL4xx)."""

from __future__ import annotations

import json
from typing import List

from repro.analysis.dataflow import solve_bottom_up
from repro.analysis.deep import analyze_deep
from repro.analysis.lifetime_rules import (
    LifetimeAnalysis,
    emit_lifetime_events,
)
from repro.arch.machine import MultiSIMD
from repro.core.module import Module, Program
from repro.core.operation import CallSite, Operation
from repro.core.qubits import Qubit

# k=1 keeps the QL501 width-fit rule quiet on deliberately tiny
# programs so these tests see only the lifetime findings.
NARROW = MultiSIMD(k=1, d=4)


def q(name: str, index: int = 0) -> Qubit:
    return Qubit(name, index)


def deep_codes(program: Program) -> List[str]:
    return [d.code for d in analyze_deep(program, machine=NARROW).diagnostics]


def lifetime_kinds(program: Program) -> List[str]:
    summaries = solve_bottom_up(program, LifetimeAnalysis()).summaries
    return [ev.kind for ev in emit_lifetime_events(program, summaries)]


class TestDeadWrite:
    def test_prep_never_consumed(self):
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                Operation("PrepZ", (q("b"),)),
                Operation("H", (q("b"),)),
                Operation("MeasZ", (q("b"),)),
            ],
        )
        assert deep_codes(Program([main], entry="main")) == ["QL401"]

    def test_callee_that_repreps_keeps_prep_dead(self):
        # reinit's first action on its parameter is a preparation, so
        # the caller's preceding prep is never observed.
        reinit = Module(
            "reinit",
            params=(q("p"),),
            body=[
                Operation("PrepZ", (q("p"),)),
                Operation("H", (q("p"),)),
                Operation("MeasZ", (q("p"),)),
            ],
        )
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                CallSite("reinit", (q("a"),)),
            ],
        )
        assert deep_codes(Program([reinit, main], entry="main")) == [
            "QL401"
        ]

    def test_callee_use_consumes_prep(self):
        use = Module(
            "use",
            params=(q("p"),),
            body=[
                Operation("H", (q("p"),)),
                Operation("MeasZ", (q("p"),)),
            ],
        )
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                CallSite("use", (q("a"),)),
            ],
        )
        assert deep_codes(Program([use, main], entry="main")) == []


class TestUseAfterRelease:
    def _readout(self) -> Module:
        return Module(
            "readout",
            params=(q("p"),),
            body=[Operation("MeasZ", (q("p"),))],
        )

    def test_use_after_callee_measures(self):
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                Operation("H", (q("a"),)),
                CallSite("readout", (q("a"),)),
                Operation("H", (q("a"),)),
                Operation("MeasZ", (q("a"),)),
            ],
        )
        prog = Program([self._readout(), main], entry="main")
        assert deep_codes(prog) == ["QL402"]

    def test_reprep_after_callee_measures_is_clean(self):
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                Operation("H", (q("a"),)),
                CallSite("readout", (q("a"),)),
                Operation("PrepZ", (q("a"),)),
                Operation("MeasZ", (q("a"),)),
            ],
        )
        prog = Program([self._readout(), main], entry="main")
        assert deep_codes(prog) == []

    def test_iterated_call_crosses_release_boundary(self):
        # consume measures its argument; from the second repetition
        # onward each iteration acts on a qubit the previous one
        # released. Visible only when the summary is applied twice.
        consume = Module(
            "consume",
            params=(q("p"),),
            body=[
                Operation("H", (q("p"),)),
                Operation("MeasZ", (q("p"),)),
            ],
        )

        def main_with(iterations: int) -> Program:
            main = Module(
                "main",
                body=[
                    Operation("PrepZ", (q("a"),)),
                    CallSite("consume", (q("a"),), iterations=iterations),
                    Operation("PrepZ", (q("a"),)),
                    Operation("MeasZ", (q("a"),)),
                ],
            )
            return Program([consume, main], entry="main")

        assert deep_codes(main_with(3)) == ["QL402"]
        assert deep_codes(main_with(1)) == []


class TestAncillaLeak:
    def _entangler(self) -> Module:
        return Module(
            "entangler",
            params=(q("x"), q("y")),
            body=[
                Operation("H", (q("x"),)),
                Operation("CNOT", (q("x"), q("y"))),
            ],
        )

    def test_callee_dirtied_local_escapes(self):
        stage = Module(
            "stage",
            params=(q("d"),),
            body=[
                Operation("PrepZ", (q("anc"),)),
                CallSite("entangler", (q("d"), q("anc"))),
            ],
        )
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                CallSite("stage", (q("a"),)),
                Operation("MeasZ", (q("a"),)),
            ],
        )
        prog = Program([self._entangler(), stage, main], entry="main")
        assert deep_codes(prog) == ["QL403"]

    def test_owner_measures_ancilla(self):
        stage = Module(
            "stage",
            params=(q("d"),),
            body=[
                Operation("PrepZ", (q("anc"),)),
                CallSite("entangler", (q("d"), q("anc"))),
                Operation("MeasZ", (q("anc"),)),
            ],
        )
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                CallSite("stage", (q("a"),)),
                Operation("MeasZ", (q("a"),)),
            ],
        )
        prog = Program([self._entangler(), stage, main], entry="main")
        assert deep_codes(prog) == []


class TestEntangledReprep:
    def test_reprep_of_bell_partner(self):
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                Operation("PrepZ", (q("b"),)),
                Operation("H", (q("a"),)),
                Operation("CNOT", (q("a"), q("b"))),
                Operation("PrepZ", (q("b"),)),
                Operation("MeasZ", (q("a"),)),
                Operation("MeasZ", (q("b"),)),
            ],
        )
        assert deep_codes(Program([main], entry="main")) == ["QL404"]

    def test_basis_preserving_gates_keep_clean(self):
        # CNOT/Toffoli on |0>-basis qubits can't create entanglement,
        # so re-preparing afterwards is fine (ripple-carry idiom).
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                Operation("PrepZ", (q("b"),)),
                Operation("PrepZ", (q("c"),)),
                Operation("CNOT", (q("a"), q("b"))),
                Operation("Toffoli", (q("a"), q("b"), q("c"))),
                Operation("PrepZ", (q("c"),)),
                Operation("MeasZ", (q("a"),)),
                Operation("MeasZ", (q("b"),)),
                Operation("MeasZ", (q("c"),)),
            ],
        )
        assert deep_codes(Program([main], entry="main")) == []

    def test_entanglement_seen_through_call(self):
        bell = Module(
            "bell",
            params=(q("x"), q("y")),
            body=[
                Operation("H", (q("x"),)),
                Operation("CNOT", (q("x"), q("y"))),
            ],
        )
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                Operation("PrepZ", (q("b"),)),
                CallSite("bell", (q("a"), q("b"))),
                Operation("PrepZ", (q("b"),)),
                Operation("MeasZ", (q("a"),)),
                Operation("MeasZ", (q("b"),)),
            ],
        )
        prog = Program([bell, main], entry="main")
        assert deep_codes(prog) == ["QL404"]


class TestSummaries:
    def test_event_kinds_match_rule_codes(self):
        readout = Module(
            "readout",
            params=(q("p"),),
            body=[Operation("MeasZ", (q("p"),))],
        )
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                Operation("H", (q("a"),)),
                CallSite("readout", (q("a"),)),
                Operation("H", (q("a"),)),
                Operation("MeasZ", (q("a"),)),
            ],
        )
        prog = Program([readout, main], entry="main")
        assert lifetime_kinds(prog) == ["use-after-release"]

    def test_payload_round_trip(self):
        bell = Module(
            "bell",
            params=(q("x"), q("y")),
            body=[
                Operation("H", (q("x"),)),
                Operation("CNOT", (q("x"), q("y"))),
            ],
        )
        main = Module(
            "main",
            body=[
                Operation("PrepZ", (q("a"),)),
                Operation("PrepZ", (q("b"),)),
                CallSite("bell", (q("a"), q("b"))),
                Operation("MeasZ", (q("a"),)),
                Operation("MeasZ", (q("b"),)),
            ],
        )
        prog = Program([bell, main], entry="main")
        analysis = LifetimeAnalysis()
        summaries = solve_bottom_up(prog, analysis).summaries
        for summary in summaries.values():
            payload = analysis.to_payload(summary)
            json.dumps(payload)  # must be JSON-serialisable
            assert analysis.from_payload(payload) == summary
        # bell entangles its two parameters with each other: recorded
        # in groups (both partners visible to the caller), not taint.
        bell_summary = summaries["bell"]
        assert bell_summary.groups == ((0, 1),)
        assert all(p.used and p.exit == "active" for p in bell_summary.params)
