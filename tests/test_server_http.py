"""Unit tests for the hand-rolled HTTP/1.1 framing layer."""

import asyncio
import json

import pytest

from repro.server.http import (
    HttpError,
    end_chunked,
    read_request,
    send_chunk,
    send_json,
    send_response,
    start_chunked,
)


def _parse(data: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class FakeWriter:
    """Collects written bytes (StreamWriter stand-in)."""

    def __init__(self):
        self.data = b""

    def write(self, chunk: bytes) -> None:
        self.data += chunk

    async def drain(self) -> None:
        pass


class TestReadRequest:
    def test_simple_get(self):
        req = _parse(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/v1/healthz"
        assert req.headers["host"] == "x"
        assert req.body == b""
        assert req.keep_alive  # HTTP/1.1 default

    def test_query_parsing_and_flags(self):
        req = _parse(
            b"GET /v1/jobs/j1?stream=1&wait=false&x=%20y HTTP/1.1\r\n\r\n"
        )
        assert req.path == "/v1/jobs/j1"
        assert req.query["x"] == " y"
        assert req.flag("stream") is True
        assert req.flag("wait", default=True) is False
        assert req.flag("absent", default=True) is True
        assert req.flag("absent") is False

    def test_body_via_content_length(self):
        body = json.dumps({"source": "BF"}).encode()
        req = _parse(
            b"POST /v1/compile HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert req.json() == {"source": "BF"}

    def test_empty_body_reads_as_empty_object(self):
        req = _parse(b"POST /v1/compile HTTP/1.1\r\n\r\n")
        assert req.json() == {}

    def test_bad_json_body_is_400(self):
        req = _parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nnot"
        )
        with pytest.raises(HttpError) as err:
            req.json()
        assert err.value.status == 400

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_truncated_request_is_400(self):
        with pytest.raises(HttpError) as err:
            _parse(b"GET / HTTP/1.1\r\n")  # no terminating blank line
        assert err.value.status == 400

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as err:
            _parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
            )
        assert err.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as err:
            _parse(b"BROKEN\r\n\r\n")
        assert err.value.status == 400

    def test_unsupported_version_is_400(self):
        with pytest.raises(HttpError) as err:
            _parse(b"GET / HTTP/2.0\r\n\r\n")
        assert err.value.status == 400

    def test_malformed_header_line_is_400(self):
        with pytest.raises(HttpError) as err:
            _parse(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n")
        assert err.value.status == 400

    def test_bad_content_length_is_400(self):
        for value in (b"abc", b"-5"):
            with pytest.raises(HttpError) as err:
                _parse(
                    b"POST /x HTTP/1.1\r\nContent-Length: "
                    + value
                    + b"\r\n\r\n"
                )
            assert err.value.status == 400

    def test_oversize_body_is_413(self):
        with pytest.raises(HttpError) as err:
            _parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
                max_body=10,
            )
        assert err.value.status == 413

    def test_oversize_header_block_is_431(self):
        filler = b"X-Pad: " + b"a" * 200 + b"\r\n"
        with pytest.raises(HttpError) as err:
            _parse(
                b"GET / HTTP/1.1\r\n" + filler + b"\r\n",
                max_header=64,
            )
        assert err.value.status == 431

    def test_chunked_request_body_rejected(self):
        with pytest.raises(HttpError) as err:
            _parse(
                b"POST /x HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
        assert err.value.status == 400


class TestKeepAlive:
    def test_http11_close_header(self):
        req = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_http10_default_close(self):
        req = _parse(b"GET / HTTP/1.0\r\n\r\n")
        assert not req.keep_alive

    def test_http10_explicit_keep_alive(self):
        req = _parse(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        )
        assert req.keep_alive


class TestResponses:
    def test_send_response_frames_body(self):
        writer = FakeWriter()
        asyncio.run(send_response(writer, 200, b"hello"))
        assert writer.data.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 5\r\n" in writer.data
        assert b"Connection: keep-alive\r\n" in writer.data
        assert writer.data.endswith(b"\r\n\r\nhello")

    def test_send_json_with_headers_and_close(self):
        writer = FakeWriter()
        asyncio.run(
            send_json(
                writer,
                429,
                {"error": "x"},
                headers={"Retry-After": "2"},
                keep_alive=False,
            )
        )
        assert b"HTTP/1.1 429 Too Many Requests\r\n" in writer.data
        assert b"Retry-After: 2\r\n" in writer.data
        assert b"Connection: close\r\n" in writer.data
        head, _, body = writer.data.partition(b"\r\n\r\n")
        assert json.loads(body) == {"error": "x"}

    def test_unknown_status_reason(self):
        writer = FakeWriter()
        asyncio.run(send_response(writer, 599))
        assert writer.data.startswith(b"HTTP/1.1 599 Unknown\r\n")

    def test_chunked_stream_roundtrip(self):
        writer = FakeWriter()

        async def go():
            await start_chunked(writer, headers={"X-Repro-Job": "j1"})
            await send_chunk(writer, b'{"a":1}\n')
            await send_chunk(writer, b"")  # ignored: would end stream
            await send_chunk(writer, b'{"b":2}\n')
            await end_chunked(writer)

        asyncio.run(go())
        assert b"Transfer-Encoding: chunked\r\n" in writer.data
        assert b"X-Repro-Job: j1\r\n" in writer.data
        _, _, payload = writer.data.partition(b"\r\n\r\n")
        assert payload == (
            b'8\r\n{"a":1}\n\r\n8\r\n{"b":2}\n\r\n0\r\n\r\n'
        )
