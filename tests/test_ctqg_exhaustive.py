"""Exhaustive CTQG arithmetic verification at paper-relevant widths.

The statevector checks in ``tests/test_ctqg.py`` are width-capped
(2-3 bits) by the 2^n amplitude cost. The bit-sliced reversible
backend removes that cap: every kernel here is proven over *all*
inputs at widths 2-8 (adder: 2^17 states at width 8), with ancilla
restoration enforced on every lane. Multiply sweeps exhaustively to
width 4 and samples above (its input register is 4n bits wide)."""

import pytest

from repro.core.qubits import AncillaAllocator, Qubit
from repro.passes import ctqg
from repro.sim.reversible import verify_reference

WIDTHS = list(range(2, 9))


def reg(name, n):
    return [Qubit(name, i) for i in range(n)]


@pytest.mark.parametrize("n", WIDTHS)
def test_cuccaro_add_exhaustive(n):
    a, b = reg("a", n), reg("b", n)
    cin, cout = Qubit("cin", 0), Qubit("cout", 0)
    ops = ctqg.cuccaro_add(a, b, cin, cout)
    qubits = a + b + [cin, cout]
    mask = (1 << n) - 1

    def ref(x):
        av = x & mask
        bv = (x >> n) & mask
        ci = (x >> (2 * n)) & 1
        total = av + bv + ci
        return (
            av
            | ((total & mask) << n)
            | (ci << (2 * n))
            | (((total >> n) & 1) << (2 * n + 1))
        )

    report = verify_reference(
        lambda state: state.run(iter(ops)),
        qubits,
        inputs=a + b + [cin],
        outputs=qubits,
        reference=ref,
        mode="exhaustive",
        label=f"cuccaro_add width {n}",
    )
    assert report.ok, report.summary()
    assert report.lanes == 1 << (2 * n + 1)


@pytest.mark.parametrize("n", WIDTHS)
def test_compare_lt_exhaustive(n):
    a, b = reg("a", n), reg("b", n)
    flag, carry = Qubit("flag", 0), Qubit("carry", 0)
    ops = ctqg.compare_lt(a, b, flag, carry)
    qubits = a + b + [flag, carry]
    mask = (1 << n) - 1

    def ref(x):
        av = x & mask
        bv = (x >> n) & mask
        f = (x >> (2 * n)) & 1
        if av < bv:
            f ^= 1
        return av | (bv << n) | (f << (2 * n))

    report = verify_reference(
        lambda state: state.run(iter(ops)),
        qubits,
        inputs=a + b + [flag],  # flag preset too: XOR semantics
        outputs=a + b + [flag],
        reference=ref,
        clean=[carry],
        mode="exhaustive",
        label=f"compare_lt width {n}",
    )
    assert report.ok, report.summary()


@pytest.mark.parametrize("n", WIDTHS)
def test_multiply(n):
    a, b, p = reg("a", n), reg("b", n), reg("p", 2 * n)
    alloc = AncillaAllocator()
    ops = ctqg.multiply(a, b, p, alloc)
    qubits = a + b + p + alloc.all_qubits()
    mask_p = (1 << (2 * n)) - 1
    mask = (1 << n) - 1

    def ref(x):
        av = x & mask
        bv = (x >> n) & mask
        pv = (x >> (2 * n)) & mask_p
        pv = (pv + av * bv) & mask_p
        return av | (bv << n) | (pv << (2 * n))

    # 4n input bits: exhaustive through width 4 (2^16 lanes), sampled
    # above — mode="auto" with the limit pinned so the split is stable.
    report = verify_reference(
        lambda state: state.run(iter(ops)),
        qubits,
        inputs=a + b + p,  # product preset: accumulate semantics
        outputs=a + b + p,
        reference=ref,
        clean=alloc.all_qubits(),
        mode="auto",
        exhaustive_limit=16,
        samples=512,
        label=f"multiply width {n}",
    )
    assert report.ok, report.summary()
    assert report.mode == ("exhaustive" if n <= 4 else "sampled")


@pytest.mark.parametrize("n", [2, 4, 6])
def test_controlled_add_exhaustive(n):
    ctl = Qubit("ctl", 0)
    a, b = reg("a", n), reg("b", n)
    alloc = AncillaAllocator()
    ops = ctqg.controlled_add(ctl, a, b, alloc)
    qubits = [ctl] + a + b + alloc.all_qubits()
    mask = (1 << n) - 1

    def ref(x):
        cv = x & 1
        av = (x >> 1) & mask
        bv = (x >> (n + 1)) & mask
        if cv:
            bv = (bv + av) & mask
        return cv | (av << 1) | (bv << (n + 1))

    report = verify_reference(
        lambda state: state.run(iter(ops)),
        qubits,
        inputs=[ctl] + a + b,
        outputs=[ctl] + a + b,
        reference=ref,
        clean=alloc.all_qubits(),
        mode="exhaustive",
        label=f"controlled_add width {n}",
    )
    assert report.ok, report.summary()


@pytest.mark.parametrize("value,n", [(0, 4), (5, 4), (11, 4), (37, 6)])
def test_add_const_exhaustive(value, n):
    b = reg("b", n)
    alloc = AncillaAllocator()
    ops = ctqg.add_const(value, b, alloc)
    qubits = b + alloc.all_qubits()
    mask = (1 << n) - 1

    def ref(x):
        return (x + value) & mask

    report = verify_reference(
        lambda state: state.run(iter(ops)),
        qubits,
        inputs=b,
        outputs=b,
        reference=ref,
        clean=alloc.all_qubits(),
        mode="exhaustive",
        label=f"add_const {value} width {n}",
    )
    assert report.ok, report.summary()
