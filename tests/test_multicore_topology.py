"""Tests for the core interconnect graph (repro.multicore.topology)."""

import pytest

from repro.multicore.topology import (
    TOPOLOGIES,
    TOPOLOGY_SCHEMA,
    CoreGraph,
    TopologyError,
    parse_topology,
)


class TestFactories:
    def test_line_shape(self):
        g = CoreGraph.line(4)
        assert g.cores == 4
        assert g.name == "line"
        assert len(g.edges) == 3
        assert g.hops(0, 3) == 3
        assert g.diameter == 3

    def test_ring_shape(self):
        g = CoreGraph.ring(6)
        assert len(g.edges) == 6
        # The ring goes both ways: 0 -> 5 is one hop, not five.
        assert g.hops(0, 5) == 1
        assert g.hops(0, 3) == 3
        assert g.diameter == 3

    def test_mesh_shape(self):
        g = CoreGraph.mesh(4)  # 2x2 grid
        assert g.cores == 4
        assert g.hops(0, 3) == 2
        assert g.diameter == 2

    def test_all_to_all_shape(self):
        g = CoreGraph.all_to_all(5)
        assert len(g.edges) == 10
        assert g.diameter == 1
        assert all(
            g.hops(a, b) == 1
            for a in range(5)
            for b in range(5)
            if a != b
        )

    def test_single_core_degenerates(self):
        for factory in (
            CoreGraph.line,
            CoreGraph.ring,
            CoreGraph.mesh,
            CoreGraph.all_to_all,
        ):
            g = factory(1)
            assert g.cores == 1
            assert g.edges == ()
            assert g.diameter == 0

    def test_hops_are_symmetric(self):
        g = CoreGraph.mesh(9)
        for a in range(9):
            assert g.hops(a, a) == 0
            for b in range(9):
                assert g.hops(a, b) == g.hops(b, a)


class TestShortestPath:
    def test_path_length_matches_hops(self):
        g = CoreGraph.mesh(9)
        for a in range(9):
            for b in range(9):
                if a == b:
                    continue
                path = g.shortest_path(a, b)
                assert len(path) == g.hops(a, b)
                # Every step is an actual link, normalized (lo, hi).
                links = {(x, y) for x, y, _w in g.edges}
                for lo, hi in path:
                    assert lo < hi
                    assert (lo, hi) in links

    def test_path_is_deterministic(self):
        g = CoreGraph.ring(8)
        assert g.shortest_path(0, 4) == g.shortest_path(0, 4)


class TestSchema:
    def test_round_trip(self):
        g = CoreGraph.mesh(6, bandwidth=2.5)
        doc = g.to_dict()
        assert doc["schema"] == TOPOLOGY_SCHEMA
        back = CoreGraph.from_dict(doc)
        assert back == g

    def test_bandwidth_preserved(self):
        g = CoreGraph.line(3, bandwidth=2.0)
        assert g.bandwidth(0, 1) == 2.0
        assert g.bandwidth(1, 0) == 2.0
        back = CoreGraph.from_dict(g.to_dict())
        assert back.bandwidth(1, 2) == 2.0


class TestParse:
    def test_all_names(self):
        for name in TOPOLOGIES:
            g = parse_topology(name, 4, 1.0)
            assert g.cores == 4
            assert g.name == name

    def test_underscore_alias(self):
        g = parse_topology("all_to_all", 3, 1.0)
        assert g.name == "all-to-all"

    def test_unknown_name(self):
        with pytest.raises(TopologyError):
            parse_topology("torus", 4, 1.0)

    def test_bad_cores(self):
        with pytest.raises(TopologyError):
            parse_topology("line", 0, 1.0)

    def test_bad_bandwidth(self):
        with pytest.raises(TopologyError):
            parse_topology("line", 2, 0.0)
