"""Synthetic scale benchmarks (:mod:`repro.benchmarks.scale`) and the
perf scale harness (:mod:`repro.service.perf` schema ``/2``).
"""

from __future__ import annotations

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import SCALE_KINDS, build_scale, scale_total_gates
from repro.core.opstream import materialize
from repro.passes.stream import decomposed_gate_counts, leaf_stream
from repro.service.perf import run_scale_perf, scale_perf_jobs
from repro.toolflow import (
    SchedulerConfig,
    compile_and_schedule_streamed,
)


class TestBuildScale:
    @pytest.mark.parametrize("kind", SCALE_KINDS)
    @pytest.mark.parametrize("target", [5_000, 20_000])
    def test_total_is_exact_and_near_target(self, kind, target):
        prog, total = build_scale(kind, target)
        assert scale_total_gates(prog) == total
        assert decomposed_gate_counts(prog)[prog.entry] == total
        # Within one iteration's rounding of the target.
        assert abs(total - target) / target < 0.1

    @pytest.mark.parametrize("kind", SCALE_KINDS)
    def test_tiny_target_clamps_to_one_iteration(self, kind):
        prog, total = build_scale(kind, 1)
        assert total >= 1
        assert scale_total_gates(prog) == total

    @pytest.mark.parametrize("kind", SCALE_KINDS)
    def test_deterministic(self, kind):
        a, ta = build_scale(kind, 2_000)
        b, tb = build_scale(kind, 2_000)
        assert ta == tb
        sa = materialize(leaf_stream(a, a.entry))[:200]
        sb = materialize(leaf_stream(b, b.entry))[:200]
        assert [
            (o.gate, tuple(map(str, o.qubits)), o.angle) for o in sa
        ] == [
            (o.gate, tuple(map(str, o.qubits)), o.angle) for o in sb
        ]

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown scale"):
            build_scale("nope", 1000)
        with pytest.raises(ValueError, match="target_gates"):
            build_scale("adder", 0)

    @pytest.mark.parametrize("kind", SCALE_KINDS)
    def test_streams_through_pipeline(self, kind):
        """A scale program flattens into one leaf and schedules
        cleanly through the streamed pipeline."""
        prog, total = build_scale(kind, 2_000)
        res = compile_and_schedule_streamed(
            prog,
            MultiSIMD(k=4, d=4),
            SchedulerConfig("lpfs"),
            fth=total + 1,
            widths="entry",
        )
        assert res.total_gates == total
        assert res.flattened_percent == 100.0
        # k*d = 16 ops can retire per timestep at most.
        assert res.schedule_length >= total // 16
        assert res.leaf_comm  # movement derived


class TestScalePerfJobs:
    def test_labels_embed_pipeline_and_window(self):
        jobs = scale_perf_jobs(target_gates=9_999, window=128)
        labels = [j["label"] for j in jobs]
        assert len(jobs) == 2 * len(SCALE_KINDS)
        for kind in SCALE_KINDS:
            assert (
                f"scale:{kind}@9999/k4d4/lpfs/streamed[w=128]" in labels
            )
            assert f"scale:{kind}@9999/k4d4/lpfs/materialized" in labels
        for job in jobs:
            assert job["pipeline"] in ("streamed", "materialized")
            assert job["pipeline"] in job["label"]

    def test_in_process_rows_consistent(self):
        """Streamed and materialized pipelines agree on schedule
        length and runtime at the same size (in-process: no subprocess
        spawn in the unit suite)."""
        jobs = scale_perf_jobs(target_gates=1_500, kinds=("adder",))
        section = run_scale_perf(jobs, fresh_process=False)
        assert section["process_isolated"] is False
        rows = section["jobs"]
        assert [r["status"] for r in rows] == ["ok", "ok"]
        by_pipeline = {r["pipeline"]: r for r in rows}
        assert (
            by_pipeline["streamed"]["schedule_length"]
            == by_pipeline["materialized"]["schedule_length"]
        )
        assert (
            by_pipeline["streamed"]["runtime"]
            == by_pipeline["materialized"]["runtime"]
        )
        for row in rows:
            assert row["total_gates"] > 0
            assert row["elapsed_s"] > 0
            if row["peak_rss_kb"] is not None:
                assert row["peak_rss_kb_per_mgate"] > 0
