"""Tests for schedule replay — and replay used as an independent
oracle against the movement planner."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.machine import MultiSIMD
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sched.comm import derive_movement
from repro.sched.lpfs import schedule_lpfs
from repro.sched.rcp import schedule_rcp
from repro.sched.replay import ReplayError, replay_schedule
from repro.sched.types import Move, Schedule

Q = [Qubit("q", i) for i in range(8)]


def planned(dag, machine, scheduler=schedule_rcp, k=None):
    sched = scheduler(dag, k=k or machine.k)
    stats = derive_movement(sched, machine)
    return sched, stats


class TestReplayAgreesWithPlanner:
    def test_runtime_matches_stats(self):
        dag = DependenceDAG(
            [
                Operation("CNOT", (Q[0], Q[1])),
                Operation("H", (Q[2],)),
                Operation("CNOT", (Q[1], Q[2])),
                Operation("T", (Q[0],)),
            ]
        )
        machine = MultiSIMD(k=2)
        sched, stats = planned(dag, machine)
        report = replay_schedule(sched, machine)
        assert report.runtime == stats.runtime
        assert report.teleport_epochs == stats.teleport_epochs
        assert report.local_epochs == stats.local_epochs

    def test_runtime_matches_with_local_memory(self):
        dag = DependenceDAG(
            [
                Operation("H", (Q[0],)),
                Operation("H", (Q[1],)),
                Operation("T", (Q[0],)),
                Operation("T", (Q[1],)),
            ] * 3
        )
        machine = MultiSIMD(k=2, local_memory=4)
        sched, stats = planned(dag, machine)
        report = replay_schedule(sched, machine)
        assert report.runtime == stats.runtime

    def test_scratchpad_peak_within_capacity(self):
        dag = DependenceDAG(
            [Operation("H", (Q[i % 4],)) for i in range(16)]
        )
        machine = MultiSIMD(k=2, local_memory=2)
        sched, _ = planned(dag, machine)
        report = replay_schedule(sched, machine)
        assert all(v <= 2 for v in report.peak_scratchpad.values())


class TestReplayCatchesViolations:
    def manual(self, dag, placements, k=2):
        sched = Schedule(dag, k=k)
        for regions in placements:
            ts = sched.append_timestep()
            for r, nodes in enumerate(regions):
                ts.regions[r].extend(nodes)
        return sched

    def test_missing_fetch_detected(self):
        dag = DependenceDAG([Operation("H", (Q[0],))])
        sched = self.manual(dag, [[[0], []]])
        # No moves attached: operand still in global memory.
        with pytest.raises(ReplayError, match="not in region"):
            replay_schedule(sched, MultiSIMD(k=2))

    def test_wrong_source_detected(self):
        dag = DependenceDAG([Operation("H", (Q[0],))])
        sched = self.manual(dag, [[[0], []]])
        sched.timesteps[0].moves = [
            Move(Q[0], ("region", 1), ("region", 0), "teleport")
        ]
        with pytest.raises(ReplayError, match="claims src"):
            replay_schedule(sched, MultiSIMD(k=2))

    def test_bad_ballistic_endpoints_detected(self):
        dag = DependenceDAG([Operation("H", (Q[0],))])
        sched = self.manual(dag, [[[0], []]])
        sched.timesteps[0].moves = [
            Move(Q[0], ("global",), ("region", 0), "local")
        ]
        with pytest.raises(ReplayError, match="ballistic"):
            replay_schedule(sched, MultiSIMD(k=2, local_memory=4))

    def test_scratchpad_overflow_detected(self):
        dag = DependenceDAG(
            [
                Operation("CNOT", (Q[0], Q[1])),
                Operation("H", (Q[2],)),
                Operation("CNOT", (Q[0], Q[1])),
            ]
        )
        sched = self.manual(dag, [[[0], []], [[1], []], [[2], []]])
        sched.timesteps[0].moves = [
            Move(Q[0], ("global",), ("region", 0), "teleport"),
            Move(Q[1], ("global",), ("region", 0), "teleport"),
        ]
        sched.timesteps[1].moves = [
            Move(Q[0], ("region", 0), ("local", 0), "local"),
            Move(Q[1], ("region", 0), ("local", 0), "local"),
            Move(Q[2], ("global",), ("region", 0), "teleport"),
        ]
        with pytest.raises(ReplayError, match="over capacity"):
            replay_schedule(sched, MultiSIMD(k=2, local_memory=1))

    def test_scratchpad_without_local_memory_detected(self):
        dag = DependenceDAG(
            [Operation("H", (Q[0],)), Operation("H", (Q[1],))]
        )
        sched = self.manual(dag, [[[0], []], [[1], []]])
        sched.timesteps[0].moves = [
            Move(Q[0], ("global",), ("region", 0), "teleport"),
        ]
        sched.timesteps[1].moves = [
            Move(Q[0], ("region", 0), ("local", 0), "local"),
            Move(Q[1], ("global",), ("region", 0), "teleport"),
        ]
        with pytest.raises(ReplayError, match="without"):
            replay_schedule(sched, MultiSIMD(k=2))

    def test_idle_qubit_in_active_region_detected(self):
        dag = DependenceDAG(
            [
                Operation("H", (Q[0],)),
                Operation("H", (Q[1],)),
                Operation("T", (Q[0],)),
            ]
        )
        sched = self.manual(dag, [[[0], []], [[1], []], [[2], []]])
        # q0 fetched, then left in region 0 while region 0 runs q1.
        sched.timesteps[0].moves = [
            Move(Q[0], ("global",), ("region", 0), "teleport")
        ]
        sched.timesteps[1].moves = [
            Move(Q[1], ("global",), ("region", 0), "teleport")
        ]
        with pytest.raises(ReplayError, match="idles in active"):
            replay_schedule(sched, MultiSIMD(k=2))

    def test_k_mismatch_detected(self):
        dag = DependenceDAG([Operation("H", (Q[0],))])
        sched = self.manual(dag, [[[0], []]], k=2)
        with pytest.raises(ReplayError, match="regions"):
            replay_schedule(sched, MultiSIMD(k=1))


# --- the planner always produces replayable schedules -----------------------

@st.composite
def random_dag(draw):
    n_qubits = draw(st.integers(2, 6))
    qs = [Qubit("q", i) for i in range(n_qubits)]
    n_ops = draw(st.integers(1, 35))
    ops = []
    for _ in range(n_ops):
        if draw(st.booleans()):
            gate = draw(st.sampled_from(["H", "T", "X"]))
            ops.append(Operation(gate, (draw(st.sampled_from(qs)),)))
        else:
            pair = draw(
                st.lists(st.sampled_from(qs), min_size=2, max_size=2,
                         unique=True)
            )
            ops.append(Operation("CNOT", tuple(pair)))
    return DependenceDAG(ops)


class TestPlannerReplayProperty:
    @given(
        random_dag(),
        st.integers(1, 4),
        st.sampled_from([None, 1.0, 2.0, math.inf]),
        st.sampled_from(["rcp", "lpfs"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_planned_movement_always_replayable(
        self, dag, k, local, alg
    ):
        machine = MultiSIMD(k=k, local_memory=local)
        scheduler = schedule_rcp if alg == "rcp" else schedule_lpfs
        sched = scheduler(dag, k=k)
        stats = derive_movement(sched, machine)
        report = replay_schedule(sched, machine)
        assert report.runtime == stats.runtime
        assert report.teleport_epochs == stats.teleport_epochs
        assert report.local_epochs == stats.local_epochs
