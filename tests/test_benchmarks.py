"""Tests for the benchmark suite: structure, registry, and scaling."""


import pytest

from repro.benchmarks import (
    BENCHMARKS,
    benchmark,
    benchmark_names,
    build_boolean_formula,
    build_bwt,
    build_class_number,
    build_grovers,
    build_gse,
    build_sha1,
    build_shors,
    build_tfp,
    grover_iteration_count,
)
from repro.benchmarks.common import (
    hadamard_all,
    inverse_qft_ops,
    mcx_ops,
    mcz_ops,
    qft_ops,
)
from repro.core.qubits import AncillaAllocator, Qubit
from repro.passes.resource import estimate_resources
from repro.sim.statevector import circuit_unitary
from repro.sim.verify import equivalent_up_to_global_phase, truth_table


class TestCommonKernels:
    def test_qft_inverse_cancels(self):
        qs = [Qubit("q", i) for i in range(3)]
        import numpy as np

        u = circuit_unitary(
            qft_ops(qs) + inverse_qft_ops(qs), qs
        )
        assert equivalent_up_to_global_phase(u, np.eye(8, dtype=complex))

    def test_qft_op_count_quadratic(self):
        qs = [Qubit("q", i) for i in range(6)]
        assert len(qft_ops(qs)) == 6 + 15  # n H's + n(n-1)/2 CRz's

    def test_mcx_truth_table(self):
        qs = [Qubit("q", i) for i in range(4)]
        target = Qubit("t", 0)
        alloc = AncillaAllocator()
        ops = mcx_ops(qs[:3], target, alloc)
        allq = qs[:3] + [target] + alloc.all_qubits()
        tbl = truth_table(ops, qs[:3], [target], all_qubits=allq)
        for v in range(8):
            assert tbl[v] == int(v == 7)

    def test_mcx_small_cases(self):
        alloc = AncillaAllocator()
        t = Qubit("t", 0)
        q = [Qubit("q", i) for i in range(2)]
        assert mcx_ops([], t, alloc)[0].gate == "X"
        assert mcx_ops([q[0]], t, alloc)[0].gate == "CNOT"
        assert mcx_ops(q, t, alloc)[0].gate == "Toffoli"

    def test_mcz_phase_flip(self):
        import numpy as np

        qs = [Qubit("q", i) for i in range(3)]
        alloc = AncillaAllocator()
        ops = mcz_ops(qs, alloc)
        allq = qs + alloc.all_qubits()
        u = circuit_unitary(ops, allq)
        expect = np.eye(2 ** len(allq), dtype=complex)
        # Phase flip exactly on states where q0=q1=q2=1 (ancillas 0).
        for idx in range(2 ** len(allq)):
            if idx & 0b111 == 0b111 and idx >> 3 == 0:
                expect[idx, idx] = -1
        # Compare only columns with clean ancillas.
        cols = [i for i in range(2 ** len(allq)) if i >> 3 == 0]
        assert np.allclose(u[:, cols], expect[:, cols], atol=1e-9)

    def test_hadamard_all(self):
        qs = [Qubit("q", i) for i in range(4)]
        ops = hadamard_all(qs)
        assert len(ops) == 4
        assert all(op.gate == "H" for op in ops)


class TestRegistry:
    def test_all_eight_present(self):
        assert benchmark_names() == [
            "BF", "BWT", "CN", "Grovers", "GSE", "SHA-1", "Shors", "TFP",
        ]
        assert set(BENCHMARKS) == set(benchmark_names())

    def test_lookup(self):
        assert benchmark("GSE").key == "GSE"
        with pytest.raises(KeyError):
            benchmark("NOPE")

    def test_every_benchmark_builds_and_validates(self):
        for spec in BENCHMARKS.values():
            prog = spec.build()
            prog.validate()
            assert prog.entry == "main"

    def test_metadata_present(self):
        for spec in BENCHMARKS.values():
            assert spec.title
            assert spec.description
            assert spec.paper_params
            assert spec.fth > 0


class TestStructure:
    def test_grovers_iteration_count(self):
        assert grover_iteration_count(2) == 1
        assert grover_iteration_count(8) == 12
        # Exponential growth encoded, never unrolled.
        assert grover_iteration_count(40) > 8 * 10 ** 5

    def test_grovers_scales_with_n(self):
        small = estimate_resources(build_grovers(n=4, iterations=2))
        large = estimate_resources(build_grovers(n=8, iterations=2))
        assert large.total_gates > small.total_gates

    def test_grovers_paper_scale_estimation(self):
        est = estimate_resources(build_grovers(n=30))
        assert est.total_gates > 10 ** 6  # huge, but estimated instantly

    def test_grovers_invalid_params(self):
        with pytest.raises(ValueError):
            build_grovers(n=1)
        with pytest.raises(ValueError):
            build_grovers(n=4, marked=100)

    def test_bwt_walk_steps_scale(self):
        s1 = estimate_resources(build_bwt(n=4, s=2)).total_gates
        s2 = estimate_resources(build_bwt(n=4, s=20)).total_gates
        assert s2 > 5 * s1

    def test_bwt_validation(self):
        with pytest.raises(ValueError):
            build_bwt(n=1)
        with pytest.raises(ValueError):
            build_bwt(n=4, s=0)

    def test_gse_rotation_heavy(self):
        est = estimate_resources(build_gse(m=6, precision_bits=4))
        assert est.gate_mix.get("CRz", 0) > 0

    def test_gse_precision_doubles_evolution(self):
        low = estimate_resources(build_gse(m=4, precision_bits=3))
        high = estimate_resources(build_gse(m=4, precision_bits=6))
        assert high.total_gates > 5 * low.total_gates

    def test_tfp_structure(self):
        prog = build_tfp(n=5, iterations=2)
        # The triangle oracle calls the edge oracle six times (3 tests
        # + 3 uncomputes).
        tri = prog.module("triangle_oracle")
        edge_calls = [c for c in tri.calls() if c.callee == "edge_oracle"]
        assert len(edge_calls) == 6

    def test_bf_nand_tree(self):
        prog = build_boolean_formula(x=2, y=2)
        ev = prog.module("evaluate_formula")
        nand_calls = [c for c in ev.calls() if c.callee == "nand_gate"]
        assert len(nand_calls) == 3  # 2 + 1 for a 4-leaf balanced tree

    def test_sha1_round_structure(self):
        prog = build_sha1(n=32, word_bits=8, rounds=8,
                          grover_iterations=4)
        compress = prog.module("sha1_compress")
        round_calls = [
            c for c in compress.calls() if c.callee.startswith("round_q")
        ]
        assert len(round_calls) == 8

    def test_sha1_adder_dominated(self):
        est = estimate_resources(
            build_sha1(n=32, word_bits=8, rounds=8, grover_iterations=1)
        )
        # Ripple-carry adders => CNOT/Toffoli dominate.
        cx = est.gate_mix.get("CNOT", 0) + est.gate_mix.get("Toffoli", 0)
        assert cx > est.total_gates * 0.5

    def test_shors_rotation_modules_present(self):
        prog = build_shors(n=4)
        rot_modules = [
            m.name for m in prog if m.name.startswith("phase_rot_")
        ]
        assert len(rot_modules) > 3
        for name in rot_modules:
            assert prog.module(name).direct_gate_count == 1  # one Rz

    def test_shors_control_register_width(self):
        prog = build_shors(n=5)
        cmults = [m for m in prog if m.name.startswith("cmult_pow")]
        assert len(cmults) == 10  # 2n

    def test_cn_arithmetic_structure(self):
        prog = build_class_number(p=2)
        reduce_mod = prog.module("reduce_ideal")
        gates = {op.gate for op in reduce_mod.operations()}
        assert "Toffoli" in gates and "CNOT" in gates
        assert "Fredkin" in gates  # the conditional swap

    def test_all_benchmarks_entry_is_nonleaf(self):
        # Every benchmark is hierarchical (the paper's premise).
        for spec in BENCHMARKS.values():
            assert not spec.build().entry_module.is_leaf

    def test_benchmarks_have_measurements(self):
        for spec in BENCHMARKS.values():
            prog = spec.build()
            gates = {
                op.gate for op in prog.entry_module.operations()
            }
            assert "MeasZ" in gates, f"{spec.key} lacks measurement"
