"""Tests for the multi-core execution engine.

The load-bearing invariant, checked at every configuration:

    realized == analytic makespan + attributed stalls
"""

import math

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.engine.config import EngineConfig
from repro.engine.trace import chrome_trace_events, validate_trace_payload
from repro.multicore import (
    CoreGraph,
    MulticoreConfig,
    compile_and_schedule_multicore,
    execute_multicore_result,
)


def _compile(key="BF", graph=None, d=2, k=4, **cfg):
    spec = BENCHMARKS[key]
    graph = graph or CoreGraph.line(2)
    return compile_and_schedule_multicore(
        spec.build(),
        MultiSIMD(k=k, d=d),
        MulticoreConfig(graph, **cfg),
        fth=spec.fth,
    )


class TestIdealExecution:
    def test_ideal_matches_analytic_exactly(self):
        result = _compile(graph=CoreGraph.line(2))
        execution = execute_multicore_result(result)
        assert execution.ideal_match
        assert execution.decomposition_ok
        assert execution.stalls.total == 0
        assert execution.realized_runtime == result.runtime

    def test_one_core_matches_single_core_engine(self):
        from repro.engine import execute_result
        from repro.toolflow import SchedulerConfig, compile_and_schedule

        spec = BENCHMARKS["BF"]
        machine = MultiSIMD(k=4)
        single = execute_result(
            compile_and_schedule(
                spec.build(), machine, SchedulerConfig(), fth=spec.fth
            )
        )
        multi = execute_multicore_result(
            _compile(graph=CoreGraph.all_to_all(1), d=machine.d)
        )
        assert multi.realized_runtime == single.realized_runtime
        assert multi.analytic_runtime == single.analytic_runtime


class TestStallAttribution:
    def test_finite_link_rate_attributes_intercore_stalls(self):
        result = _compile(graph=CoreGraph.line(4), link_epr_rate=0.01)
        execution = execute_multicore_result(result)
        assert result.intercore_teleports > 0
        assert execution.stalls.intercore > 0
        assert execution.stalls.intra == 0
        assert execution.decomposition_ok
        assert not execution.ideal_match
        assert (
            execution.realized_runtime
            > execution.analytic_runtime
        )
        for leaf in execution.leaves.values():
            assert leaf.realized_runtime == (
                leaf.analytic_runtime + leaf.stalls.total
            )

    def test_finite_intra_rate_attributes_intra_stalls(self):
        result = _compile(graph=CoreGraph.line(4))
        execution = execute_multicore_result(
            result, config=EngineConfig(epr_rate=0.02)
        )
        assert execution.stalls.intra > 0
        assert execution.stalls.intercore == 0
        assert execution.decomposition_ok

    def test_metrics_expose_stall_split(self):
        result = _compile(graph=CoreGraph.line(4), link_epr_rate=0.01)
        execution = execute_multicore_result(result)
        metrics = execution.metrics()
        assert metrics["engine_stall_intercore"] == (
            execution.stalls.intercore
        )
        assert metrics["engine_stall_epr"] == execution.stalls.intercore
        assert metrics["engine_stall_bandwidth"] == 0
        assert metrics["engine_stall_cycles"] == execution.stalls.total
        assert metrics["engine_decomposition_ok"] == 1
        assert metrics["engine_runtime"] == execution.realized_runtime
        assert 0.0 <= metrics["engine_utilization"] <= 1.0

    def test_infinite_rates_give_zero_stalls(self):
        result = _compile(
            graph=CoreGraph.mesh(4), link_epr_rate=math.inf
        )
        execution = execute_multicore_result(result)
        assert execution.stalls.to_dict() == {
            "intra": 0,
            "intercore": 0,
            "total": 0,
        }


class TestTraces:
    def test_trace_payload_validates_with_core_lanes(self):
        result = _compile(graph=CoreGraph.line(4))
        execution = execute_multicore_result(
            result, config=EngineConfig(collect_trace=True)
        )
        payload = execution.to_trace_payload()
        assert validate_trace_payload(payload) == []
        events = chrome_trace_events(payload)
        tids = {e.get("tid") for e in events if e.get("ph") == "X"}
        # At least two core lanes in the 1000+ band.
        assert len({t for t in tids if t is not None and t >= 1000}) >= 2
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert any(n.startswith("core") for n in names)

    def test_to_dict_document(self):
        result = _compile(graph=CoreGraph.line(2))
        execution = execute_multicore_result(result)
        doc = execution.to_dict()
        assert doc["cores"] == 2
        assert doc["topology"]["schema"] == "repro.core-graph/1"
        assert doc["decomposition_ok"] is True
        assert doc["stalls"]["total"] == 0
        assert set(doc["modules"]) == set(execution.realized)


class TestErrors:
    def test_missing_leaf_schedules_raises(self):
        from repro.engine.executor import EngineError

        result = _compile(graph=CoreGraph.line(2))
        result.leaf_schedules.clear()
        with pytest.raises(EngineError):
            execute_multicore_result(result)
