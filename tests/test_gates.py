"""Unit tests for the gate registry (repro.core.gates)."""

import pytest

from repro.core.gates import (
    CLIFFORD_GATES,
    GATES,
    QASM_PRIMITIVES,
    ROTATION_GATES,
    gate_spec,
    inverse_gate,
    is_primitive,
    is_rotation,
)


class TestRegistry:
    def test_registry_keys_match_spec_names(self):
        for name, spec in GATES.items():
            assert spec.name == name

    def test_known_primitive_set(self):
        assert QASM_PRIMITIVES == {
            "X", "Y", "Z", "H", "S", "Sdag", "T", "Tdag", "CNOT",
            "PrepZ", "PrepX", "MeasZ", "MeasX",
        }

    def test_clifford_subset_of_primitives(self):
        assert CLIFFORD_GATES <= QASM_PRIMITIVES

    def test_rotations_are_not_primitive(self):
        for name in ROTATION_GATES:
            assert not is_primitive(name)

    def test_rotation_set(self):
        assert ROTATION_GATES == {"Rz", "Rx", "Ry", "CRz", "CRx"}

    @pytest.mark.parametrize(
        "name,arity",
        [
            ("X", 1), ("H", 1), ("T", 1), ("CNOT", 2), ("CZ", 2),
            ("SWAP", 2), ("Toffoli", 3), ("Fredkin", 3), ("CCZ", 3),
            ("Rz", 1), ("CRz", 2),
        ],
    )
    def test_arities(self, name, arity):
        assert gate_spec(name).arity == arity

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError, match="unknown gate"):
            gate_spec("FROBNICATE")


class TestInverses:
    @pytest.mark.parametrize(
        "name", ["X", "Y", "Z", "H", "CNOT", "CZ", "SWAP", "Toffoli",
                 "Fredkin", "CCZ"]
    )
    def test_self_inverse_gates(self, name):
        assert inverse_gate(name) == name
        assert gate_spec(name).is_self_inverse

    @pytest.mark.parametrize(
        "a,b", [("S", "Sdag"), ("T", "Tdag")]
    )
    def test_dagger_pairs(self, a, b):
        assert inverse_gate(a) == b
        assert inverse_gate(b) == a

    def test_inverse_is_involutive(self):
        for name, spec in GATES.items():
            if spec.inverse is not None:
                assert inverse_gate(inverse_gate(name)) == name

    @pytest.mark.parametrize("name", ["MeasZ", "MeasX", "PrepZ", "PrepX"])
    def test_non_unitary_has_no_inverse(self, name):
        with pytest.raises(ValueError, match="not invertible"):
            inverse_gate(name)


class TestSpecProperties:
    def test_angle_gates_flagged(self):
        for name in ("Rz", "Rx", "Ry", "CRz", "CRx"):
            assert is_rotation(name)
            assert GATES[name].takes_angle

    def test_non_angle_gates_not_flagged(self):
        for name in ("X", "H", "CNOT", "Toffoli"):
            assert not is_rotation(name)
            assert not GATES[name].takes_angle

    def test_every_gate_has_positive_arity(self):
        for spec in GATES.values():
            assert spec.arity >= 1
