"""Program-level engine tests: hierarchical execution over real
benchmarks, the program analytic-equality invariant, trace payload
assembly, and the metrics contract consumed by the sweep runner."""

import pytest

from repro.arch.machine import MultiSIMD
from repro.arch.numa import NUMAConfig
from repro.benchmarks import BENCHMARKS
from repro.engine import (
    EngineConfig,
    EngineError,
    FaultConfig,
    execute_result,
    validate_trace_payload,
)
from repro.service.sweep import _ENGINE_METRIC_FIELDS
from repro.toolflow import SchedulerConfig, compile_and_schedule


def compiled(name, k=2, scheduler="lpfs", fth=None, **kwargs):
    spec = BENCHMARKS[name]
    return compile_and_schedule(
        spec.build(),
        MultiSIMD(k=k),
        SchedulerConfig(scheduler),
        fth=spec.fth if fth is None else fth,
        **kwargs,
    )


class TestProgramIdealInvariant:
    """Program realized runtime == coarse-composed analytic runtime
    under the ideal config, across benchmarks and schedulers."""

    @pytest.mark.parametrize("name", ["BF", "Grovers", "Shors"])
    @pytest.mark.parametrize(
        "scheduler", ["sequential", "rcp", "lpfs"]
    )
    def test_realized_equals_analytic(self, name, scheduler):
        result = compiled(name, scheduler=scheduler)
        execution = execute_result(result)
        profile = result.profiles[result.program.entry]
        assert execution.analytic_runtime == profile.runtime[2]
        assert execution.realized_runtime == execution.analytic_runtime
        assert execution.ideal_match
        assert execution.stalls.total == 0

    def test_hierarchy_exercises_coarse_path(self):
        execution = execute_result(compiled("BF"))
        assert execution.leaves  # engine-run leaf schedules
        assert execution.coarse  # blackbox-composed callers
        # Every leaf fed its realized runtime back into the coarse
        # scheduler.
        for name, run in execution.leaves.items():
            assert execution.realized[name] == max(
                run.realized_runtime, 1
            )

    def test_low_fth_multiplies_leaves(self):
        deep = execute_result(compiled("Shors", fth=64))
        assert len(deep.leaves) >= 1
        assert len(deep.coarse) >= 1
        assert deep.ideal_match


class TestProgramConstrained:
    def test_finite_rate_only_adds_stalls(self):
        result = compiled("Grovers")
        ideal = execute_result(result)
        tight = execute_result(result, EngineConfig(epr_rate=0.05))
        assert tight.realized_runtime >= ideal.realized_runtime
        assert tight.stalls.epr > 0
        assert tight.stalls.fault == 0

    def test_numa_only_adds_stalls(self):
        result = compiled("Grovers")
        ideal = execute_result(result)
        banked = execute_result(
            result,
            EngineConfig(
                numa=NUMAConfig(banks=2, channel_bandwidth=1.0)
            ),
        )
        assert banked.realized_runtime >= ideal.realized_runtime
        assert banked.stalls.epr == 0
        assert banked.stalls.fault == 0

    def test_faulty_program_is_deterministic(self):
        result = compiled("BF")
        config = EngineConfig(
            epr_rate=0.5,
            faults=FaultConfig(epr_failure_prob=0.2),
            seed=11,
        )
        a = execute_result(result, config)
        b = execute_result(result, config)
        assert a.realized_runtime == b.realized_runtime
        assert a.fault_log.to_dict() == b.fault_log.to_dict()
        assert a.realized_runtime >= execute_result(result).realized_runtime


class TestProgramOutputs:
    def test_trace_payload_validates(self):
        execution = execute_result(compiled("BF"))
        payload = execution.to_trace_payload()
        assert validate_trace_payload(payload) == []
        # Both leaf and coarse sections appear as processes.
        pids = {e["pid"] for e in payload["events"]}
        assert set(execution.leaves) <= pids
        assert set(execution.coarse) <= pids

    def test_metrics_match_sweep_contract(self):
        metrics = execute_result(compiled("BF")).metrics()
        assert set(metrics) == set(_ENGINE_METRIC_FIELDS)
        assert all(
            isinstance(v, (int, float)) for v in metrics.values()
        )

    def test_to_dict_json_safe(self):
        import json

        doc = execute_result(compiled("BF")).to_dict()
        json.loads(json.dumps(doc))

    def test_refuses_result_without_schedules(self):
        result = compiled("BF", keep_schedules=False)
        with pytest.raises(EngineError):
            execute_result(result)
