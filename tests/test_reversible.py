"""Unit tests for the bit-sliced reversible simulator
(:mod:`repro.sim.reversible`): gate semantics against the statevector
simulator, the closed-form exhaustive input patterns, the gate
classifier and refusal contract, sweep reports with minimal
counterexamples, and the schedule linearization helpers."""

import pytest

from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.passes.ctqg import cuccaro_add
from repro.sim.reversible import (
    DEFAULT_EXHAUSTIVE_LIMIT,
    CounterExample,
    NonReversibleOpError,
    ReversibleSimulator,
    SlicedState,
    VerificationError,
    check_permutation_reversible,
    classify_gate,
    compile_ops,
    exhaustive_patterns,
    run_reversible,
    sample_inputs,
    schedule_ops,
    sliced_patterns,
    truth_table_reversible,
    verify_equivalent,
    verify_reference,
)
from repro.sim.statevector import Simulator
from repro.sim.verify import check_permutation, truth_table


def reg(name, n):
    return [Qubit(name, i) for i in range(n)]


Q = reg("q", 4)


class TestClassifier:
    @pytest.mark.parametrize(
        "gate", ["X", "Y", "CNOT", "Toffoli", "SWAP", "Fredkin"]
    )
    def test_reversible(self, gate):
        assert classify_gate(gate) == "reversible"

    @pytest.mark.parametrize(
        "gate", ["Z", "S", "Sdag", "T", "Tdag", "CZ", "CCZ", "Rz", "CRz"]
    )
    def test_phase(self, gate):
        assert classify_gate(gate) == "phase"

    @pytest.mark.parametrize(
        "gate", ["H", "Rx", "Ry", "PrepZ", "MeasZ", "Nope"]
    )
    def test_irreversible(self, gate):
        assert classify_gate(gate) == "irreversible"


class TestRefusal:
    def test_error_locates_op(self):
        sim = ReversibleSimulator(Q)
        ops = [
            Operation("X", (Q[0],)),
            Operation("CNOT", (Q[0], Q[1])),
            Operation("H", (Q[2],)),
        ]
        with pytest.raises(NonReversibleOpError) as exc:
            sim.run(ops)
        assert exc.value.index == 2
        assert exc.value.op.gate == "H"
        assert "op 2" in str(exc.value)
        assert "not classically reversible" in str(exc.value)

    def test_phase_refused_without_opt_in(self):
        sim = ReversibleSimulator(Q)
        with pytest.raises(NonReversibleOpError) as exc:
            sim.run([Operation("T", (Q[0],))])
        assert "allow_phase" in exc.value.reason

    def test_phase_identity_with_opt_in(self):
        sim = ReversibleSimulator(Q)
        sim.reset(0b1010)
        sim.run(
            [Operation("T", (Q[0],)), Operation("CZ", (Q[1], Q[2]))],
            allow_phase=True,
        )
        assert sim.state == 0b1010

    def test_compile_ops_offsets_index_by_start(self):
        index = {q: i for i, q in enumerate(Q)}
        with pytest.raises(NonReversibleOpError) as exc:
            compile_ops([Operation("H", (Q[0],))], index, start=100)
        assert exc.value.index == 100

    def test_sliced_run_reports_stream_position(self):
        state = SlicedState(Q, 4)
        ops = [Operation("X", (Q[0],))] * 3 + [Operation("Rx", (Q[1],), 0.5)]
        with pytest.raises(NonReversibleOpError) as exc:
            state.run(iter(ops))
        assert exc.value.index == 3


class TestSingleInput:
    def test_each_gate_matches_statevector(self):
        circuits = [
            [Operation("X", (Q[0],))],
            [Operation("CNOT", (Q[0], Q[1]))],
            [Operation("Toffoli", (Q[0], Q[1], Q[2]))],
            [Operation("SWAP", (Q[1], Q[3]))],
            [Operation("Fredkin", (Q[0], Q[1], Q[2]))],
        ]
        for ops in circuits:
            for value in range(16):
                sv = Simulator(Q)
                sv.reset(value)
                sv.run(ops)
                assert run_reversible(ops, Q, value) == sv.basis_state(), (
                    f"{ops[0].gate} diverges on input {value}"
                )

    def test_set_bits_and_bit(self):
        sim = ReversibleSimulator(Q)
        sim.set_bits({Q[1]: 1, Q[3]: 1})
        assert sim.state == 0b1010
        sim.set_bits({Q[1]: 0})
        assert sim.bit(Q[1]) == 0
        assert sim.bit(Q[3]) == 1

    def test_reset_range_checked(self):
        sim = ReversibleSimulator(Q)
        with pytest.raises(ValueError):
            sim.reset(16)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            ReversibleSimulator([Q[0], Q[0]])


class TestPatterns:
    @pytest.mark.parametrize("bits", [1, 2, 3, 5, 7])
    def test_exhaustive_patterns_closed_form(self, bits):
        pats = exhaustive_patterns(bits)
        for value in range(1 << bits):
            for i in range(bits):
                assert (pats[i] >> value) & 1 == (value >> i) & 1

    def test_sliced_patterns_transpose(self):
        values = [0b101, 0b010, 0b111, 0b000]
        pats = sliced_patterns(values, 3)
        for lane, value in enumerate(values):
            for i in range(3):
                assert (pats[i] >> lane) & 1 == (value >> i) & 1

    def test_sample_inputs_deterministic_and_distinct(self):
        a = sample_inputs(12, 64, seed=7)
        b = sample_inputs(12, 64, seed=7)
        assert a == b
        assert len(set(a)) == len(a) == 64
        assert all(0 <= v < 4096 for v in a)

    def test_sample_inputs_corners_first(self):
        got = sample_inputs(8, 6)
        assert got[0] == 0
        assert got[1] == 1
        assert 255 in got[:6]

    def test_sample_covers_small_spaces_exactly(self):
        assert sorted(sample_inputs(3, 100)) == list(range(8))
        assert sample_inputs(0, 5) == [0]


class TestSlicedState:
    def test_exhaustive_sweep_matches_single_input(self):
        ops = cuccaro_add(reg("a", 2), reg("b", 2), Qubit("c", 0))
        qubits = reg("a", 2) + reg("b", 2) + [Qubit("c", 0)]
        state = SlicedState(qubits, 1 << len(qubits))
        state.load(qubits)
        state.run(iter(ops))
        for value in range(1 << len(qubits)):
            assert state.extract(value, qubits) == run_reversible(
                ops, qubits, value
            )

    def test_compiled_equals_streamed(self):
        ops = cuccaro_add(reg("a", 3), reg("b", 3), Qubit("c", 0))
        qubits = reg("a", 3) + reg("b", 3) + [Qubit("c", 0)]
        lanes = 1 << len(qubits)
        a = SlicedState(qubits, lanes)
        a.load(qubits)
        a.run(iter(ops))
        b = SlicedState(qubits, lanes)
        b.load(qubits)
        b.apply_compiled(compile_ops(ops, b.index))
        assert a.vec == b.vec

    def test_load_lane_count_checked(self):
        state = SlicedState(Q, 8)
        with pytest.raises(ValueError, match="lanes"):
            state.load(Q)  # exhaustive over 4 inputs needs 16 lanes
        with pytest.raises(ValueError, match="values"):
            state.load(Q, values=[0, 1])


class TestVerifyEquivalent:
    def test_equal_circuits_pass(self):
        ops = [
            Operation("CNOT", (Q[0], Q[1])),
            Operation("Toffoli", (Q[0], Q[1], Q[2])),
        ]
        report = verify_equivalent(iter(ops), iter(list(ops)), Q)
        assert report.ok
        assert report.mode == "exhaustive"
        assert report.lanes == 16
        assert report.ops == 2
        assert "OK" in report.summary()

    def test_minimal_counterexample(self):
        a = [Operation("CNOT", (Q[0], Q[1]))]
        b = [Operation("CNOT", (Q[1], Q[0]))]
        report = verify_equivalent(iter(a), iter(b), Q)
        assert not report.ok
        cex = report.counterexample
        assert isinstance(cex, CounterExample)
        # Inputs 0b0000 agrees; 0b0001 is the smallest divergence.
        assert cex.input_value == 1
        assert "MISMATCH" in report.summary()

    def test_sampled_mode_above_limit(self):
        qs = reg("w", 24)
        ops = [Operation("X", (qs[0],))]
        report = verify_equivalent(
            iter(ops), iter(list(ops)), qs, samples=32
        )
        assert report.ok
        assert report.mode == "sampled"
        assert report.lanes == 32
        assert 24 > DEFAULT_EXHAUSTIVE_LIMIT

    def test_verification_error_carries_report(self):
        report = verify_equivalent(
            iter([Operation("X", (Q[0],))]), iter([]), Q
        )
        err = VerificationError("mod", report)
        assert err.module == "mod"
        assert "mod" in str(err)


class TestVerifyReference:
    def test_adder_reference(self):
        a, b, c = reg("a", 3), reg("b", 3), Qubit("c", 0)
        ops = cuccaro_add(a, b, c)
        qubits = a + b + [c]

        def ref(x):
            av, bv = x & 7, (x >> 3) & 7
            return av | (((av + bv) & 7) << 3)

        report = verify_reference(
            lambda state: state.run(iter(ops)),
            qubits,
            inputs=a + b,
            outputs=a + b,
            reference=ref,
            clean=[c],
        )
        assert report.ok

    def test_dirty_ancilla_is_a_counterexample(self):
        anc = Qubit("anc", 0)
        qubits = Q + [anc]
        ops = [Operation("CNOT", (Q[0], anc))]  # leaks on odd inputs
        report = verify_reference(
            lambda state: state.run(iter(ops)),
            qubits,
            inputs=Q,
            outputs=Q,
            reference=lambda x: x,
            clean=[anc],
        )
        assert not report.ok
        assert report.counterexample.input_value == 1

    def test_counterexample_describe_groups_registers(self):
        a, b = reg("a", 2), reg("b", 2)
        report = verify_reference(
            lambda state: state.run(iter([Operation("X", (b[0],))])),
            a + b,
            inputs=a + b,
            outputs=a + b,
            reference=lambda x: x,
        )
        assert not report.ok
        text = report.counterexample.describe()
        assert "a=" in text and "b=" in text


class TestDropIns:
    def test_truth_table_parity_with_statevector(self):
        a, b, c = reg("a", 3), reg("b", 3), Qubit("c", 0)
        ops = cuccaro_add(a, b, c)
        want = truth_table(ops, a + b, b, all_qubits=a + b + [c])
        got = truth_table_reversible(ops, a + b, b, all_qubits=a + b + [c])
        assert got == want
        assert truth_table(
            ops, a + b, b, all_qubits=a + b + [c], backend="reversible"
        ) == want

    def test_truth_table_collects_qubits_like_statevector(self):
        ops = [Operation("CNOT", (Q[2], Q[0]))]
        want = truth_table(ops, [Q[2]], [Q[0], Q[2]])
        assert truth_table_reversible(ops, [Q[2]], [Q[0], Q[2]]) == want

    def test_check_permutation_backends_agree(self):
        ops = [Operation("SWAP", (Q[0], Q[1]))]

        def perm(j):
            lo, hi = j & 1, (j >> 1) & 1
            return (j & ~3) | (hi) | (lo << 1)

        assert check_permutation(ops, Q, perm)
        assert check_permutation_reversible(ops, Q, perm)
        assert check_permutation(ops, Q, perm, backend="reversible")
        assert not check_permutation_reversible(ops, Q, lambda j: j ^ 4)

    def test_non_permutation_circuit_is_false_not_raise(self):
        ops = [Operation("H", (Q[0],))]
        assert not check_permutation(ops, Q, lambda j: j)
        assert not check_permutation_reversible(ops, Q, lambda j: j)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            truth_table([], [Q[0]], [Q[0]], backend="tensor")
        with pytest.raises(ValueError, match="backend"):
            check_permutation([], Q, lambda j: j, backend="tensor")


class TestScheduleLinearization:
    def test_schedule_ops_order(self):
        from repro.core.dag import DependenceDAG
        from repro.sched import schedule_lpfs

        ops = cuccaro_add(reg("a", 3), reg("b", 3), Qubit("c", 0))
        dag = DependenceDAG(list(ops))
        sched = schedule_lpfs(dag, 4, None)
        replay = list(schedule_ops(sched))
        assert sorted(map(repr, replay)) == sorted(map(repr, ops))
        qubits = reg("a", 3) + reg("b", 3) + [Qubit("c", 0)]
        assert verify_equivalent(iter(ops), iter(replay), qubits).ok
