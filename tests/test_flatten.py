"""Tests for threshold flattening (Section 3.1.1 / Figure 4)."""

import pytest

from repro.core.builder import ProgramBuilder
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.passes.decompose import decompose_program
from repro.passes.flatten import (
    flatten_program,
    fully_flatten,
    inline_call,
)
from repro.passes.resource import total_gate_counts
from repro.sim.statevector import circuit_unitary
from repro.sim.verify import equivalent_up_to_global_phase


def nested_program(levels=3, gates_per_level=2):
    """level0 <- level1 <- ... ; level0 is the leaf."""
    pb = ProgramBuilder()
    prev = None
    for lvl in range(levels):
        mb = pb.module(f"level{lvl}")
        q = mb.param_register("q", 1)
        for _ in range(gates_per_level):
            mb.t(q[0])
        if prev is not None:
            mb.call(prev, [q[0]], iterations=2)
        prev = f"level{lvl}"
    main = pb.module("main")
    q = main.register("q", 1)
    main.call(prev, [q[0]])
    return pb.build("main")


class TestInlineCall:
    def test_formal_to_actual_substitution(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 2)
        sub.cnot(p[0], p[1])
        main = pb.module("main")
        q = main.register("q", 2)
        main.call("sub", [q[1], q[0]])
        prog = pb.build("main")
        stmts = inline_call(
            next(prog.entry_module.calls()), prog.module("sub"), "i0"
        )
        assert stmts == [
            Operation("CNOT", (Qubit("q", 1), Qubit("q", 0)))
        ]

    def test_locals_renamed_per_instance(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        local = sub.register("scratch", 1)
        sub.cnot(p[0], local[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("sub", [q[0]])
        prog = pb.build("main")
        call = next(prog.entry_module.calls())
        a = inline_call(call, prog.module("sub"), "A")
        b = inline_call(call, prog.module("sub"), "B")
        assert a[0].qubits[1] != b[0].qubits[1]
        assert a[0].qubits[0] == b[0].qubits[0] == Qubit("q", 0)

    def test_iterations_repeat_body(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        sub.t(p[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("sub", [q[0]], iterations=5)
        prog = pb.build("main")
        stmts = inline_call(
            next(prog.entry_module.calls()), prog.module("sub"), "i"
        )
        assert len(stmts) == 5

    def test_non_leaf_callee_rejected(self):
        prog = nested_program()
        call = next(prog.entry_module.calls())
        with pytest.raises(ValueError, match="non-leaf"):
            inline_call(call, prog.module("level2"), "i")


class TestFlattenProgram:
    def test_threshold_zero_flattens_nothing(self):
        prog = nested_program()
        result = flatten_program(prog, fth=0)
        assert result.flattened == []

    def test_huge_threshold_flattens_everything(self):
        prog = nested_program()
        result = flatten_program(prog, fth=10 ** 9)
        assert result.program.entry_module.is_leaf
        assert result.percent_flattened == 100.0

    def test_partial_threshold(self):
        # level0: 2 gates; level1: 2 + 2*2 = 6; level2: 2 + 2*6 = 14;
        # main: 14.
        prog = nested_program()
        counts = total_gate_counts(prog)
        assert counts["level1"] == 6 and counts["level2"] == 14
        result = flatten_program(prog, fth=6)
        assert set(result.flattened) == {"level1"}
        assert result.program.module("level1").is_leaf
        assert not result.program.module("level2").is_leaf

    def test_flattening_preserves_total_gate_count(self):
        prog = nested_program()
        before = total_gate_counts(prog)["main"]
        flat = flatten_program(prog, fth=10 ** 9).program
        assert total_gate_counts(flat)["main"] == before

    def test_flattening_preserves_semantics(self):
        """The flattened entry must implement the same unitary as the
        hierarchical program (simulated on a small instance)."""
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 2)
        sub.h(p[0]).cnot(p[0], p[1]).t(p[1])
        main = pb.module("main")
        q = main.register("q", 2)
        main.x(q[0])
        main.call("sub", [q[0], q[1]], iterations=2)
        main.z(q[1])
        prog = pb.build("main")

        flat = fully_flatten(prog)
        # Reference: manual expansion.
        ref_ops = (
            [Operation("X", (q[0],))]
            + [
                Operation("H", (q[0],)),
                Operation("CNOT", (q[0], q[1])),
                Operation("T", (q[1],)),
            ] * 2
            + [Operation("Z", (q[1],))]
        )
        u = circuit_unitary(list(flat.operations()), [q[0], q[1]])
        v = circuit_unitary(ref_ops, [q[0], q[1]])
        assert equivalent_up_to_global_phase(u, v)

    def test_figure4_shape(self, two_toffoli_program):
        """Figure 4: the decomposed, flattened two-Toffoli program is a
        30-op leaf whose DAG admits a ~21-cycle two-region schedule."""
        prog = decompose_program(two_toffoli_program)
        flat = fully_flatten(prog)
        assert flat.direct_gate_count == 30
        from repro.core.dag import DependenceDAG
        from repro.sched.lpfs import schedule_lpfs

        sched = schedule_lpfs(DependenceDAG(list(flat.body)), k=2)
        sched.validate()
        # Flattened schedule beats the 24-cycle blackbox serialization.
        assert sched.length < 24

    def test_percent_flattened_counts_existing_leaves(self):
        pb = ProgramBuilder()
        leafm = pb.module("leafm")
        q = leafm.param_register("q", 1)
        leafm.t(q[0])
        main = pb.module("main")
        mq = main.register("q", 1)
        main.call("leafm", [mq[0]])
        prog = pb.build("main")
        result = flatten_program(prog, fth=0)
        # leafm already a leaf: 1 of 2 reachable modules.
        assert result.percent_flattened == 50.0
