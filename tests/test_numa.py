"""Tests for the distributed-global-memory (NUMA) extension."""

import math

import pytest

from repro.arch.machine import MultiSIMD
from repro.arch.numa import NUMAConfig, assign_banks, numa_runtime
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sched.comm import derive_movement
from repro.sched.rcp import schedule_rcp

Q = [Qubit("q", i) for i in range(8)]


def annotated(ops, k=4):
    dag = DependenceDAG(ops)
    sched = schedule_rcp(dag, k=k)
    stats = derive_movement(sched, MultiSIMD(k=k))
    return sched, stats


def churn_ops():
    """Ops that force fetch/evict churn across regions."""
    ops = []
    for i in range(4):
        ops.append(Operation("CNOT", (Q[2 * (i % 2)], Q[2 * (i % 2) + 1])))
        ops.append(Operation("H", (Q[4 + i % 4],)))
    return ops


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NUMAConfig(banks=0)
        with pytest.raises(ValueError):
            NUMAConfig(channel_bandwidth=0)
        with pytest.raises(ValueError):
            NUMAConfig(placement="randomly")

    def test_nearest_bank_spacing(self):
        cfg = NUMAConfig(banks=2)
        # 4 regions, 2 banks: regions 0,1 -> bank 0; 2,3 -> bank 1.
        assert cfg.nearest_bank(0, 4) == 0
        assert cfg.nearest_bank(1, 4) == 0
        assert cfg.nearest_bank(2, 4) == 1
        assert cfg.nearest_bank(3, 4) == 1

    def test_distance(self):
        cfg = NUMAConfig(banks=4)
        assert cfg.distance(0, 0, 4) == 0
        assert cfg.distance(3, 0, 4) == 3


class TestAssignment:
    def test_affinity_places_near_usage(self):
        # q0/q1 only used in one region -> their bank is that region's.
        ops = [Operation("CNOT", (Q[0], Q[1])) for _ in range(3)]
        sched, _ = annotated(ops, k=4)
        cfg = NUMAConfig(banks=4)
        banks = assign_banks(sched, cfg)
        placement = sched.placement()
        region = placement[0][1]
        assert banks[Q[0]] == cfg.nearest_bank(region, 4)

    def test_round_robin_spreads(self):
        ops = [Operation("H", (Q[i],)) for i in range(8)]
        sched, _ = annotated(ops, k=2)
        banks = assign_banks(
            sched, NUMAConfig(banks=4, placement="round_robin")
        )
        assert set(banks.values()) == {0, 1, 2, 3}


class TestRuntime:
    def test_single_bank_infinite_bandwidth_matches_paper_model(self):
        sched, stats = annotated(churn_ops())
        numa = numa_runtime(sched, NUMAConfig(banks=1))
        assert numa.runtime == stats.runtime

    def test_finite_bandwidth_stretches_epochs(self):
        sched, stats = annotated(churn_ops())
        tight = numa_runtime(
            sched, NUMAConfig(banks=1, channel_bandwidth=1)
        )
        loose = numa_runtime(
            sched, NUMAConfig(banks=1, channel_bandwidth=math.inf)
        )
        assert tight.runtime >= loose.runtime
        assert tight.teleport_rounds >= loose.teleport_rounds

    def test_more_banks_reduce_peak_channel_load(self):
        sched, _ = annotated(churn_ops())
        one = numa_runtime(sched, NUMAConfig(banks=1))
        four = numa_runtime(sched, NUMAConfig(banks=4))
        assert four.peak_channel_load <= one.peak_channel_load

    def test_banks_help_under_tight_bandwidth(self):
        sched, _ = annotated(churn_ops())
        cramped = numa_runtime(
            sched, NUMAConfig(banks=1, channel_bandwidth=1)
        )
        spread = numa_runtime(
            sched, NUMAConfig(banks=4, channel_bandwidth=1)
        )
        assert spread.runtime <= cramped.runtime

    def test_bank_loads_accounted(self):
        sched, stats = annotated(churn_ops())
        numa = numa_runtime(sched, NUMAConfig(banks=2))
        assert sum(numa.bank_loads.values()) >= stats.teleports

    def test_affinity_beats_round_robin_on_load(self):
        ops = [Operation("CNOT", (Q[0], Q[1])) for _ in range(2)]
        ops += [Operation("H", (Q[2],)), Operation("T", (Q[0],))]
        sched, _ = annotated(ops, k=4)
        cfg_aff = NUMAConfig(banks=4, placement="affinity")
        cfg_rr = NUMAConfig(banks=4, placement="round_robin")
        aff = numa_runtime(sched, cfg_aff)
        rr = numa_runtime(sched, cfg_rr)
        # Affinity placement never consumes more capacity units in
        # total (pairs travel shorter distances).
        assert sum(aff.bank_loads.values()) <= sum(rr.bank_loads.values())


class TestBankEgress:
    def _spread_schedule(self):
        ops = []
        for i in range(4):
            ops.append(
                Operation("CNOT", (Q[2 * (i % 2)], Q[2 * (i % 2) + 1]))
            )
            ops.append(Operation("H", (Q[4 + i % 4],)))
        return annotated(ops, k=4)[0]

    def test_egress_serialises_single_bank(self):
        sched = self._spread_schedule()
        free = numa_runtime(sched, NUMAConfig(banks=1))
        tight = numa_runtime(
            sched, NUMAConfig(banks=1, bank_egress=1.0)
        )
        assert tight.teleport_rounds > free.teleport_rounds
        assert tight.runtime > free.runtime

    def test_banks_relieve_egress(self):
        sched = self._spread_schedule()
        one = numa_runtime(
            sched, NUMAConfig(banks=1, bank_egress=2.0)
        )
        four = numa_runtime(
            sched, NUMAConfig(banks=4, bank_egress=2.0)
        )
        assert four.teleport_rounds < one.teleport_rounds
        assert four.runtime < one.runtime

    def test_invalid_egress(self):
        with pytest.raises(ValueError):
            NUMAConfig(bank_egress=0)
