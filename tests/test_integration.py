"""Cross-module integration tests: every benchmark through the whole
toolflow, with the paper's qualitative claims asserted as invariants."""

import math

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.benchmarks.bwt import build_bwt
from repro.benchmarks.gse import build_gse
from repro.benchmarks.shors import build_shors
from repro.passes.qubit_count import minimum_qubits
from repro.toolflow import SchedulerConfig, compile_and_schedule

# Smaller-than-registry instances keep the integration suite fast.
SMALL = {
    "BF": lambda: BENCHMARKS["BF"].build(),
    "Grovers": lambda: __import__(
        "repro.benchmarks.grovers", fromlist=["build_grovers"]
    ).build_grovers(n=5, iterations=3),
    "GSE": lambda: build_gse(m=4, precision_bits=3, trotter_slices=1),
    "BWT": lambda: build_bwt(n=4, s=2),
    "Shors": lambda: build_shors(n=4),
}


@pytest.fixture(params=sorted(SMALL))
def small_benchmark(request):
    return request.param, SMALL[request.param]()


class TestBenchmarkCompilation:
    def test_compiles_and_validates(self, small_benchmark):
        key, prog = small_benchmark
        result = compile_and_schedule(
            prog, MultiSIMD(k=2), fth=BENCHMARKS[key].fth
        )
        for name, sched in result.schedules.items():
            sched.validate()
        assert result.total_gates > 0
        assert result.schedule_length > 0

    def test_speedup_sandwich(self, small_benchmark):
        """sequential >= schedule >= critical path, for every
        benchmark."""
        key, prog = small_benchmark
        result = compile_and_schedule(
            prog, MultiSIMD(k=4), fth=BENCHMARKS[key].fth
        )
        assert (
            result.critical_path
            <= result.schedule_length
            <= result.total_gates
        )

    def test_comm_aware_beats_or_matches_naive(self, small_benchmark):
        key, prog = small_benchmark
        result = compile_and_schedule(
            prog, MultiSIMD(k=4), fth=BENCHMARKS[key].fth
        )
        assert result.runtime <= result.naive_runtime

    def test_local_memory_monotone(self, small_benchmark):
        """Figure 8's qualitative claim: more scratchpad never hurts
        (within this cost model, at equal schedules)."""
        key, prog = small_benchmark
        q = minimum_qubits(prog)
        runtimes = []
        for cap in (None, q / 2, math.inf):
            result = compile_and_schedule(
                prog,
                MultiSIMD(k=4, local_memory=cap),
                fth=BENCHMARKS[key].fth,
            )
            runtimes.append(result.runtime)
        assert runtimes[0] >= runtimes[1] >= runtimes[2]

    def test_rcp_lpfs_same_gate_counts(self, small_benchmark):
        key, prog = small_benchmark
        counts = set()
        for alg in ("rcp", "lpfs"):
            result = compile_and_schedule(
                prog, MultiSIMD(k=2), SchedulerConfig(alg),
                fth=BENCHMARKS[key].fth,
            )
            counts.add(result.total_gates)
        assert len(counts) == 1


class TestPaperClaims:
    def test_gse_profits_most_from_comm_awareness(self):
        """Section 5.2: GSE's pinned rotation chains give it the
        largest communication-aware gain."""
        ratios = {}
        for key, build in (
            ("GSE", SMALL["GSE"]),
            ("BWT", SMALL["BWT"]),
        ):
            prog = build()
            r = compile_and_schedule(
                prog, MultiSIMD(k=4), fth=BENCHMARKS[key].fth
            )
            ratios[key] = r.comm_aware_speedup / r.parallel_speedup
        assert ratios["GSE"] > ratios["BWT"]

    def test_shors_k_sensitivity(self):
        """Figure 9: Shor's speedup grows with region count."""
        prog = build_shors(n=5)
        speeds = []
        for k in (2, 4, 8):
            r = compile_and_schedule(
                prog,
                MultiSIMD(k=k, local_memory=math.inf),
                fth=BENCHMARKS["Shors"].fth,
            )
            speeds.append(r.comm_aware_speedup)
        assert speeds[0] < speeds[-1]

    def test_near_critical_path_at_k4(self):
        """Figure 6: benchmarks reach near-CP speedup by k = 4."""
        prog = SMALL["GSE"]()
        r = compile_and_schedule(
            prog, MultiSIMD(k=4), fth=BENCHMARKS["GSE"].fth
        )
        assert r.parallel_speedup >= 0.9 * r.cp_speedup

    def test_flattening_improves_or_preserves(self):
        """Section 3.1.1: flattening leaf modules never lengthens the
        schedule."""
        prog = build_gse(m=4, precision_bits=3, trotter_slices=1)
        boxed = compile_and_schedule(prog, MultiSIMD(k=2), fth=0)
        flat = compile_and_schedule(prog, MultiSIMD(k=2), fth=10 ** 7)
        assert flat.schedule_length <= boxed.schedule_length
