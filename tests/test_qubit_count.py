"""Tests for the minimum-qubit (Table 1 ``Q``) analysis."""

from repro.core.builder import ProgramBuilder
from repro.passes.qubit_count import local_footprints, minimum_qubits


class TestLocalFootprints:
    def test_params_excluded(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 2)
        local = sub.register("scratch", 3)
        sub.cnot(p[0], local[0])
        sub.cnot(p[1], local[1])
        sub.h(local[2])
        main = pb.module("main")
        q = main.register("q", 2)
        main.call("sub", list(q))
        prog = pb.build("main")
        fp = local_footprints(prog)
        assert fp["sub"] == 3
        assert fp["main"] == 2

    def test_unreferenced_locals_not_counted(self):
        # Only qubits actually touched count.
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 10)
        main.h(q[0])
        prog = pb.build("main")
        assert local_footprints(prog)["main"] == 1


class TestMinimumQubits:
    def test_flat_program(self):
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 4)
        for qb in q:
            main.h(qb)
        assert minimum_qubits(pb.build("main")) == 4

    def test_sibling_calls_share_ancillas(self):
        """Two sibling calls to modules with big local footprints reuse
        the same pool: Q takes the max, not the sum."""
        pb = ProgramBuilder()
        for name, locals_n in (("a", 5), ("b", 3)):
            mb = pb.module(name)
            p = mb.param_register("p", 1)
            scratch = mb.register("s", locals_n)
            for s in scratch:
                mb.cnot(p[0], s)
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("a", [q[0]])
        main.call("b", [q[0]])
        prog = pb.build("main")
        # 1 (main's q) + max(5, 3).
        assert minimum_qubits(prog) == 6

    def test_nested_calls_accumulate(self):
        """A call chain's locals are all live at once: Q sums down the
        deepest chain."""
        pb = ProgramBuilder()
        inner = pb.module("inner")
        ip = inner.param_register("p", 1)
        iloc = inner.register("s", 2)
        inner.cnot(ip[0], iloc[0])
        inner.cnot(ip[0], iloc[1])
        outer = pb.module("outer")
        op = outer.param_register("p", 1)
        oloc = outer.register("s", 3)
        for s in oloc:
            outer.cnot(op[0], s)
        outer.call("inner", [op[0]])
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("outer", [q[0]])
        prog = pb.build("main")
        # 1 + outer's 3 + inner's 2.
        assert minimum_qubits(prog) == 6

    def test_iterations_do_not_inflate_q(self):
        """Repeating a call reuses the same qubits; Q is iteration
        independent."""
        pb = ProgramBuilder()
        sub = pb.module("sub")
        p = sub.param_register("p", 1)
        s = sub.register("s", 4)
        for sq in s:
            sub.cnot(p[0], sq)
        for iters in (1, 1000):
            pb2 = ProgramBuilder()
            sub2 = pb2.module("sub")
            p2 = sub2.param_register("p", 1)
            s2 = sub2.register("s", 4)
            for sq in s2:
                sub2.cnot(p2[0], sq)
            main = pb2.module("main")
            q = main.register("q", 1)
            main.call("sub", [q[0]], iterations=iters)
            assert minimum_qubits(pb2.build("main")) == 5

    def test_benchmark_q_values_are_positive(self):
        from repro.benchmarks import BENCHMARKS

        for spec in BENCHMARKS.values():
            q = minimum_qubits(spec.build())
            assert q > 0
