"""Tests for end-to-end compilation verification — proving whole
pipelines semantics-preserving on simulable programs."""

import math

import pytest

from repro.core.builder import ProgramBuilder
from repro.passes.decompose import decompose_program
from repro.passes.flatten import flatten_program
from repro.passes.optimize import optimize_program
from repro.sim.compile_check import (
    CompilationCheckError,
    verify_compilation,
)


def pi4_program():
    """A program using only exactly-synthesisable gates."""
    pb = ProgramBuilder()
    sub = pb.module("sub")
    p = sub.param_register("p", 2)
    sub.toffoli_args = None
    sub.h(p[0]).cnot(p[0], p[1]).rz(p[1], math.pi / 4)
    main = pb.module("main")
    q = main.register("q", 3)
    main.x(q[0])
    main.call("sub", [q[0], q[1]], iterations=2)
    main.toffoli(q[0], q[1], q[2])
    main.rz(q[2], math.pi / 2)
    return pb.build("main")


class TestPipelines:
    def test_decomposition_preserves_semantics(self):
        prog = pi4_program()
        assert verify_compilation(prog, decompose_program(prog))

    def test_flattening_preserves_semantics(self):
        prog = pi4_program()
        flat = flatten_program(prog, fth=10 ** 9).program
        assert verify_compilation(prog, flat)

    def test_optimize_preserves_semantics(self):
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 2)
        main.h(q[0]).h(q[0]).t(q[0]).cnot(q[0], q[1])
        main.rz(q[1], 0.4).rz(q[1], -0.4)
        prog = pb.build("main")
        optimized, stats = optimize_program(prog)
        assert stats.removed_ops > 0
        assert verify_compilation(prog, optimized)

    def test_full_pipeline_preserves_semantics(self):
        prog = pi4_program()
        optimized, _ = optimize_program(prog)
        lowered = decompose_program(optimized)
        flat = flatten_program(lowered, fth=10 ** 9).program
        assert verify_compilation(prog, flat)

    def test_detects_broken_transformation(self):
        prog = pi4_program()
        # A deliberately wrong "transformation": drop the final Rz.
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 3)
        main.x(q[0])
        prog_broken = pb.build("main")
        assert not verify_compilation(prog, prog_broken)


class TestGuards:
    def test_measurement_rejected(self):
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 1)
        main.h(q[0]).meas_z(q[0])
        prog = pb.build("main")
        with pytest.raises(CompilationCheckError, match="measurement"):
            verify_compilation(prog, prog)

    def test_size_budget_enforced(self):
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 15)
        for qb in q:
            main.h(qb)
        prog = pb.build("main")
        with pytest.raises(CompilationCheckError, match="exceeds"):
            verify_compilation(prog, prog, max_qubits=12)

    def test_identity_comparison(self):
        prog = pi4_program()
        assert verify_compilation(prog, prog)
