"""Unit tests for the Scaffold-style program builder DSL."""


import pytest

from repro.core.builder import ModuleBuilder, ProgramBuilder
from repro.core.operation import Operation
from repro.core.qubits import Qubit


class TestModuleBuilder:
    def test_gate_methods_emit_operations(self):
        mb = ModuleBuilder("m")
        q = mb.register("q", 3)
        mb.h(q[0]).cnot(q[0], q[1]).toffoli(q[0], q[1], q[2])
        mod = mb.build()
        assert [op.gate for op in mod.operations()] == [
            "H", "CNOT", "Toffoli",
        ]

    def test_all_single_qubit_helpers(self):
        mb = ModuleBuilder("m")
        q = mb.register("q", 1)[0]
        for method in ("x", "y", "z", "h", "s", "sdag", "t", "tdag",
                       "prep_z", "prep_x", "meas_z", "meas_x"):
            getattr(mb, method)(q)
        gates = [op.gate for op in mb.build().operations()]
        assert gates == ["X", "Y", "Z", "H", "S", "Sdag", "T", "Tdag",
                         "PrepZ", "PrepX", "MeasZ", "MeasX"]

    def test_rotations_carry_angles(self):
        mb = ModuleBuilder("m")
        q = mb.register("q", 2)
        mb.rz(q[0], 0.5).rx(q[0], 1.0).ry(q[0], 1.5)
        mb.crz(q[0], q[1], 2.0).crx(q[0], q[1], 2.5)
        angles = [op.angle for op in mb.build().operations()]
        assert angles == [0.5, 1.0, 1.5, 2.0, 2.5]

    def test_param_register_adds_formals(self):
        mb = ModuleBuilder("m")
        p = mb.param_register("p", 2)
        mb.register("local", 1)
        mod = mb.build()
        assert mod.params == (p[0], p[1])

    def test_params_individual(self):
        mb = ModuleBuilder("m")
        q = mb.register("q", 2)
        mb.params(q[1])
        assert mb.build().params == (q[1],)

    def test_duplicate_register_rejected(self):
        mb = ModuleBuilder("m")
        mb.register("q", 1)
        with pytest.raises(ValueError, match="already declared"):
            mb.register("q", 2)

    def test_unknown_gate_via_gate_method(self):
        mb = ModuleBuilder("m")
        q = mb.register("q", 1)
        with pytest.raises(KeyError):
            mb.gate("BOGUS", q[0])

    def test_call_by_name_and_by_builder(self):
        pb = ProgramBuilder()
        sub = pb.module("sub")
        sp = sub.param_register("p", 1)
        sub.h(sp[0])
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("sub", [q[0]])
        main.call(sub, [q[0]], iterations=3)
        prog = pb.build("main")
        calls = list(prog.entry_module.calls())
        assert [c.iterations for c in calls] == [1, 3]

    def test_len_counts_statements(self):
        mb = ModuleBuilder("m")
        q = mb.register("q", 1)
        mb.h(q[0]).t(q[0])
        assert len(mb) == 2


class TestProgramBuilder:
    def test_duplicate_module_rejected(self):
        pb = ProgramBuilder()
        pb.module("m")
        with pytest.raises(ValueError, match="already defined"):
            pb.module("m")

    def test_add_prebuilt_module(self):
        from repro.core.module import Module

        pb = ProgramBuilder()
        q = Qubit("q", 0)
        pb.add_module(Module("ready", (), [Operation("H", (q,))]))
        main = pb.module("main")
        mq = main.register("q", 1)
        main.call("ready", [])
        prog = pb.build("main")
        assert "ready" in prog

    def test_add_prebuilt_duplicate_rejected(self):
        from repro.core.module import Module

        pb = ProgramBuilder()
        pb.module("m")
        with pytest.raises(ValueError, match="already defined"):
            pb.add_module(Module("m", (), []))

    def test_build_validates(self):
        pb = ProgramBuilder()
        main = pb.module("main")
        q = main.register("q", 1)
        main.call("ghost", [q[0]])
        with pytest.raises(Exception):
            pb.build("main")
