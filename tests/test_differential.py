"""Differential battery: the fast path vs the reference pipeline.

The fast-path rewrites (:mod:`repro.core.dag`, :mod:`repro.sched.rcp`,
:mod:`repro.sched.lpfs`, :mod:`repro.sched.comm`,
:mod:`repro.sched.coarse`) promise **bit-identical** output to the
pre-optimization implementations preserved in
:mod:`repro.sched._reference`. This battery generates random programs
with hypothesis and runs every scheduler through both pipelines
(:func:`repro.fastpath.reference_pipeline` flips the dispatch), checking

* byte-identical :func:`~repro.sched.report.schedule_to_dict` exports,
* the Multi-SIMD execution invariants (dependence order, region count
  within ``k``, SIMD group width within ``d``, one gate type per group),
* that the analytic runtime equals the engine's realized runtime under
  the ideal configuration (no stalls possible), and
* identical coarse schedules and length profiles for hierarchical
  modules.

The per-test ``max_examples`` settings sum to 255 generated programs
per run, all seeded by hypothesis's deterministic derandomization in
CI.
"""

from __future__ import annotations

import json
import math
from typing import Callable, List, Optional

from hypothesis import given, settings, strategies as st

from repro.arch.machine import MultiSIMD
from repro.core import ProgramBuilder
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.engine import run_schedule
from repro.fastpath import fast_path_enabled, reference_pipeline
from repro.sched import (
    CoarseResult,
    coarse_length_profile,
    derive_movement,
    schedule_coarse,
    schedule_lpfs,
    schedule_rcp,
    schedule_sequential,
    schedule_to_dict,
)

N_QUBITS = 8
QUBITS = [Qubit("q", i) for i in range(N_QUBITS)]
GATES_BY_ARITY = {
    1: ("H", "T", "X", "S", "PrepZ", "MeasZ"),
    2: ("CNOT", "CZ", "SWAP"),
    3: ("Toffoli", "Fredkin"),
}


@st.composite
def leaf_bodies(draw, max_ops: int = 24) -> List[Operation]:
    """A random leaf-module body over eight qubits."""
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops: List[Operation] = []
    for _ in range(n):
        arity = draw(st.integers(min_value=1, max_value=3))
        gate = draw(st.sampled_from(GATES_BY_ARITY[arity]))
        idxs = draw(
            st.lists(
                st.integers(min_value=0, max_value=N_QUBITS - 1),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        ops.append(Operation(gate, tuple(QUBITS[i] for i in idxs)))
    return ops


ds = st.sampled_from([None, 1, 2, 4])
ks = st.integers(min_value=1, max_value=4)


def both_pipelines(fn: Callable[[], str]):
    """Run ``fn`` once on the fast path and once on the reference
    pipeline; the callable must rebuild everything (including DAGs)
    from scratch so both dispatch points are exercised."""
    assert fast_path_enabled()
    fast = fn()
    with reference_pipeline():
        assert not fast_path_enabled()
        ref = fn()
    assert fast_path_enabled()
    return fast, ref


def schedule_bytes(ops: List[Operation], schedule) -> bytes:
    dag = DependenceDAG(list(ops))
    return json.dumps(
        schedule_to_dict(schedule(dag)), sort_keys=True
    ).encode()


def check_invariants(
    sched, dag: DependenceDAG, k: int, d: Optional[int]
) -> None:
    """The Multi-SIMD execution invariants, checked from first
    principles (independently of ``Schedule.validate``)."""
    sched.validate()
    ts_of = {}
    for t, ts in enumerate(sched.timesteps):
        assert len(ts.regions) <= k, "more SIMD regions than k"
        for region in ts.regions:
            if d is not None:
                assert len(region) <= d, "SIMD group wider than d"
            gates = {dag.statements[n].gate for n in region}
            assert len(gates) <= 1, "mixed gate types in one region"
            for n in region:
                assert n not in ts_of, "operation scheduled twice"
                ts_of[n] = t
    assert len(ts_of) == dag.n, "operation never scheduled"
    for u in range(dag.n):
        for v in dag.succs[u]:
            assert ts_of[u] < ts_of[v], "dependence order violated"


@settings(max_examples=25, deadline=None)
@given(ops=leaf_bodies())
def test_sequential_differential(ops):
    fast, ref = both_pipelines(
        lambda: schedule_bytes(ops, schedule_sequential)
    )
    assert fast == ref


@settings(max_examples=60, deadline=None)
@given(ops=leaf_bodies(), k=ks, d=ds)
def test_rcp_differential(ops, k, d):
    fast, ref = both_pipelines(
        lambda: schedule_bytes(ops, lambda dag: schedule_rcp(dag, k, d))
    )
    assert fast == ref
    dag = DependenceDAG(list(ops))
    check_invariants(schedule_rcp(dag, k, d), dag, k, d)


@settings(max_examples=60, deadline=None)
@given(
    ops=leaf_bodies(),
    k=ks,
    d=ds,
    l_frac=st.floats(min_value=0.0, max_value=1.0),
    simd=st.booleans(),
    refill=st.booleans(),
)
def test_lpfs_differential(ops, k, d, l_frac, simd, refill):
    n_paths = 1 + int(l_frac * (k - 1))
    fast, ref = both_pipelines(
        lambda: schedule_bytes(
            ops, lambda dag: schedule_lpfs(dag, k, d, n_paths, simd, refill)
        )
    )
    assert fast == ref
    dag = DependenceDAG(list(ops))
    check_invariants(
        schedule_lpfs(dag, k, d, n_paths, simd, refill), dag, k, d
    )


@settings(max_examples=40, deadline=None)
@given(
    ops=leaf_bodies(),
    k=st.integers(min_value=1, max_value=4),
    d=ds,
    algorithm=st.sampled_from(["rcp", "lpfs"]),
    local=st.sampled_from([None, 2.0, math.inf]),
)
def test_movement_differential(ops, k, d, algorithm, local):
    """Movement epochs and the communication profile are identical —
    including the order of eviction ``Move`` records within an epoch."""
    machine = MultiSIMD(k=k, d=d, local_memory=local)

    def run() -> str:
        dag = DependenceDAG(list(ops))
        schedule = schedule_rcp if algorithm == "rcp" else schedule_lpfs
        sched = schedule(dag, k, d)
        stats = derive_movement(sched, machine)
        return json.dumps(
            {
                "schedule": schedule_to_dict(sched),
                "teleports": stats.teleports,
                "local_moves": stats.local_moves,
                "teleport_epochs": stats.teleport_epochs,
                "local_epochs": stats.local_epochs,
                "gate_cycles": stats.gate_cycles,
                "comm_cycles": stats.comm_cycles,
            },
            sort_keys=True,
        )

    fast, ref = both_pipelines(run)
    assert fast == ref


@settings(max_examples=30, deadline=None)
@given(
    ops=leaf_bodies(),
    k=st.integers(min_value=1, max_value=4),
    d=ds,
    algorithm=st.sampled_from(["sequential", "rcp", "lpfs"]),
    local=st.sampled_from([None, 2.0, math.inf]),
)
def test_engine_realizes_analytic_runtime(ops, k, d, algorithm, local):
    """Under the ideal engine configuration (infinite EPR rate, no
    faults, centralized memory) a fast-path schedule's realized runtime
    equals its analytic runtime with zero stalls."""
    machine = MultiSIMD(k=k, d=d, local_memory=local)
    dag = DependenceDAG(list(ops))
    if algorithm == "sequential":
        sched = schedule_sequential(dag, k, d)
    elif algorithm == "rcp":
        sched = schedule_rcp(dag, k, d)
    else:
        sched = schedule_lpfs(dag, k, d)
    derive_movement(sched, machine)
    result = run_schedule(sched, machine)
    assert result.realized_runtime == result.analytic_runtime
    assert result.stalls.total == 0
    assert result.preflight_violations == 0


@st.composite
def hierarchical_cases(draw):
    """A non-leaf module calling one leaf, plus a synthetic dimension
    table for the callee (width 1 always present, widths up to 4)."""
    pb = ProgramBuilder()
    leaf = pb.module("leaf")
    p = leaf.param_register("p", 3)
    leaf.toffoli(p[0], p[1], p[2])
    main = pb.module("main")
    q = main.register("q", N_QUBITS)
    n = draw(st.integers(min_value=1, max_value=14))
    for _ in range(n):
        if draw(st.booleans()):
            i = draw(st.integers(min_value=0, max_value=N_QUBITS - 1))
            main.gate(draw(st.sampled_from(["H", "T", "X"])), q[i])
        else:
            idxs = draw(
                st.lists(
                    st.integers(min_value=0, max_value=N_QUBITS - 1),
                    min_size=3,
                    max_size=3,
                    unique=True,
                )
            )
            iterations = draw(st.integers(min_value=1, max_value=3))
            main.call("leaf", [q[i] for i in idxs], iterations)
    program = pb.build("main")
    max_w = draw(st.integers(min_value=1, max_value=4))
    dims = {
        w: draw(st.integers(min_value=1, max_value=20))
        for w in range(1, max_w + 1)
    }
    k = draw(st.integers(min_value=1, max_value=4))
    gate_cost = draw(st.sampled_from([1, 5]))
    call_overhead = draw(st.sampled_from([0, 4]))
    return program.entry_module, dims, k, gate_cost, call_overhead


@settings(max_examples=40, deadline=None)
@given(case=hierarchical_cases())
def test_coarse_differential(case):
    module, dims, k, gate_cost, call_overhead = case
    callee_dims = {"leaf": dims}
    widths = list(range(1, k + 1))

    def run():
        result = schedule_coarse(
            module, callee_dims, k, gate_cost, call_overhead
        )
        profile = coarse_length_profile(
            module, callee_dims, widths, gate_cost, call_overhead
        )
        return result, profile

    (fast_res, fast_prof), (ref_res, ref_prof) = both_pipelines(run)
    assert isinstance(fast_res, CoarseResult)
    assert fast_res == ref_res
    assert fast_prof == ref_prof
    # The profile at k agrees with the full placement at k.
    assert fast_prof[k] == fast_res.total_length
