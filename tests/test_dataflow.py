"""Tests for the interprocedural dataflow engine
(:mod:`repro.analysis.dataflow`)."""

from __future__ import annotations

from typing import Any, Dict, Mapping

import pytest

from repro.analysis.dataflow import (
    PowersetLattice,
    SummaryCache,
    solve_bottom_up,
    summary_fingerprint,
)
from repro.core.canonical import PIPELINE_VERSION
from repro.core.module import Module, Program
from repro.core.operation import CallSite, Operation
from repro.core.qubits import Qubit


# ---------------------------------------------------------------------------
# A trivial analysis for exercising the engine: iteration-weighted
# operation counts (callees folded in).
# ---------------------------------------------------------------------------


class CountAnalysis:
    name = "op-count"
    version = "1"

    def __init__(self):
        self.summarize_calls = []

    def summarize(
        self, module: Module, callees: Mapping[str, int]
    ) -> int:
        self.summarize_calls.append(module.name)
        total = 0
        for stmt in module.body:
            if isinstance(stmt, Operation):
                total += 1
            else:
                total += stmt.iterations * callees[stmt.callee]
        return total

    def to_payload(self, summary: int) -> Dict[str, Any]:
        return {"count": summary}

    def from_payload(self, payload: Dict[str, Any]) -> int:
        return int(payload["count"])


def _q(i):
    return Qubit("q", i)


def _diamond() -> Program:
    """main -> {left, right} -> leaf (classic diamond)."""
    leaf = Module("leaf", params=(_q(0),), body=[Operation("H", (_q(0),))])
    left = Module(
        "left",
        params=(_q(1),),
        body=[
            Operation("X", (_q(1),)),
            CallSite("leaf", (_q(1),)),
        ],
    )
    right = Module(
        "right",
        params=(_q(2),),
        body=[CallSite("leaf", (_q(2),), iterations=3)],
    )
    main = Module(
        "main",
        body=[
            Operation("PrepZ", (_q(3),)),
            CallSite("left", (_q(3),)),
            CallSite("right", (_q(3),)),
            Operation("MeasZ", (_q(3),)),
        ],
    )
    return Program([leaf, left, right, main], entry="main")


class TestSolveBottomUp:
    def test_counts_compose_through_calls(self):
        result = solve_bottom_up(_diamond(), CountAnalysis())
        assert result.summaries == {
            "leaf": 1,
            "left": 2,
            "right": 3,
            "main": 7,
        }

    def test_callees_summarised_before_callers(self):
        analysis = CountAnalysis()
        result = solve_bottom_up(_diamond(), analysis)
        order = analysis.summarize_calls
        assert order.index("leaf") < order.index("left")
        assert order.index("leaf") < order.index("right")
        assert order.index("left") < order.index("main")
        assert order.index("right") < order.index("main")
        # Acyclic graph: exactly one summarisation per module.
        assert sorted(order) == sorted(result.order)
        assert result.iterations == 4

    def test_unreachable_modules_are_skipped(self):
        orphan = Module("orphan", body=[Operation("H", (_q(9),))])
        base = _diamond()
        prog = Program(
            list(base.modules.values()) + [orphan], entry="main"
        )
        result = solve_bottom_up(prog, CountAnalysis())
        assert "orphan" not in result.summaries

    def test_empty_module_body(self):
        empty = Module("main", body=[])
        result = solve_bottom_up(
            Program([empty], entry="main"), CountAnalysis()
        )
        assert result.summaries == {"main": 0}

    def test_single_module_no_calls(self):
        main = Module("main", body=[Operation("H", (_q(0),))])
        result = solve_bottom_up(
            Program([main], entry="main"), CountAnalysis()
        )
        assert result.summaries == {"main": 1}
        assert result.cache_stats is None


class TestPowersetLattice:
    def test_lattice_laws(self):
        lat = PowersetLattice()
        a = frozenset({1, 2})
        b = frozenset({2, 3})
        assert lat.bottom() == frozenset()
        assert lat.join(a, b) == frozenset({1, 2, 3})
        assert lat.leq(lat.bottom(), a)
        assert lat.leq(a, lat.join(a, b))
        assert not lat.leq(lat.join(a, b), a)
        # join is idempotent, commutative, associative
        assert lat.join(a, a) == a
        assert lat.join(a, b) == lat.join(b, a)


class TestSummaryCache:
    def test_cold_then_warm(self, tmp_path):
        prog = _diamond()
        cold = SummaryCache(tmp_path)
        r1 = solve_bottom_up(prog, CountAnalysis(), cache=cold)
        assert r1.cache_stats.hits == 0
        assert r1.cache_stats.misses == 4
        assert r1.cache_stats.stores == 4

        warm_analysis = CountAnalysis()
        warm = SummaryCache(tmp_path)
        r2 = solve_bottom_up(prog, warm_analysis, cache=warm)
        assert r2.cache_stats.hits == 4
        assert r2.cache_stats.misses == 0
        assert warm_analysis.summarize_calls == []  # fully served
        assert r2.summaries == r1.summaries
        assert r2.fingerprints == r1.fingerprints

    def test_pipeline_version_bump_invalidates(self, tmp_path):
        prog = _diamond()
        solve_bottom_up(
            prog, CountAnalysis(), cache=SummaryCache(tmp_path)
        )
        bumped = SummaryCache(tmp_path, pipeline_version="9999.1")
        analysis = CountAnalysis()
        result = solve_bottom_up(prog, analysis, cache=bumped)
        assert result.cache_stats.hits == 0
        assert len(analysis.summarize_calls) == 4

    def test_analysis_version_bump_invalidates(self, tmp_path):
        prog = _diamond()
        solve_bottom_up(
            prog, CountAnalysis(), cache=SummaryCache(tmp_path)
        )

        class CountV2(CountAnalysis):
            version = "2"

        analysis = CountV2()
        result = solve_bottom_up(
            prog, analysis, cache=SummaryCache(tmp_path)
        )
        assert result.cache_stats.hits == 0
        assert len(analysis.summarize_calls) == 4

    def test_module_edit_refingerprints_callers(self, tmp_path):
        """Editing a leaf re-keys the leaf AND every transitive
        caller (Merkle chaining), but an untouched sibling subtree
        still hits."""
        prog = _diamond()
        solve_bottom_up(
            prog, CountAnalysis(), cache=SummaryCache(tmp_path)
        )
        edited_leaf = Module(
            "leaf",
            params=(_q(0),),
            body=[
                Operation("H", (_q(0),)),
                Operation("X", (_q(0),)),
            ],
        )
        edited = prog.with_modules({"leaf": edited_leaf})
        analysis = CountAnalysis()
        result = solve_bottom_up(
            edited, analysis, cache=SummaryCache(tmp_path)
        )
        # Everything depends on leaf here, so all four recompute...
        assert sorted(analysis.summarize_calls) == [
            "leaf", "left", "main", "right",
        ]
        assert result.summaries["main"] == 11
        # ...and a third run over the edited program is fully warm.
        rerun = solve_bottom_up(
            edited, CountAnalysis(), cache=SummaryCache(tmp_path)
        )
        assert rerun.cache_stats.hits == 4


class TestSummaryFingerprint:
    def test_depends_on_callee_fingerprints(self):
        mod = Module("m", body=[CallSite("c", ())])
        fp1 = summary_fingerprint("a", "1", mod, {"c": "x" * 8})
        fp2 = summary_fingerprint("a", "1", mod, {"c": "y" * 8})
        assert fp1 != fp2

    def test_depends_on_analysis_identity_and_pipeline(self):
        mod = Module("m", body=[])
        base = summary_fingerprint("a", "1", mod, {})
        assert summary_fingerprint("b", "1", mod, {}) != base
        assert summary_fingerprint("a", "2", mod, {}) != base
        assert (
            summary_fingerprint(
                "a", "1", mod, {}, pipeline_version="x"
            )
            != base
        )
        # Default pipeline version is the repo-wide constant.
        assert (
            summary_fingerprint(
                "a", "1", mod, {}, pipeline_version=PIPELINE_VERSION
            )
            == base
        )

    def test_cycle_raises_before_solving(self):
        a = Module("a", body=[CallSite("b", ())])
        b = Module("b", body=[CallSite("a", ())])
        with pytest.raises(Exception):
            Program([a, b], entry="a")
