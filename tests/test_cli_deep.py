"""CLI contract for ``lint --deep`` and code-prefix ``--fail-on``."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

DEEP_CORPUS = Path(__file__).parent / "corpus" / "deep"
BUGGY = str(DEEP_CORPUS / "ql402_use_after_release.scd")
CLEAN = str(DEEP_CORPUS / "clean_uncompute.scd")


def run_lint(*argv, cache_dir=None):
    cache = (
        ["--cache-dir", str(cache_dir)] if cache_dir else ["--no-cache"]
    )
    return main(["lint", *argv, *cache])


class TestDeepExitCodes:
    def test_error_finding_fails_lint(self, capsys):
        assert run_lint(BUGGY, "--deep") == 1
        assert "QL402" in capsys.readouterr().out

    def test_clean_file_passes(self, capsys):
        assert run_lint(CLEAN, "--deep") == 0

    def test_without_deep_the_bug_is_invisible(self):
        assert run_lint(BUGGY) == 0

    def test_fail_on_never(self):
        assert run_lint(BUGGY, "--deep", "--fail-on", "never") == 0


class TestFailOnCodePrefix:
    def test_matching_prefix_fails(self):
        assert run_lint(BUGGY, "--deep", "--fail-on", "QL4") == 1
        assert run_lint(BUGGY, "--deep", "--fail-on", "QL402") == 1

    def test_non_matching_prefix_passes(self):
        assert run_lint(BUGGY, "--deep", "--fail-on", "QL5") == 0

    def test_clean_file_passes_any_prefix(self):
        assert run_lint(CLEAN, "--deep", "--fail-on", "QL") == 0

    def test_bogus_fail_on_is_a_usage_error(self, capsys):
        assert run_lint(BUGGY, "--fail-on", "bogus") == 2
        assert run_lint(BUGGY, "--fail-on", "QL40200") == 2

    def test_prefix_works_without_deep(self):
        # Prefix matching applies to the shallow battery too.
        assert run_lint(BUGGY, "--fail-on", "QL4") == 0


class TestDeepJson:
    def test_json_carries_deep_block(self, capsys, tmp_path):
        code = run_lint(
            CLEAN,
            "--deep",
            "--format",
            "json",
            cache_dir=tmp_path / "cache",
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        deep = doc["deep"]
        assert deep["machine"] == {"k": 4, "d": 4}
        info = deep["sources"][CLEAN]
        assert info["modules"] >= 2
        assert info["schedules_audited"] >= 1
        assert info["profiles_audited"] >= 1
        assert deep["summary_cache"]["misses"] > 0

    def test_warm_run_hits_summary_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert (
            run_lint(CLEAN, "--deep", "--format", "json", cache_dir=cache)
            == 0
        )
        capsys.readouterr()
        assert (
            run_lint(CLEAN, "--deep", "--format", "json", cache_dir=cache)
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        stats = doc["deep"]["summary_cache"]
        assert stats["hits"] > 0
        assert stats["misses"] == 0
        assert doc["deep"]["sources"][CLEAN]["compile_cached"]

    def test_machine_flags_flow_through(self, capsys):
        # A (1,4) machine can't trigger the width-overprovision rule.
        ql501 = str(DEEP_CORPUS / "ql501_width_overprovision.scd")
        assert (
            run_lint(ql501, "--deep", "-k", "4", "-d", "4", "--fail-on", "QL5")
            == 1
        )
        assert "QL501" in capsys.readouterr().out
        assert (
            run_lint(ql501, "--deep", "-k", "1", "-d", "4", "--fail-on", "QL5")
            == 0
        )
