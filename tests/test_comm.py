"""Tests for movement derivation and the communication cost model."""

import math


from repro.arch.machine import MultiSIMD, NAIVE_FACTOR, TELEPORT_CYCLES
from repro.core.dag import DependenceDAG
from repro.core.operation import Operation
from repro.core.qubits import Qubit
from repro.sched.comm import derive_movement, naive_runtime
from repro.sched.lpfs import schedule_lpfs
from repro.sched.rcp import schedule_rcp
from repro.sched.sequential import schedule_sequential
from repro.sched.types import Schedule

Q = [Qubit("q", i) for i in range(8)]


def manual_schedule(dag, placements, k=2):
    sched = Schedule(dag, k=k)
    for regions in placements:
        ts = sched.append_timestep()
        for r, nodes in enumerate(regions):
            ts.regions[r].extend(nodes)
    return sched


class TestBasicMovement:
    def test_initial_fetch_is_teleport(self):
        dag = DependenceDAG([Operation("H", (Q[0],))])
        sched = manual_schedule(dag, [[[0], []]])
        stats = derive_movement(sched, MultiSIMD(k=2))
        assert stats.teleports == 1
        assert stats.comm_cycles == TELEPORT_CYCLES
        assert stats.runtime == 1 + TELEPORT_CYCLES

    def test_chain_stays_in_place_after_fetch(self):
        """A serial single-qubit chain pays one initial teleport and
        nothing after (the LPFS win)."""
        dag = DependenceDAG([Operation("T", (Q[0],)) for _ in range(10)])
        sched = schedule_lpfs(dag, k=2)
        stats = derive_movement(sched, MultiSIMD(k=2))
        assert stats.teleports == 1
        assert stats.runtime == 10 + TELEPORT_CYCLES

    def test_region_change_costs_teleport(self):
        dag = DependenceDAG(
            [Operation("H", (Q[0],)), Operation("H", (Q[0],))]
        )
        # Deliberately split one qubit's chain across regions.
        sched = manual_schedule(dag, [[[0], []], [[], [1]]])
        stats = derive_movement(sched, MultiSIMD(k=2))
        assert stats.teleports == 2  # fetch + inter-region move

    def test_idle_qubit_in_active_region_is_evicted(self):
        # q0 used at ts0 and ts2 in region 0; ts1 keeps region 0 busy
        # with q1: q0 must be evicted and re-fetched.
        dag = DependenceDAG(
            [
                Operation("H", (Q[0],)),
                Operation("H", (Q[1],)),
                Operation("T", (Q[0],)),
            ]
        )
        sched = manual_schedule(dag, [[[0], []], [[1], []], [[2], []]])
        stats = derive_movement(sched, MultiSIMD(k=2))
        # fetch q0, fetch q1 + evict q0 (to global), fetch q0 again.
        assert stats.teleports == 4

    def test_idle_region_is_passive_storage(self):
        # Same shape but q1's op is in region 1, leaving region 0 idle
        # at ts1: q0 may stay put.
        dag = DependenceDAG(
            [
                Operation("H", (Q[0],)),
                Operation("H", (Q[1],)),
                Operation("T", (Q[0],)),
            ]
        )
        sched = manual_schedule(dag, [[[0], []], [[], [1]], [[2], []]])
        stats = derive_movement(sched, MultiSIMD(k=2))
        assert stats.teleports == 2  # only the two initial fetches


class TestLocalMemory:
    def evict_reuse_dag(self):
        """q0: op, gap (region busy), op again in the same region."""
        return DependenceDAG(
            [
                Operation("H", (Q[0],)),
                Operation("H", (Q[1],)),
                Operation("T", (Q[0],)),
            ]
        )

    def test_local_memory_converts_eviction(self):
        dag = self.evict_reuse_dag()
        sched = manual_schedule(dag, [[[0], []], [[1], []], [[2], []]])
        stats = derive_movement(
            sched, MultiSIMD(k=2, local_memory=math.inf)
        )
        # q0's eviction and return are 1-cycle local moves now.
        assert stats.local_moves == 2
        assert stats.teleports == 2  # the two initial fetches

    def test_local_memory_capacity_zero_behaves_like_none(self):
        dag = self.evict_reuse_dag()
        sched_none = manual_schedule(dag, [[[0], []], [[1], []], [[2], []]])
        stats_none = derive_movement(sched_none, MultiSIMD(k=2))
        sched_zero = manual_schedule(dag, [[[0], []], [[1], []], [[2], []]])
        stats_zero = derive_movement(
            sched_zero, MultiSIMD(k=2, local_memory=0)
        )
        assert stats_zero.runtime == stats_none.runtime

    def test_capacity_limits_local_parking(self):
        # Two qubits wanting local slots, capacity 1: one goes global.
        dag = DependenceDAG(
            [
                Operation("CNOT", (Q[0], Q[1])),
                Operation("H", (Q[2],)),
                Operation("CNOT", (Q[0], Q[1])),
            ]
        )
        sched = manual_schedule(dag, [[[0], []], [[1], []], [[2], []]])
        stats = derive_movement(
            sched, MultiSIMD(k=2, local_memory=1)
        )
        assert stats.local_moves == 2  # one qubit parked + returned
        # The other eviction teleports.
        assert stats.teleports >= 3

    def test_local_epoch_cheaper_than_teleport_epoch(self):
        dag = self.evict_reuse_dag()
        s1 = manual_schedule(dag, [[[0], []], [[1], []], [[2], []]])
        base = derive_movement(s1, MultiSIMD(k=2)).runtime
        s2 = manual_schedule(dag, [[[0], []], [[1], []], [[2], []]])
        local = derive_movement(
            s2, MultiSIMD(k=2, local_memory=math.inf)
        ).runtime
        assert local < base


class TestEpochBilling:
    def test_epoch_with_teleport_costs_four(self):
        dag = DependenceDAG(
            [Operation("CNOT", (Q[0], Q[1]))]
        )
        sched = manual_schedule(dag, [[[0], []]])
        stats = derive_movement(sched, MultiSIMD(k=2))
        # Two teleports in one epoch still cost 4 total.
        assert stats.teleports == 2
        assert stats.comm_cycles == TELEPORT_CYCLES
        assert stats.teleport_epochs == 1

    def test_idempotent(self):
        dag = DependenceDAG([Operation("T", (Q[0],)) for _ in range(4)])
        sched = schedule_rcp(dag, k=2)
        first = derive_movement(sched, MultiSIMD(k=2))
        second = derive_movement(sched, MultiSIMD(k=2))
        assert first.runtime == second.runtime
        assert sched.total_moves == second.teleports + second.local_moves

    def test_moves_attached_to_timesteps(self):
        dag = DependenceDAG([Operation("H", (Q[0],))])
        sched = manual_schedule(dag, [[[0], []]])
        derive_movement(sched, MultiSIMD(k=2))
        assert len(sched.timesteps[0].moves) == 1

    def test_epr_accounting_populated(self):
        dag = DependenceDAG(
            [Operation("CNOT", (Q[0], Q[1]))]
        )
        sched = manual_schedule(dag, [[[0], []]])
        stats = derive_movement(sched, MultiSIMD(k=2))
        assert stats.epr.total_pairs == 2
        assert stats.epr.pair_counts[("global", "region0")] == 2


class TestNaiveModel:
    def test_naive_factor(self):
        assert naive_runtime(100) == 5 * 100
        assert NAIVE_FACTOR == 5

    def test_comm_aware_never_worse_than_naive_sequential(self):
        """Property: for a sequential schedule, runtime <= naive model
        (at worst every timestep pays an epoch, equaling naive)."""
        dag = DependenceDAG(
            [
                Operation("CNOT", (Q[0], Q[1])),
                Operation("CNOT", (Q[1], Q[2])),
                Operation("CNOT", (Q[2], Q[3])),
                Operation("H", (Q[0],)),
            ]
        )
        sched = schedule_sequential(dag)
        stats = derive_movement(sched, MultiSIMD(k=1))
        assert stats.runtime <= naive_runtime(dag.n)
