"""Tests for the PassManager pipeline."""

import pytest

from repro.core.builder import ProgramBuilder
from repro.core.module import Program
from repro.passes.decompose import decompose_program
from repro.passes.flatten import flatten_program
from repro.passes.manager import PassManager
from repro.passes.optimize import optimize_program


def small_program():
    pb = ProgramBuilder()
    sub = pb.module("sub")
    p = sub.param_register("p", 1)
    sub.h(p[0]).h(p[0]).t(p[0])
    main = pb.module("main")
    q = main.register("q", 3)
    main.toffoli(q[0], q[1], q[2])
    main.call("sub", [q[0]])
    return pb.build("main")


class TestPassManager:
    def test_runs_in_order(self):
        order = []

        def mk(name):
            def run(prog):
                order.append(name)
                return prog
            return run

        pm = PassManager().add("a", mk("a")).add("b", mk("b"))
        pm.run(small_program())
        assert order == ["a", "b"]
        assert len(pm) == 2

    def test_standard_pipeline(self):
        pm = (
            PassManager()
            .add("optimize", lambda p: optimize_program(p)[0])
            .add("decompose", decompose_program)
            .add("flatten", lambda p: flatten_program(p, 10 ** 6).program)
        )
        out = pm.run(small_program())
        assert isinstance(out, Program)
        assert out.entry_module.is_leaf  # fully flattened
        # The H/H pair in sub cancelled before decomposition.
        assert "T" in {op.gate for op in out.entry_module.operations()}

    def test_timings_recorded(self):
        pm = PassManager().add("decompose", decompose_program)
        pm.run(small_program())
        assert set(pm.timings) == {"decompose"}
        assert pm.timings["decompose"] >= 0.0

    def test_validation_after_each_pass(self):
        def corrupt(prog):
            # Return a program whose validation fails by dropping a
            # callee module.
            mods = [m for m in prog if m.name != "sub"]
            # Bypass Program.__init__ validation by building a shell
            # object via __new__ — the manager's own validate() must
            # catch it.
            broken = Program.__new__(Program)
            broken.modules = {m.name: m for m in mods}
            broken.entry = prog.entry
            return broken

        pm = PassManager().add("corrupt", corrupt)
        with pytest.raises(Exception):
            pm.run(small_program())

    def test_empty_manager_is_identity(self):
        prog = small_program()
        assert PassManager().run(prog) is prog
