"""The paper's Figure 4 walkthrough: why module flattening matters.

Two dependent Toffoli gates are compiled twice — once with each
Toffoli kept as a blackbox module (coarse scheduling serializes them),
once flattened into a single leaf (fine-grained scheduling overlaps
their decomposed networks).

Run:  python examples/toffoli_flattening.py
"""

from repro import (
    MultiSIMD,
    ProgramBuilder,
    SchedulerConfig,
    compile_and_schedule,
)


def build_program():
    pb = ProgramBuilder()
    tof = pb.module("toffoli_box")
    p = tof.param_register("p", 3)
    tof.toffoli(p[0], p[1], p[2])

    main = pb.module("main")
    q = main.register("q", 5)
    # Both Toffolis share control q[0] => a data dependency.
    main.call("toffoli_box", [q[0], q[1], q[2]])
    main.call("toffoli_box", [q[0], q[3], q[4]])
    return pb.build("main")


def main() -> None:
    machine = MultiSIMD(k=2)
    print("Figure 4 — two dependent Toffolis on Multi-SIMD(2, inf)\n")
    print(f"{'scheduler':<10} {'modularity':<11} {'cycles':>6}")
    for alg in ("rcp", "lpfs"):
        for label, fth in (("modular", 0), ("flattened", 2 ** 62)):
            result = compile_and_schedule(
                build_program(),
                machine,
                SchedulerConfig(alg),
                fth=fth,
            )
            print(f"{alg:<10} {label:<11} {result.schedule_length:>6}")
    print(
        "\nThe paper reports 24 cycles modular vs 21 flattened: keeping"
        "\nthe Toffolis as blackboxes hides the parallelism between"
        "\ntheir decomposed Clifford+T networks. The same gap appears"
        "\nhere (exact cycle counts differ with scheduler packing)."
    )

    # Show the overlapped region of the flattened schedule.
    result = compile_and_schedule(
        build_program(), machine, SchedulerConfig("lpfs"), fth=2 ** 62
    )
    sched = result.schedules["main"]
    print(f"\nflattened LPFS schedule ({sched.length} cycles):")
    for t, ts in enumerate(sched.timesteps):
        cells = []
        for r, nodes in enumerate(ts.regions):
            ops = " ".join(
                f"{sched.operation(n).gate}"
                f"({','.join(q.register + str(q.index) for q in sched.operation(n).qubits)})"
                for n in nodes
            )
            cells.append(ops.ljust(26))
        print(f"  {t + 1:>2}  " + " | ".join(cells))


if __name__ == "__main__":
    main()
