"""Quickstart: build a small hierarchical quantum program, compile it
for a Multi-SIMD machine, and inspect the schedule.

Run:  python examples/quickstart.py
"""

from repro import (
    MultiSIMD,
    ProgramBuilder,
    SchedulerConfig,
    compile_and_schedule,
)


def main() -> None:
    # --- 1. Write a program in the Scaffold-style builder DSL ----------
    pb = ProgramBuilder()

    # A subroutine: entangle a pair and phase it.
    bell = pb.module("bell_phase")
    p = bell.param_register("p", 2)
    bell.h(p[0]).cnot(p[0], p[1]).t(p[1])

    # The entry module: two Toffolis sharing a control (the paper's
    # Figure 4 kernel), then the subroutine, iterated.
    main_mod = pb.module("main")
    q = main_mod.register("q", 5)
    main_mod.toffoli(q[0], q[1], q[2])
    main_mod.toffoli(q[0], q[3], q[4])
    main_mod.call("bell_phase", [q[1], q[3]], iterations=10)
    for qb in q:
        main_mod.meas_z(qb)

    program = pb.build("main")

    # --- 2. Compile for a Multi-SIMD(k=2, d=inf) machine ----------------
    machine = MultiSIMD(k=2, local_memory=8)
    result = compile_and_schedule(
        program, machine, SchedulerConfig("lpfs")
    )

    # --- 3. Inspect ------------------------------------------------------
    print(f"machine:            {machine}")
    print(f"total gates:        {result.total_gates}")
    print(f"critical path:      {result.critical_path} cycles")
    print(f"schedule length:    {result.schedule_length} cycles")
    print(f"comm-aware runtime: {result.runtime} cycles")
    print(f"naive runtime:      {result.naive_runtime} cycles")
    print(f"parallel speedup:   {result.parallel_speedup:.2f}x")
    print(f"comm-aware speedup: {result.comm_aware_speedup:.2f}x")

    # The entry module's fine-grained schedule, timestep by timestep.
    sched = result.schedules[result.program.entry]
    print(f"\nfirst 8 timesteps of '{result.program.entry}' "
          f"({sched.algorithm}, k={sched.k}):")
    for t, ts in enumerate(sched.timesteps[:8]):
        regions = [
            f"r{r}:[" + " ".join(
                sched.operation(n).gate for n in nodes
            ) + "]"
            for r, nodes in enumerate(ts.regions)
            if nodes
        ]
        moves = f" +{len(ts.moves)} moves" if ts.moves else ""
        print(f"  t={t:<3d} {' '.join(regions)}{moves}")


if __name__ == "__main__":
    main()
