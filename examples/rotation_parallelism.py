"""The paper's Table 2 effect: parallel rotations serialize once
decomposed to primitive gates.

Eight Rz rotations on distinct qubits are logically one SIMD timestep;
after Clifford+T synthesis each becomes a distinct ~100-gate serial
string, and the strings compete for SIMD regions.

Run:  python examples/rotation_parallelism.py
"""

from repro import (
    MultiSIMD,
    ProgramBuilder,
    RotationSynthesizer,
    SchedulerConfig,
    compile_and_schedule,
)

N = 8


def build_program():
    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", N)
    for i in range(N):
        main.rz(q[i], 0.1 + 0.05 * i)
    return pb.build("main")


def main() -> None:
    synth = RotationSynthesizer()
    print("Rz(0.10) Clifford+T prefix:",
          " ".join(synth.rz_sequence(0.10)[:12]), "...")
    print("Rz(0.15) Clifford+T prefix:",
          " ".join(synth.rz_sequence(0.15)[:12]), "...")
    print(f"(each string is {synth.approx_length} gates long)\n")

    print(f"schedule length of {N} parallel rotations:\n")
    print(f"{'k':>4} {'logical Rz':>11} {'decomposed':>11}")
    for k in (1, 2, 4, 8):
        lengths = {}
        for decompose in (False, True):
            result = compile_and_schedule(
                build_program(),
                MultiSIMD(k=k),
                SchedulerConfig("rcp"),
                decompose=decompose,
            )
            lengths[decompose] = result.schedule_length
        print(f"{k:>4} {lengths[False]:>11} {lengths[True]:>11}")
    print(
        "\nLogically the rotations fuse into one SIMD Rz batch; their"
        "\nClifford+T approximations are distinct serial threads, so"
        "\nthroughput scales only with the number of SIMD regions —"
        "\nthe effect behind Shor's k-sensitivity (paper Fig. 9)."
    )


if __name__ == "__main__":
    main()
