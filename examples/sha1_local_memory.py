"""SHA-1 and local scratchpad memories (the paper's Figure 8 headline).

The SHA-1 preimage oracle is pure CTQG arithmetic: ripple-carry adder
chains that cycle through a sliding window of qubits. Without local
memories, every qubit that idles for one timestep inside an active
region pays a 4-cycle teleport to global memory and back; scratchpads
turn those round trips into 1-cycle ballistic moves. SHA-1 shows the
paper's largest local-memory speedup (9.82x overall).

Run:  python examples/sha1_local_memory.py
"""

import math

from repro import MultiSIMD, SchedulerConfig, compile_and_schedule
from repro.benchmarks import build_sha1
from repro.passes import minimum_qubits


def main() -> None:
    prog = build_sha1(n=32, word_bits=8, rounds=8,
                      grover_iterations=2 ** 16)
    q = minimum_qubits(prog)
    print(f"SHA-1 reproduction instance: Q = {q} qubits "
          f"(paper n=448: Q = 472,746)\n")

    print(f"{'scheduler':<10} {'capacity':>9} {'runtime':>15} "
          f"{'speedup':>8} {'teleports/leaf':>15}")
    for alg in ("rcp", "lpfs"):
        for cap, label in (
            (None, "none"), (q / 4, "Q/4"), (q / 2, "Q/2"),
            (math.inf, "inf"),
        ):
            result = compile_and_schedule(
                prog,
                MultiSIMD(k=4, local_memory=cap),
                SchedulerConfig(alg),
                fth=16384,
            )
            # Communication profile of the biggest leaf module.
            biggest = max(
                (p for p in result.profiles.values() if p.is_leaf),
                key=lambda p: max(p.comm[w].teleports for w in p.comm),
            )
            teleports = biggest.comm[max(biggest.comm)].teleports
            print(
                f"{alg:<10} {label:>9} {result.runtime:>15,} "
                f"{result.comm_aware_speedup:>7.2f}x {teleports:>15,}"
            )
    print(
        "\nScratchpads soak up the adder chains' one-cycle evictions;"
        "\nspeedup roughly doubles from no local memory to infinite,"
        "\nmirroring the paper's SHA-1 result."
    )


if __name__ == "__main__":
    main()
