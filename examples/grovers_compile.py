"""Compile Grover's search end-to-end and explore the machine space.

Shows the full toolflow on a real benchmark: resource estimation at
paper scale (never unrolled), then scheduling a reduced instance across
schedulers, region counts, and scratchpad capacities.

Run:  python examples/grovers_compile.py
"""

import math

from repro import (
    MultiSIMD,
    SchedulerConfig,
    compile_and_schedule,
    estimate_resources,
    minimum_qubits,
)
from repro.benchmarks import build_grovers, grover_iteration_count


def main() -> None:
    # --- paper-scale resource estimation (hierarchical, instant) -------
    big = build_grovers(n=30)
    est = estimate_resources(big)
    print("Grover's n=30 (paper-scale estimate, never unrolled):")
    print(f"  Grover iterations: {grover_iteration_count(30):,}")
    print(f"  total gates:       {est.total_gates:,}")
    print(f"  modules:           {len(est.module_totals)}")

    # --- reduced instance for actual scheduling --------------------------
    prog = build_grovers(n=8, iterations=12)
    q = minimum_qubits(prog)
    print(f"\nGrover's n=8 (reproduction instance), Q = {q} qubits")

    print(f"\n{'scheduler':<10} {'k':>3} {'local mem':>10} "
          f"{'runtime':>9} {'speedup':>8}")
    for alg in ("rcp", "lpfs"):
        for k in (2, 4):
            for cap, label in ((None, "none"), (q / 2, "Q/2"),
                               (math.inf, "inf")):
                result = compile_and_schedule(
                    prog,
                    MultiSIMD(k=k, local_memory=cap),
                    SchedulerConfig(alg),
                    fth=2048,
                )
                print(
                    f"{alg:<10} {k:>3} {label:>10} "
                    f"{result.runtime:>9,} "
                    f"{result.comm_aware_speedup:>7.2f}x"
                )
    print(
        "\nGrover's is mostly serial (critical-path speedup ~1.6x), so"
        "\nparallelism buys little — but scratchpads remove the eviction"
        "\nteleports of its Toffoli-cascade oracles."
    )


if __name__ == "__main__":
    main()
