"""EPR-pair logistics: generation rate, buffering, and distributed
global memory.

Teleportation's constant latency relies on EPR pairs being
pre-distributed (paper Section 2.3). This example plans that
pre-distribution for a real benchmark schedule: how fast must the
global memory mint pairs, how much buffering do the endpoints need,
and how much does splitting the memory into banks (the paper's
future-work NUMA direction) relieve channel pressure?

Run:  python examples/epr_bandwidth.py
"""

import math

from repro import MultiSIMD, NUMAConfig, numa_runtime, plan_epr_distribution
from repro.benchmarks import build_grovers
from repro.core.dag import DependenceDAG
from repro.passes import decompose_program, flatten_program
from repro.sched import derive_movement, schedule_lpfs, schedule_rcp
from repro.sched.report import render_coarse_gantt  # noqa: F401  (API tour)


def main() -> None:
    # Compile one leaf of Grover's and derive its movement.
    prog = flatten_program(
        decompose_program(build_grovers(n=8, iterations=12)), fth=2048
    ).program
    leaf = max(prog.leaf_modules(), key=lambda m: m.direct_gate_count)
    sched = schedule_lpfs(DependenceDAG(list(leaf.body)), k=4)
    stats = derive_movement(sched, MultiSIMD(k=4))
    print(f"leaf {leaf.name!r}: {sched.length} cycles, "
          f"{stats.teleports} teleports over "
          f"{stats.teleport_epochs} epochs\n")

    # --- generation-rate sweep ----------------------------------------
    ideal = plan_epr_distribution(sched)
    print(f"pairs consumed:      {ideal.total_pairs}")
    print(f"pre-staged pairs:    {ideal.prestage_pairs}")
    print(f"min masking rate:    {ideal.min_masking_rate:.3f} pairs/cycle\n")
    print(f"{'rate':>8} {'stalls':>8} {'runtime':>9} {'buffer':>8}")
    for rate in (0.1, 0.25, 0.5, 1.0, math.inf):
        plan = plan_epr_distribution(sched, rate=rate)
        label = "inf" if math.isinf(rate) else f"{rate:g}"
        print(f"{label:>8} {plan.stall_cycles:>8} {plan.runtime:>9} "
              f"{plan.peak_buffer:>8}")

    # --- distributed global memory --------------------------------------
    # On LPFS output this leaf's traffic concentrates in one or two
    # regions, so splitting the memory buys little and the distance
    # derating can even cost rounds — NUMA pays off when traffic is
    # spread. Demonstrate both cases.
    print(f"\ndistributed memory (leaf {leaf.name!r}, bank egress = "
          f"2 pairs/round):")
    print(f"{'banks':>6} {'rounds':>7} {'runtime':>9} {'peak load':>10}")
    for banks in (1, 2, 4):
        numa = numa_runtime(
            sched, NUMAConfig(banks=banks, bank_egress=2.0)
        )
        print(f"{banks:>6} {numa.teleport_rounds:>7} "
              f"{numa.runtime:>9} {numa.peak_channel_load:>10g}")

    # Synthetic spread-traffic workload: independent CNOT groups churn
    # across all four regions.
    from repro.core.operation import Operation
    from repro.core.qubits import Qubit

    qs = [Qubit("w", i) for i in range(8)]
    churn = []
    for i in range(4):
        churn.append(
            Operation("CNOT", (qs[2 * (i % 2)], qs[2 * (i % 2) + 1]))
        )
        churn.append(Operation("H", (qs[4 + i % 4],)))
    # RCP spreads these groups across regions; LPFS would re-pin them.
    spread = schedule_rcp(DependenceDAG(churn), k=4)
    derive_movement(spread, MultiSIMD(k=4))
    print("\ndistributed memory, spread traffic (synthetic churn, "
          "bank egress = 2 pairs/round):")
    print(f"{'banks':>6} {'rounds':>7} {'runtime':>9} {'peak load':>10}")
    for banks in (1, 2, 4):
        numa = numa_runtime(
            spread, NUMAConfig(banks=banks, bank_egress=2.0)
        )
        print(f"{banks:>6} {numa.teleport_rounds:>7} "
              f"{numa.runtime:>9} {numa.peak_channel_load:>10g}")
    print(
        "\nA single global memory is a single EPR generation site: its"
        "\negress serialises heavy epochs, and banks multiply the"
        "\naggregate generation bandwidth — the payoff the paper"
        "\nanticipates from its future-work NUMA design. Note the"
        "\ninteraction with LPFS: by pinning chains, LPFS concentrates"
        "\ntraffic so well that the centralized memory stays"
        "\ncompetitive (first table); NUMA pays on spread traffic."
    )


if __name__ == "__main__":
    main()
