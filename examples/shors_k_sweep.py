"""Shor's sensitivity to SIMD region count (the paper's Figure 9).

Shor's is saturated with arbitrary-angle rotations; decomposed, each is
a long serial Clifford+T blackbox, and Draper-adder banks put many of
them on distinct qubits at once. More SIMD regions keep soaking up
those independent serial threads long after other benchmarks saturate.

Run:  python examples/shors_k_sweep.py  [n]
"""

import math
import sys

from repro import MultiSIMD, SchedulerConfig, compile_and_schedule
from repro.benchmarks import build_shors


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    prog = build_shors(n=n)
    print(f"Shor's n={n}: {len(prog.modules)} modules "
          f"({sum(1 for m in prog if m.name.startswith('phase_rot'))} "
          f"distinct rotation blackboxes)\n")
    print(f"{'k':>4} {'comm-aware speedup':>19}")
    prev = None
    for k in (2, 4, 8, 16, 32):
        result = compile_and_schedule(
            prog,
            MultiSIMD(k=k, local_memory=math.inf),
            SchedulerConfig("lpfs"),
            fth=64,  # keep rotation modules as blackboxes (Sec 5.4)
        )
        arrow = ""
        if prev is not None:
            arrow = f"  (+{100 * (result.comm_aware_speedup / prev - 1):.0f}%)"
        print(f"{k:>4} {result.comm_aware_speedup:>18.2f}x{arrow}")
        prev = result.comm_aware_speedup
    print(
        "\nSpeedup keeps growing with k until regions outnumber the"
        "\nconcurrent rotation blackboxes (at n=512 the paper sees"
        "\ngrowth through k=128)."
    )


if __name__ == "__main__":
    main()
