"""Compile a program written in the Scaffold dialect.

The paper's input language is Scaffold, a C-like quantum language; this
example writes Shor's-style period finding directly in our Scaffold
dialect, parses it, and runs the full toolflow — source text to
Multi-SIMD schedule.

Run:  python examples/scaffold_frontend.py
"""

from repro import (
    MultiSIMD,
    SchedulerConfig,
    compile_and_schedule,
    parse_scaffold,
)

SOURCE = """
// A toy period-finding kernel in the Scaffold dialect.
module phase_kick ( qbit c, qbit t ) {
    CRz(c, t, pi / 4);
}

module controlled_step ( qbit c, qreg tgt[4] ) {
    for i in 0 .. 3 {
        phase_kick(c, tgt[i]);
    }
    CNOT(tgt[0], tgt[1]);
    CNOT(tgt[2], tgt[3]);
}

module main ( ) {
    qreg ctl[4];
    qreg tgt[4];
    for i in 0 .. 3 { H(ctl[i]); }
    X(tgt[0]);
    for i in 0 .. 3 {
        repeat 8 { controlled_step(ctl[i], tgt[0], tgt[1], tgt[2], tgt[3]); }
    }
    for i in 0 .. 3 { MeasZ(ctl[i]); }
}
"""


def main() -> None:
    program = parse_scaffold(SOURCE)
    print(f"parsed {len(program.modules)} modules; "
          f"entry = {program.entry!r}")
    for alg in ("rcp", "lpfs"):
        result = compile_and_schedule(
            program,
            MultiSIMD(k=4, local_memory=8),
            SchedulerConfig(alg),
            fth=4096,
        )
        print(
            f"{alg:4s}: {result.total_gates:,} gates -> "
            f"{result.schedule_length:,} cycles "
            f"(runtime {result.runtime:,}, "
            f"speedup {result.comm_aware_speedup:.2f}x vs naive)"
        )


if __name__ == "__main__":
    main()
