"""Compile a program written in the Scaffold dialect.

The paper's input language is Scaffold, a C-like quantum language; this
example reads Shor's-style period finding written in our Scaffold
dialect (``period_finding.scd``), parses it, and runs the full toolflow
— source text to Multi-SIMD schedule. The same file can be linted from
the command line::

    python -m repro lint examples/period_finding.scd

Run:  python examples/scaffold_frontend.py
"""

from pathlib import Path

from repro import (
    MultiSIMD,
    SchedulerConfig,
    compile_and_schedule,
    parse_scaffold,
)

SOURCE_PATH = Path(__file__).with_name("period_finding.scd")


def main() -> None:
    source = SOURCE_PATH.read_text()
    program = parse_scaffold(source, filename=SOURCE_PATH.name)
    print(f"parsed {len(program.modules)} modules; "
          f"entry = {program.entry!r}")
    for alg in ("rcp", "lpfs"):
        result = compile_and_schedule(
            program,
            MultiSIMD(k=4, local_memory=8),
            SchedulerConfig(alg),
            fth=4096,
            strict=True,
        )
        print(
            f"{alg:4s}: {result.total_gates:,} gates -> "
            f"{result.schedule_length:,} cycles "
            f"(runtime {result.runtime:,}, "
            f"speedup {result.comm_aware_speedup:.2f}x vs naive)"
        )


if __name__ == "__main__":
    main()
