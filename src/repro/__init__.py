"""repro: reproduction of "Compiler Management of Communication and
Parallelism for Quantum Computation" (ASPLOS 2015).

The package implements the paper's Multi-SIMD(k,d) architectural model,
the ScaffCC-style compilation toolflow (decomposition, CTQG reversible
arithmetic, threshold flattening, resource estimation), the RCP and LPFS
fine-grained schedulers, hierarchical coarse-grained scheduling with
flexible blackbox dimensions, communication derivation with teleport /
local-memory cost accounting, the paper's eight benchmarks, and a small
statevector simulator used to verify the substrates.

Quickstart::

    from repro import (
        ProgramBuilder, MultiSIMD, compile_and_schedule, SchedulerConfig,
    )

    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", 5)
    main.toffoli(q[0], q[1], q[2]).toffoli(q[0], q[3], q[4])
    result = compile_and_schedule(
        pb.build("main"), MultiSIMD(k=2), SchedulerConfig("lpfs"),
    )
    print(result.schedule_length, result.parallel_speedup)
"""

from .analysis import (
    AnalysisError,
    Diagnostic,
    DiagnosticSet,
    Severity,
    analyze_program,
    audit_replay,
    audit_schedule,
    lint_qasm_source,
    lint_scaffold_source,
    registered_rules,
)
from .arch import (
    EPRAccounting,
    EPRPlan,
    NUMAConfig,
    NUMAStats,
    numa_runtime,
    plan_epr_distribution,
    GATE_CYCLES,
    LOCAL_MOVE_CYCLES,
    MemoryMap,
    MultiSIMD,
    NAIVE_FACTOR,
    Scratchpad,
    TELEPORT_CYCLES,
    teleportation_ops,
)
from .core import (
    AncillaAllocator,
    emit_qasm,
    parse_qasm,
    parse_scaffold,
    CallSite,
    DependenceDAG,
    Module,
    ModuleBuilder,
    Operation,
    Program,
    ProgramBuilder,
    ProgramValidationError,
    Qubit,
    QubitRegister,
)
from .passes import (
    DecomposeConfig,
    PassManager,
    RotationSynthesizer,
    decompose_program,
    estimate_resources,
    flatten_program,
    gate_count_histogram,
    minimum_qubits,
    total_gate_counts,
)
from .sched import (
    CommStats,
    render_timeline,
    replay_schedule,
    Schedule,
    comm_speedup,
    derive_movement,
    hierarchical_critical_path,
    naive_runtime,
    parallel_speedup,
    coarse_length_profile,
    schedule_coarse,
    schedule_lpfs,
    schedule_rcp,
    schedule_sequential,
)
from .fastpath import fast_path_enabled, reference_pipeline, set_fast_path
from .instrument import SpanRecorder, record_spans, span
from .service import (
    CompileService,
    JobSpec,
    SweepGrid,
    fingerprint_program,
    fingerprint_request,
    run_sweep,
)
from .toolflow import (
    CompileResult,
    ModuleProfile,
    SchedulerConfig,
    compile_and_schedule,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AncillaAllocator",
    "CallSite",
    "CommStats",
    "CompileResult",
    "CompileService",
    "DecomposeConfig",
    "DependenceDAG",
    "Diagnostic",
    "DiagnosticSet",
    "EPRAccounting",
    "EPRPlan",
    "GATE_CYCLES",
    "JobSpec",
    "LOCAL_MOVE_CYCLES",
    "MemoryMap",
    "Module",
    "ModuleBuilder",
    "ModuleProfile",
    "MultiSIMD",
    "NAIVE_FACTOR",
    "NUMAConfig",
    "NUMAStats",
    "Operation",
    "PassManager",
    "Program",
    "ProgramBuilder",
    "ProgramValidationError",
    "Qubit",
    "QubitRegister",
    "RotationSynthesizer",
    "Schedule",
    "SchedulerConfig",
    "Scratchpad",
    "Severity",
    "SpanRecorder",
    "SweepGrid",
    "TELEPORT_CYCLES",
    "analyze_program",
    "audit_replay",
    "audit_schedule",
    "comm_speedup",
    "emit_qasm",
    "numa_runtime",
    "parse_qasm",
    "parse_scaffold",
    "plan_epr_distribution",
    "render_timeline",
    "replay_schedule",
    "compile_and_schedule",
    "decompose_program",
    "derive_movement",
    "estimate_resources",
    "fingerprint_program",
    "fingerprint_request",
    "flatten_program",
    "gate_count_histogram",
    "hierarchical_critical_path",
    "lint_qasm_source",
    "lint_scaffold_source",
    "minimum_qubits",
    "registered_rules",
    "naive_runtime",
    "parallel_speedup",
    "fast_path_enabled",
    "record_spans",
    "reference_pipeline",
    "set_fast_path",
    "run_sweep",
    "coarse_length_profile",
    "schedule_coarse",
    "schedule_lpfs",
    "schedule_rcp",
    "schedule_sequential",
    "span",
    "teleportation_ops",
    "total_gate_counts",
    "__version__",
]
