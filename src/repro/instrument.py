"""Lightweight span instrumentation for the compilation pipeline.

The service layer (:mod:`repro.service`) wants per-stage wall-clock
breakdowns — how long decomposition, flattening, each scheduler and the
communication refinement took for one compile — without the pipeline
code knowing anything about benchmarking. This module provides that as
*spans*: named timed sections recorded against whichever
:class:`SpanRecorder` instances are active on the current stack.

Design constraints:

* **near-zero cost when idle** — ``span()`` checks a module-level list
  and yields immediately when no recorder is active, so ordinary
  library use pays one ``if`` per instrumented call;
* **no global state leaks** — recorders are scoped with
  :func:`record_spans`; nesting is allowed and every active recorder
  sees every span (spans may overlap: ``toolflow:schedule`` contains
  the per-algorithm ``schedule:*`` spans it triggers);
* **no dependencies** — this is a leaf module importable from anywhere
  in the package (schedulers, passes, the comm refiner) without import
  cycles.

Span name prefixes in use: ``pass:*`` (decompose/flatten/optimize),
``schedule:*`` (per-algorithm fine scheduling), ``comm:*`` (movement
derivation), ``toolflow:*`` (whole-stage wrappers), ``service:*``
(cache lookups), and ``analysis:*`` (the deep static battery —
``analysis:lifetime`` and ``analysis:resource`` fixpoint solves plus
``analysis:deep-rules`` emission).

Usage::

    with record_spans() as rec:
        compile_and_schedule(program, machine)
    print(rec.to_dict())   # {"pass:decompose": {"calls": 1, ...}, ...}
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, TypeVar

__all__ = [
    "SpanStat",
    "SpanRecorder",
    "span",
    "spanned",
    "record_spans",
    "add_span_listener",
    "remove_span_listener",
    "subscribe_spans",
]

F = TypeVar("F", bound=Callable)

#: Active recorders, innermost last. Module-level (not thread-local):
#: the pipeline is single-threaded within a process, and sweep workers
#: are separate *processes* with their own copy of this list.
_ACTIVE: List["SpanRecorder"] = []

#: Live span listeners: callables invoked as ``fn(name, seconds)`` the
#: moment a span closes. Unlike recorders (which aggregate), listeners
#: see individual span completions in order — the server's worker
#: processes use this to stream ``pass:*``/``schedule:*`` progress to
#: watching clients while a compile is still running.
_LISTENERS: List[Callable[[str, float], None]] = []


@dataclass
class SpanStat:
    """Aggregated statistics for one span name."""

    calls: int = 0
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "seconds": self.seconds}


class SpanRecorder:
    """Accumulates span timings by name while active.

    Attributes:
        spans: mapping of span name -> :class:`SpanStat`, in
            first-recorded order.
    """

    def __init__(self) -> None:
        self.spans: Dict[str, SpanStat] = {}

    def add(self, name: str, seconds: float) -> None:
        stat = self.spans.get(name)
        if stat is None:
            stat = self.spans[name] = SpanStat()
        stat.calls += 1
        stat.seconds += seconds

    def total(self, prefix: str = "") -> float:
        """Summed seconds over spans whose name starts with ``prefix``.

        Note that spans nest (a ``toolflow:*`` span contains the
        ``schedule:*`` and ``comm:*`` spans it triggers), so totals over
        mixed prefixes double-count by design.
        """
        return sum(
            s.seconds
            for name, s in self.spans.items()
            if name.startswith(prefix)
        )

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe ``{name: {"calls": n, "seconds": s}}`` mapping."""
        return {name: stat.to_dict() for name, stat in self.spans.items()}

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanRecorder({len(self.spans)} spans)"


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time a section against every active recorder.

    A no-op (single list check) when no :func:`record_spans` scope or
    span listener is active.
    """
    if not _ACTIVE and not _LISTENERS:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        for rec in _ACTIVE:
            rec.add(name, elapsed)
        for fn in list(_LISTENERS):
            try:
                fn(name, elapsed)
            except Exception:  # noqa: BLE001
                # A broken listener (e.g. a progress pipe that went
                # away) must never take down the compile it observes.
                pass


def spanned(name: str) -> Callable[[F], F]:
    """Decorator form of :func:`span` for whole functions."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def add_span_listener(fn: Callable[[str, float], None]) -> None:
    """Register ``fn(name, seconds)`` to fire as each span closes."""
    _LISTENERS.append(fn)


def remove_span_listener(fn: Callable[[str, float], None]) -> None:
    """Unregister a listener (no-op when not registered)."""
    try:
        _LISTENERS.remove(fn)
    except ValueError:
        pass


@contextmanager
def subscribe_spans(
    fn: Callable[[str, float], None],
) -> Iterator[None]:
    """Scope a span listener to the enclosed block."""
    add_span_listener(fn)
    try:
        yield
    finally:
        remove_span_listener(fn)


@contextmanager
def record_spans() -> Iterator[SpanRecorder]:
    """Activate a fresh :class:`SpanRecorder` for the enclosed block."""
    rec = SpanRecorder()
    _ACTIVE.append(rec)
    try:
        yield rec
    finally:
        _ACTIVE.remove(rec)
