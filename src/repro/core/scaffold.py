"""A front-end for a Scaffold-like surface language.

The paper's benchmarks are written in Scaffold, "a C-like programming
language for quantum computing" with qubit/cbit datatypes, built-in
gates, modules, and classically-bounded control flow (Section 3.1).
This module implements a compact dialect of it, sufficient to express
the hierarchical programs the toolflow schedules::

    module bell ( qbit a, qbit b ) {
        H(a);
        CNOT(a, b);
    }

    module main ( ) {
        qreg q[4];
        bell(q[0], q[1]);
        for i in 0 .. 2 {
            bell(q[i], q[i + 1]);
        }
        repeat 1000 { bell(q[0], q[1]); }
        MeasZ(q[0]);
    }

Supported constructs:

* ``module NAME ( params ) { ... }`` with ``qbit x`` / ``qreg r[N]``
  parameters; the entry module is ``main``;
* local declarations ``qbit x;`` / ``qreg r[N];``;
* built-in gates (the vocabulary of :mod:`repro.core.gates`), with a
  trailing numeric argument for rotations: ``Rz(q, 0.5)``. Constant
  angle expressions may use ``pi``: ``Rz(q, pi / 4)``;
* module calls ``name(q0, q1, ...)``;
* counted loops ``for VAR in LO .. HI { ... }`` (inclusive bounds,
  unrolled; the loop variable may appear in index arithmetic) and
  ``repeat N { ... }`` which, for call-only bodies, lowers to the
  compact iterated-call encoding instead of unrolling (Section 3.1's
  never-unroll strategy for 10^12-gate programs).

The front-end produces the same validated :class:`~repro.core.module.
Program` the builder DSL does, with every statement and module carrying
a :class:`~repro.core.source.SourceLocation` (line and column) so the
static analyzer can anchor diagnostics to the source text. Errors are
reported as :class:`ScaffoldSyntaxError` with the offending line and
column; non-fatal findings (degenerate or near-limit loop bounds) are
reported as :class:`ScaffoldWarning` objects through the optional
``warnings`` sink of :func:`parse_scaffold`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from .gates import GATES, gate_spec
from .module import Module, Program
from .operation import CallSite, Operation, Statement
from .qubits import Qubit
from .source import SourceLocation

__all__ = ["parse_scaffold", "ScaffoldSyntaxError", "ScaffoldWarning"]

_MAX_UNROLL = 100_000

#: Unrolled trip counts above this are legal but draw a lint warning.
_WARN_UNROLL = 10_000


class ScaffoldSyntaxError(ValueError):
    """Raised on malformed Scaffold source.

    Attributes:
        line: 1-based line of the offending token.
        column: 1-based column of the offending token (0 if unknown).
        code: stable diagnostic code this error maps to when surfaced
            through the :mod:`repro.analysis` linter (``QL101`` for
            syntax errors, ``QL103`` for call-resolution errors).
    """

    def __init__(
        self,
        line: int,
        message: str,
        column: int = 0,
        code: str = "QL101",
    ):
        where = f"line {line}"
        if column:
            where += f", col {column}"
        super().__init__(f"{where}: {message}")
        self.line = line
        self.column = column
        self.code = code
        self.bare_message = message

    @property
    def location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)


@dataclass(frozen=True)
class ScaffoldWarning:
    """A non-fatal front-end finding (loop-bound sanity, Section 3.1).

    Attributes:
        kind: machine-readable category (``degenerate-loop``,
            ``degenerate-repeat``, ``large-unroll``).
        message: human-readable description.
        loc: source position of the construct.
    """

    kind: str
    message: str
    loc: SourceLocation


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>\d+\.\d+(?:[eE][-+]?\d+)?|\.\d+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<symbol>\.\.|[()\[\]{},;+\-*/])
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE | re.DOTALL,
)


class _Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind: str, text: str, line: int, col: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}:{self.text!r}@{self.line}:{self.col}"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    line_start = 0  # offset of the first character of the current line
    for m in _TOKEN_RE.finditer(source):
        kind = m.lastgroup
        text = m.group()
        col = m.start() - line_start + 1
        if kind == "bad":
            raise ScaffoldSyntaxError(
                line, f"unexpected character {text!r}", col
            )
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = m.start() + text.rfind("\n") + 1
    tokens.append(_Token("eof", "", line, len(source) - line_start + 1))
    return tokens


class _Parser:
    def __init__(
        self,
        tokens: List[_Token],
        filename: Optional[str] = None,
        warnings: Optional[List[ScaffoldWarning]] = None,
    ):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename
        self.warnings = warnings

    # -- token helpers -----------------------------------------------------

    @property
    def cur(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.cur
        self.pos += 1
        return tok

    def loc(self, tok: _Token) -> SourceLocation:
        return SourceLocation(tok.line, tok.col, self.filename)

    def err(
        self, tok: _Token, message: str, code: str = "QL101"
    ) -> ScaffoldSyntaxError:
        return ScaffoldSyntaxError(tok.line, message, tok.col, code)

    def warn(self, tok: _Token, kind: str, message: str) -> None:
        if self.warnings is not None:
            self.warnings.append(
                ScaffoldWarning(kind, message, self.loc(tok))
            )

    def expect(self, text: str) -> _Token:
        if self.cur.text != text:
            raise self.err(
                self.cur,
                f"expected {text!r}, found {self.cur.text or 'EOF'!r}",
            )
        return self.advance()

    def expect_name(self) -> _Token:
        if self.cur.kind != "name":
            raise self.err(
                self.cur, f"expected a name, found {self.cur.text!r}"
            )
        return self.advance()

    def accept(self, text: str) -> bool:
        if self.cur.text == text:
            self.advance()
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse_program(self) -> Program:
        modules: List[Module] = []
        while self.cur.kind != "eof":
            modules.append(self.parse_module())
        if not modules:
            raise ScaffoldSyntaxError(1, "no modules in source")
        self._resolve_calls(modules)
        names = {m.name for m in modules}
        entry = "main" if "main" in names else modules[-1].name
        return Program(modules, entry)

    def _resolve_calls(self, modules: List[Module]) -> None:
        """Link-time checks with source locations: every call site must
        name a known module (or it is a typo'd gate) with matching
        arity. ``Program.validate`` re-checks the same invariants, but
        only the front-end can report line/column."""
        by_name = {m.name: m for m in modules}
        for mod in modules:
            for call in mod.calls():
                loc = call.loc or SourceLocation(0)
                callee = by_name.get(call.callee)
                if callee is None:
                    raise ScaffoldSyntaxError(
                        loc.line,
                        f"unknown module or gate {call.callee!r}",
                        loc.column,
                        code="QL103",
                    )
                if len(call.args) != len(callee.params):
                    raise ScaffoldSyntaxError(
                        loc.line,
                        f"call to {call.callee!r} has {len(call.args)} "
                        f"argument(s); module expects "
                        f"{len(callee.params)}",
                        loc.column,
                        code="QL103",
                    )

    def parse_module(self) -> Module:
        kw = self.expect("module")
        name = self.expect_name().text
        self.expect("(")
        params: List[Qubit] = []
        registers: Dict[str, int] = {}
        if self.cur.text != ")":
            while True:
                params.extend(self._parse_decl(registers))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self._parse_block(registers, {})
        return Module(name, tuple(params), body, loc=self.loc(kw))

    def _parse_decl(self, registers: Dict[str, int]) -> List[Qubit]:
        kind_tok = self.expect_name()
        kind = kind_tok.text
        if kind not in ("qbit", "qreg"):
            raise self.err(
                kind_tok, f"expected qbit/qreg, found {kind!r}"
            )
        name_tok = self.expect_name()
        name = name_tok.text
        if name in registers:
            raise self.err(
                name_tok, f"duplicate declaration of {name!r}"
            )
        if kind == "qbit":
            registers[name] = 1
            return [Qubit(name, 0)]
        self.expect("[")
        size_tok = self.advance()
        if size_tok.kind != "number" or "." in size_tok.text:
            raise self.err(size_tok, "qreg size must be an integer")
        size = int(size_tok.text)
        self.expect("]")
        registers[name] = size
        return [Qubit(name, i) for i in range(size)]

    def _parse_block(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> List[Statement]:
        self.expect("{")
        body: List[Statement] = []
        while not self.accept("}"):
            if self.cur.kind == "eof":
                raise self.err(self.cur, "missing '}'")
            body.extend(self._parse_statement(registers, loop_vars))
        return body

    def _parse_statement(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> List[Statement]:
        tok = self.cur
        if tok.text in ("qbit", "qreg"):
            self._parse_decl(registers)
            self.expect(";")
            return []
        if tok.text == "for":
            return self._parse_for(registers, loop_vars)
        if tok.text == "repeat":
            return self._parse_repeat(registers, loop_vars)
        if tok.kind == "name":
            return [self._parse_invocation(registers, loop_vars)]
        raise self.err(tok, f"unexpected token {tok.text!r}")

    def _parse_for(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> List[Statement]:
        kw = self.expect("for")
        var_tok = self.expect_name()
        var = var_tok.text
        if var in loop_vars:
            raise self.err(
                var_tok, f"loop variable {var!r} shadows"
            )
        self.expect("in")
        lo = self._parse_int_expr(loop_vars)
        self.expect("..")
        hi = self._parse_int_expr(loop_vars)
        if hi < lo:
            raise self.err(kw, "empty loop range", code="QL101")
        trips = hi - lo + 1
        if trips > _MAX_UNROLL:
            raise self.err(
                kw,
                f"loop of {trips} iterations exceeds the unroll "
                f"limit; use 'repeat' around a call instead",
            )
        if trips == 1:
            self.warn(
                kw,
                "degenerate-loop",
                f"loop over {var!r} executes exactly once "
                f"({lo} .. {hi})",
            )
        elif trips > _WARN_UNROLL:
            self.warn(
                kw,
                "large-unroll",
                f"loop over {var!r} unrolls {trips} iterations "
                f"(limit {_MAX_UNROLL}); consider 'repeat' around a "
                f"call",
            )
        # Parse the body once per iteration value (re-scan the token
        # stream; simplest correct unrolling).
        body_start = self.pos
        out: List[Statement] = []
        for value in range(lo, hi + 1):
            self.pos = body_start
            inner = dict(loop_vars)
            inner[var] = value
            out.extend(self._parse_block(dict(registers), inner))
        return out

    def _parse_repeat(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> List[Statement]:
        kw = self.expect("repeat")
        count = self._parse_int_expr(loop_vars)
        if count < 1:
            raise self.err(kw, "repeat count must be >= 1")
        if count == 1:
            self.warn(
                kw, "degenerate-repeat", "repeat 1 has no effect"
            )
        body = self._parse_block(dict(registers), loop_vars)
        # Call-only bodies lower to iterated calls (never unrolled).
        if body and all(isinstance(s, CallSite) for s in body):
            return [
                CallSite(
                    c.callee, c.args, c.iterations * count, loc=c.loc
                )
                for c in body
            ]
        if count > _MAX_UNROLL:
            raise self.err(
                kw,
                "repeat bodies with raw gates cannot exceed the unroll "
                "limit; wrap the gates in a module",
            )
        if count > _WARN_UNROLL:
            self.warn(
                kw,
                "large-unroll",
                f"repeat of {count} gate-level iterations unrolls "
                f"in place (limit {_MAX_UNROLL}); wrap the gates in a "
                f"module to keep the program compact",
            )
        return body * count

    def _parse_invocation(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> Statement:
        name_tok = self.expect_name()
        name = name_tok.text
        self.expect("(")
        qubits: List[Qubit] = []
        angle: Optional[float] = None
        if self.cur.text != ")":
            while True:
                if self._at_qubit_operand(registers, loop_vars):
                    qubits.append(
                        self._parse_qubit(registers, loop_vars)
                    )
                else:
                    if angle is not None:
                        raise self.err(
                            self.cur, "multiple angle arguments"
                        )
                    angle = self._parse_angle_expr(loop_vars)
                if not self.accept(","):
                    break
        self.expect(")")
        self.expect(";")
        if name in GATES:
            spec = gate_spec(name)
            if spec.takes_angle and angle is None:
                raise self.err(
                    name_tok, f"{name} requires an angle argument"
                )
            if not spec.takes_angle and angle is not None:
                raise self.err(name_tok, f"{name} takes no angle")
            try:
                return Operation(
                    name, tuple(qubits), angle, loc=self.loc(name_tok)
                )
            except ValueError as exc:
                raise self.err(name_tok, str(exc)) from None
        if angle is not None:
            raise self.err(
                name_tok, "module calls take only qubit arguments"
            )
        try:
            return CallSite(
                name, tuple(qubits), loc=self.loc(name_tok)
            )
        except ValueError as exc:
            raise self.err(name_tok, str(exc)) from None

    # -- operands & expressions ------------------------------------------

    def _at_qubit_operand(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> bool:
        tok = self.cur
        return (
            tok.kind == "name"
            and tok.text in registers
            and tok.text not in loop_vars
        )

    def _parse_qubit(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> Qubit:
        name_tok = self.expect_name()
        reg = name_tok.text
        size = registers.get(reg)
        if size is None:
            raise self.err(
                name_tok, f"undeclared register {reg!r}"
            )
        index = 0
        if self.accept("["):
            index = self._parse_int_expr(loop_vars)
            self.expect("]")
        elif size != 1:
            raise self.err(
                name_tok, f"register {reg!r} needs an index"
            )
        if not 0 <= index < size:
            raise self.err(
                name_tok,
                f"index {index} out of range for {reg}[{size}]",
            )
        return Qubit(reg, index)

    def _parse_int_expr(self, loop_vars: Dict[str, int]) -> int:
        value = self._parse_int_term(loop_vars)
        while self.cur.text in ("+", "-"):
            op = self.advance().text
            rhs = self._parse_int_term(loop_vars)
            value = value + rhs if op == "+" else value - rhs
        return value

    def _parse_int_term(self, loop_vars: Dict[str, int]) -> int:
        tok = self.advance()
        if tok.kind == "number":
            if "." in tok.text or "e" in tok.text or "E" in tok.text:
                raise self.err(tok, "expected an integer")
            return int(tok.text)
        if tok.kind == "name":
            if tok.text not in loop_vars:
                raise self.err(
                    tok, f"unknown loop variable {tok.text!r}"
                )
            return loop_vars[tok.text]
        raise self.err(
            tok, f"expected an integer, found {tok.text!r}"
        )

    def _parse_angle_expr(self, loop_vars: Dict[str, int]) -> float:
        value = self._parse_angle_term(loop_vars)
        while self.cur.text in ("+", "-"):
            op = self.advance().text
            rhs = self._parse_angle_term(loop_vars)
            value = value + rhs if op == "+" else value - rhs
        return value

    def _parse_angle_term(self, loop_vars: Dict[str, int]) -> float:
        value = self._parse_angle_factor(loop_vars)
        while self.cur.text in ("*", "/"):
            op = self.advance().text
            rhs = self._parse_angle_factor(loop_vars)
            if op == "/":
                if rhs == 0:
                    raise self.err(
                        self.cur, "division by zero in angle"
                    )
                value = value / rhs
            else:
                value = value * rhs
        return value

    def _parse_angle_factor(self, loop_vars: Dict[str, int]) -> float:
        if self.accept("-"):
            return -self._parse_angle_factor(loop_vars)
        if self.accept("("):
            value = self._parse_angle_expr(loop_vars)
            self.expect(")")
            return value
        tok = self.advance()
        if tok.kind == "number":
            return float(tok.text)
        if tok.kind == "name":
            if tok.text == "pi":
                return math.pi
            if tok.text in loop_vars:
                return float(loop_vars[tok.text])
            raise self.err(
                tok,
                f"undeclared register or unknown identifier "
                f"{tok.text!r}",
            )
        raise self.err(
            tok, f"unexpected {tok.text!r} in angle expression"
        )


def parse_scaffold(
    source: str,
    filename: Optional[str] = None,
    warnings: Optional[List[ScaffoldWarning]] = None,
) -> Program:
    """Parse Scaffold-dialect source text into a validated Program.

    Args:
        source: the Scaffold-dialect text.
        filename: attached to the source locations of the produced IR
            (shown in diagnostics).
        warnings: optional sink; when given, non-fatal front-end
            findings (:class:`ScaffoldWarning`) are appended to it.

    Raises:
        ScaffoldSyntaxError: on malformed source, with line/column.
    """
    return _Parser(
        _tokenize(source), filename=filename, warnings=warnings
    ).parse_program()
