"""A front-end for a Scaffold-like surface language.

The paper's benchmarks are written in Scaffold, "a C-like programming
language for quantum computing" with qubit/cbit datatypes, built-in
gates, modules, and classically-bounded control flow (Section 3.1).
This module implements a compact dialect of it, sufficient to express
the hierarchical programs the toolflow schedules::

    module bell ( qbit a, qbit b ) {
        H(a);
        CNOT(a, b);
    }

    module main ( ) {
        qreg q[4];
        bell(q[0], q[1]);
        for i in 0 .. 2 {
            bell(q[i], q[i + 1]);
        }
        repeat 1000 { bell(q[0], q[1]); }
        MeasZ(q[0]);
    }

Supported constructs:

* ``module NAME ( params ) { ... }`` with ``qbit x`` / ``qreg r[N]``
  parameters; the entry module is ``main``;
* local declarations ``qbit x;`` / ``qreg r[N];``;
* built-in gates (the vocabulary of :mod:`repro.core.gates`), with a
  trailing numeric argument for rotations: ``Rz(q, 0.5)``. Constant
  angle expressions may use ``pi``: ``Rz(q, pi / 4)``;
* module calls ``name(q0, q1, ...)``;
* counted loops ``for VAR in LO .. HI { ... }`` (inclusive bounds,
  unrolled; the loop variable may appear in index arithmetic) and
  ``repeat N { ... }`` which, for call-only bodies, lowers to the
  compact iterated-call encoding instead of unrolling (Section 3.1's
  never-unroll strategy for 10^12-gate programs).

The front-end produces the same validated :class:`~repro.core.module.
Program` the builder DSL does.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from .gates import GATES, gate_spec
from .module import Module, Program
from .operation import CallSite, Operation, Statement
from .qubits import Qubit

__all__ = ["parse_scaffold", "ScaffoldSyntaxError"]

_MAX_UNROLL = 100_000


class ScaffoldSyntaxError(ValueError):
    """Raised on malformed Scaffold source."""

    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>\d+\.\d+(?:[eE][-+]?\d+)?|\.\d+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<symbol>\.\.|[()\[\]{},;+\-*/])
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE | re.DOTALL,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}:{self.text!r}@{self.line}"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    for m in _TOKEN_RE.finditer(source):
        kind = m.lastgroup
        text = m.group()
        if kind in ("ws", "comment"):
            line += text.count("\n")
            continue
        if kind == "bad":
            raise ScaffoldSyntaxError(line, f"unexpected character {text!r}")
        tokens.append(_Token(kind, text, line))
        line += text.count("\n")
    tokens.append(_Token("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    @property
    def cur(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.cur
        self.pos += 1
        return tok

    def expect(self, text: str) -> _Token:
        if self.cur.text != text:
            raise ScaffoldSyntaxError(
                self.cur.line,
                f"expected {text!r}, found {self.cur.text or 'EOF'!r}",
            )
        return self.advance()

    def expect_name(self) -> _Token:
        if self.cur.kind != "name":
            raise ScaffoldSyntaxError(
                self.cur.line, f"expected a name, found {self.cur.text!r}"
            )
        return self.advance()

    def accept(self, text: str) -> bool:
        if self.cur.text == text:
            self.advance()
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse_program(self) -> Program:
        modules: List[Module] = []
        while self.cur.kind != "eof":
            modules.append(self.parse_module())
        if not modules:
            raise ScaffoldSyntaxError(1, "no modules in source")
        names = {m.name for m in modules}
        entry = "main" if "main" in names else modules[-1].name
        return Program(modules, entry)

    def parse_module(self) -> Module:
        self.expect("module")
        name = self.expect_name().text
        self.expect("(")
        params: List[Qubit] = []
        registers: Dict[str, int] = {}
        if self.cur.text != ")":
            while True:
                params.extend(self._parse_decl(registers))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self._parse_block(registers, {})
        return Module(name, tuple(params), body)

    def _parse_decl(self, registers: Dict[str, int]) -> List[Qubit]:
        kind = self.expect_name().text
        if kind not in ("qbit", "qreg"):
            raise ScaffoldSyntaxError(
                self.cur.line, f"expected qbit/qreg, found {kind!r}"
            )
        name = self.expect_name().text
        if name in registers:
            raise ScaffoldSyntaxError(
                self.cur.line, f"duplicate declaration of {name!r}"
            )
        if kind == "qbit":
            registers[name] = 1
            return [Qubit(name, 0)]
        self.expect("[")
        size_tok = self.advance()
        if size_tok.kind != "number" or "." in size_tok.text:
            raise ScaffoldSyntaxError(
                size_tok.line, "qreg size must be an integer"
            )
        size = int(size_tok.text)
        self.expect("]")
        registers[name] = size
        return [Qubit(name, i) for i in range(size)]

    def _parse_block(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> List[Statement]:
        self.expect("{")
        body: List[Statement] = []
        while not self.accept("}"):
            if self.cur.kind == "eof":
                raise ScaffoldSyntaxError(self.cur.line, "missing '}'")
            body.extend(self._parse_statement(registers, loop_vars))
        return body

    def _parse_statement(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> List[Statement]:
        tok = self.cur
        if tok.text in ("qbit", "qreg"):
            self._parse_decl(registers)
            self.expect(";")
            return []
        if tok.text == "for":
            return self._parse_for(registers, loop_vars)
        if tok.text == "repeat":
            return self._parse_repeat(registers, loop_vars)
        if tok.kind == "name":
            return [self._parse_invocation(registers, loop_vars)]
        raise ScaffoldSyntaxError(
            tok.line, f"unexpected token {tok.text!r}"
        )

    def _parse_for(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> List[Statement]:
        line = self.expect("for").line
        var = self.expect_name().text
        if var in loop_vars:
            raise ScaffoldSyntaxError(line, f"loop variable {var!r} shadows")
        self.expect("in")
        lo = self._parse_int_expr(loop_vars)
        self.expect("..")
        hi = self._parse_int_expr(loop_vars)
        if hi < lo:
            raise ScaffoldSyntaxError(line, "empty loop range")
        if hi - lo + 1 > _MAX_UNROLL:
            raise ScaffoldSyntaxError(
                line,
                f"loop of {hi - lo + 1} iterations exceeds the unroll "
                f"limit; use 'repeat' around a call instead",
            )
        # Parse the body once per iteration value (re-scan the token
        # stream; simplest correct unrolling).
        body_start = self.pos
        out: List[Statement] = []
        for value in range(lo, hi + 1):
            self.pos = body_start
            inner = dict(loop_vars)
            inner[var] = value
            out.extend(self._parse_block(dict(registers), inner))
        return out

    def _parse_repeat(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> List[Statement]:
        line = self.expect("repeat").line
        count = self._parse_int_expr(loop_vars)
        if count < 1:
            raise ScaffoldSyntaxError(line, "repeat count must be >= 1")
        body = self._parse_block(dict(registers), loop_vars)
        # Call-only bodies lower to iterated calls (never unrolled).
        if body and all(isinstance(s, CallSite) for s in body):
            return [
                CallSite(c.callee, c.args, c.iterations * count)
                for c in body
            ]
        if count > _MAX_UNROLL:
            raise ScaffoldSyntaxError(
                line,
                "repeat bodies with raw gates cannot exceed the unroll "
                "limit; wrap the gates in a module",
            )
        return body * count

    def _parse_invocation(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> Statement:
        name_tok = self.expect_name()
        name = name_tok.text
        self.expect("(")
        qubits: List[Qubit] = []
        angle: Optional[float] = None
        if self.cur.text != ")":
            while True:
                if self._at_qubit_operand(registers, loop_vars):
                    qubits.append(
                        self._parse_qubit(registers, loop_vars)
                    )
                else:
                    if angle is not None:
                        raise ScaffoldSyntaxError(
                            self.cur.line, "multiple angle arguments"
                        )
                    angle = self._parse_angle_expr(loop_vars)
                if not self.accept(","):
                    break
        self.expect(")")
        self.expect(";")
        if name in GATES:
            spec = gate_spec(name)
            if spec.takes_angle and angle is None:
                raise ScaffoldSyntaxError(
                    name_tok.line, f"{name} requires an angle argument"
                )
            if not spec.takes_angle and angle is not None:
                raise ScaffoldSyntaxError(
                    name_tok.line, f"{name} takes no angle"
                )
            try:
                return Operation(name, tuple(qubits), angle)
            except ValueError as exc:
                raise ScaffoldSyntaxError(name_tok.line, str(exc)) from None
        if angle is not None:
            raise ScaffoldSyntaxError(
                name_tok.line, "module calls take only qubit arguments"
            )
        return CallSite(name, tuple(qubits))

    # -- operands & expressions ------------------------------------------

    def _at_qubit_operand(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> bool:
        tok = self.cur
        return (
            tok.kind == "name"
            and tok.text in registers
            and tok.text not in loop_vars
        )

    def _parse_qubit(
        self, registers: Dict[str, int], loop_vars: Dict[str, int]
    ) -> Qubit:
        name_tok = self.expect_name()
        reg = name_tok.text
        size = registers.get(reg)
        if size is None:
            raise ScaffoldSyntaxError(
                name_tok.line, f"undeclared register {reg!r}"
            )
        index = 0
        if self.accept("["):
            index = self._parse_int_expr(loop_vars)
            self.expect("]")
        elif size != 1:
            raise ScaffoldSyntaxError(
                name_tok.line, f"register {reg!r} needs an index"
            )
        if not 0 <= index < size:
            raise ScaffoldSyntaxError(
                name_tok.line,
                f"index {index} out of range for {reg}[{size}]",
            )
        return Qubit(reg, index)

    def _parse_int_expr(self, loop_vars: Dict[str, int]) -> int:
        value = self._parse_int_term(loop_vars)
        while self.cur.text in ("+", "-"):
            op = self.advance().text
            rhs = self._parse_int_term(loop_vars)
            value = value + rhs if op == "+" else value - rhs
        return value

    def _parse_int_term(self, loop_vars: Dict[str, int]) -> int:
        tok = self.advance()
        if tok.kind == "number":
            if "." in tok.text or "e" in tok.text or "E" in tok.text:
                raise ScaffoldSyntaxError(
                    tok.line, "expected an integer"
                )
            return int(tok.text)
        if tok.kind == "name":
            if tok.text not in loop_vars:
                raise ScaffoldSyntaxError(
                    tok.line, f"unknown loop variable {tok.text!r}"
                )
            return loop_vars[tok.text]
        raise ScaffoldSyntaxError(
            tok.line, f"expected an integer, found {tok.text!r}"
        )

    def _parse_angle_expr(self, loop_vars: Dict[str, int]) -> float:
        value = self._parse_angle_term(loop_vars)
        while self.cur.text in ("+", "-"):
            op = self.advance().text
            rhs = self._parse_angle_term(loop_vars)
            value = value + rhs if op == "+" else value - rhs
        return value

    def _parse_angle_term(self, loop_vars: Dict[str, int]) -> float:
        value = self._parse_angle_factor(loop_vars)
        while self.cur.text in ("*", "/"):
            op = self.advance().text
            rhs = self._parse_angle_factor(loop_vars)
            if op == "/":
                if rhs == 0:
                    raise ScaffoldSyntaxError(
                        self.cur.line, "division by zero in angle"
                    )
                value = value / rhs
            else:
                value = value * rhs
        return value

    def _parse_angle_factor(self, loop_vars: Dict[str, int]) -> float:
        if self.accept("-"):
            return -self._parse_angle_factor(loop_vars)
        if self.accept("("):
            value = self._parse_angle_expr(loop_vars)
            self.expect(")")
            return value
        tok = self.advance()
        if tok.kind == "number":
            return float(tok.text)
        if tok.kind == "name":
            if tok.text == "pi":
                return math.pi
            if tok.text in loop_vars:
                return float(loop_vars[tok.text])
            raise ScaffoldSyntaxError(
                tok.line,
                f"undeclared register or unknown identifier "
                f"{tok.text!r}",
            )
        raise ScaffoldSyntaxError(
            tok.line, f"unexpected {tok.text!r} in angle expression"
        )


def parse_scaffold(source: str) -> Program:
    """Parse Scaffold-dialect source text into a validated Program."""
    return _Parser(_tokenize(source)).parse_program()
