"""Qubit naming and allocation.

Qubits in this IR are *logical* qubits (the paper schedules at the logical
level; QECC sub-operations are folded into the per-gate cost). A qubit is
identified by the register it belongs to and its index within the
register. Registers are module-local: a module's statements may only
reference qubits it declared (or received as formal arguments).

``AncillaAllocator`` provides pooled allocation of scratch qubits so that
benchmark generators can maximally reuse ancillas — this is what the
paper's Table 1 minimum-qubit figure ``Q`` assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

__all__ = ["Qubit", "QubitRegister", "AncillaAllocator"]


@dataclass(frozen=True, order=True)
class Qubit:
    """A single logical qubit: ``register[index]``.

    Qubits key every hot dictionary in the pipeline (last-writer maps,
    memory maps, residency tables), so the hash is computed once at
    construction rather than per lookup.
    """

    register: str
    index: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.register, self.index))
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.register}[{self.index}]"


class QubitRegister(Sequence[Qubit]):
    """A named, fixed-size array of logical qubits.

    Behaves as an immutable sequence of :class:`Qubit`:

    >>> reg = QubitRegister("a", 3)
    >>> reg[0]
    a[0]
    >>> len(reg)
    3
    >>> list(reg[1:])
    [a[1], a[2]]
    """

    def __init__(self, name: str, size: int):
        if size < 0:
            raise ValueError(f"register size must be >= 0, got {size}")
        if not name:
            raise ValueError("register name must be non-empty")
        self.name = name
        self.size = size
        self._qubits: Tuple[Qubit, ...] = tuple(
            Qubit(name, i) for i in range(size)
        )

    def __getitem__(self, item):
        result = self._qubits[item]
        if isinstance(item, slice):
            return list(result)
        return result

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Qubit]:
        return iter(self._qubits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QubitRegister({self.name!r}, {self.size})"


@dataclass
class AncillaAllocator:
    """Pooled allocator for scratch qubits.

    Freed qubits go back onto a free list and are handed out again before
    any new qubit is minted, so the high-water mark of live ancillas is
    also the number of distinct ancilla qubits created. This mirrors the
    "maximal possible reuse of ancilla qubits across functions" that
    defines the paper's minimum-qubit count Q (Table 1).
    """

    prefix: str = "anc"
    _free: List[Qubit] = field(default_factory=list)
    _next_index: int = 0

    def alloc(self, n: int = 1) -> List[Qubit]:
        """Allocate ``n`` ancilla qubits, reusing freed ones first."""
        if n < 0:
            raise ValueError(f"cannot allocate {n} qubits")
        out: List[Qubit] = []
        while self._free and len(out) < n:
            out.append(self._free.pop())
        while len(out) < n:
            out.append(Qubit(self.prefix, self._next_index))
            self._next_index += 1
        return out

    def alloc_one(self) -> Qubit:
        """Allocate a single ancilla qubit."""
        return self.alloc(1)[0]

    def free(self, qubits: Sequence[Qubit]) -> None:
        """Return ``qubits`` to the pool.

        Raises:
            ValueError: if a qubit was not produced by this allocator or
                is already free (double free).
        """
        for q in qubits:
            if q.register != self.prefix or q.index >= self._next_index:
                raise ValueError(f"{q!r} was not allocated by this pool")
            if q in self._free:
                raise ValueError(f"double free of {q!r}")
            self._free.append(q)

    @property
    def high_water_mark(self) -> int:
        """Total distinct ancilla qubits ever created."""
        return self._next_index

    @property
    def live_count(self) -> int:
        """Number of currently-allocated (not freed) ancillas."""
        return self._next_index - len(self._free)

    def all_qubits(self) -> List[Qubit]:
        """Every ancilla qubit this pool has ever created."""
        return [Qubit(self.prefix, i) for i in range(self._next_index)]
