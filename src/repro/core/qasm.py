"""QASM emission and parsing.

ScaffCC's backend target is QASM, "a technology-independent quantum
assembly language" (Section 3.1). This module round-trips our IR
through a hierarchical QASM dialect so compiled programs can leave the
toolflow (and come back):

* one ``.module NAME param, param, ...`` block per module, ``.end``
  terminated, entry module marked ``.entry``;
* one instruction per line: ``gate q, q, ...`` with an optional
  ``(angle)`` for rotations;
* calls as ``call[xN] NAME q, q, ...``;
* qubits as ``reg[idx]``.

The dialect is deliberately close to the flat QASM of Svore et al. /
qasm2circ, extended with the module structure the paper's hierarchical
scheduling relies on.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .gates import gate_spec
from .module import Module, Program
from .operation import CallSite, Operation, Statement
from .qubits import Qubit

__all__ = ["emit_qasm", "parse_qasm", "QasmSyntaxError"]


class QasmSyntaxError(ValueError):
    """Raised on malformed QASM text."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_QUBIT_RE = re.compile(r"^([A-Za-z_$@.#][\w$@.#]*)\[(\d+)\]$")
_CALL_RE = re.compile(r"^call(?:\[(\d+)\])?$")


def _fmt_qubit(q: Qubit) -> str:
    return f"{q.register}[{q.index}]"


def _parse_qubit(text: str, line_no: int) -> Qubit:
    m = _QUBIT_RE.match(text.strip())
    if not m:
        raise QasmSyntaxError(line_no, f"bad qubit operand {text!r}")
    return Qubit(m.group(1), int(m.group(2)))


def emit_qasm(program: Program) -> str:
    """Serialise a program to hierarchical QASM text."""
    lines: List[str] = [
        "; hierarchical QASM emitted by repro (ASPLOS'15 toolflow "
        "reproduction)",
    ]
    order = program.topological_order()
    # Unreachable modules are still part of the program text (callees
    # first keeps the file human-readable; orphans go at the front).
    orphans = sorted(set(program.modules) - set(order))
    for name in orphans + order:
        mod = program.module(name)
        marker = " .entry" if name == program.entry else ""
        params = ", ".join(_fmt_qubit(q) for q in mod.params)
        lines.append(f".module {name}{marker}")
        if params:
            lines.append(f".params {params}")
        for stmt in mod.body:
            lines.append("    " + _fmt_statement(stmt))
        lines.append(".end")
    return "\n".join(lines) + "\n"


def _fmt_statement(stmt: Statement) -> str:
    if isinstance(stmt, CallSite):
        head = (
            f"call[{stmt.iterations}]" if stmt.iterations > 1 else "call"
        )
        args = ", ".join(_fmt_qubit(q) for q in stmt.args)
        return f"{head} {stmt.callee} {args}".rstrip()
    angle = f" ({stmt.angle!r})" if stmt.angle is not None else ""
    args = ", ".join(_fmt_qubit(q) for q in stmt.qubits)
    return f"{stmt.gate}{angle} {args}"


def parse_qasm(text: str) -> Program:
    """Parse hierarchical QASM text back into a validated Program."""
    modules: List[Module] = []
    entry: Optional[str] = None
    name: Optional[str] = None
    params: Tuple[Qubit, ...] = ()
    body: List[Statement] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".module"):
            if name is not None:
                raise QasmSyntaxError(line_no, "nested .module")
            parts = line.split()
            if len(parts) < 2:
                raise QasmSyntaxError(line_no, ".module needs a name")
            name = parts[1]
            if ".entry" in parts[2:]:
                entry = name
            params, body = (), []
        elif line.startswith(".params"):
            if name is None:
                raise QasmSyntaxError(line_no, ".params outside module")
            rest = line[len(".params"):].strip()
            params = tuple(
                _parse_qubit(tok, line_no)
                for tok in rest.split(",")
                if tok.strip()
            )
        elif line == ".end":
            if name is None:
                raise QasmSyntaxError(line_no, ".end outside module")
            modules.append(Module(name, params, body))
            name, params, body = None, (), []
        else:
            if name is None:
                raise QasmSyntaxError(
                    line_no, f"instruction outside module: {line!r}"
                )
            body.append(_parse_statement(line, line_no))
    if name is not None:
        raise QasmSyntaxError(len(text.splitlines()), "missing .end")
    if not modules:
        raise QasmSyntaxError(1, "no modules found")
    if entry is None:
        entry = modules[-1].name
    return Program(modules, entry)


def _parse_statement(line: str, line_no: int) -> Statement:
    head, _, rest = line.partition(" ")
    call_m = _CALL_RE.match(head)
    if call_m:
        iterations = int(call_m.group(1) or 1)
        callee, _, argtext = rest.strip().partition(" ")
        if not callee:
            raise QasmSyntaxError(line_no, "call needs a callee")
        args = tuple(
            _parse_qubit(tok, line_no)
            for tok in argtext.split(",")
            if tok.strip()
        )
        return CallSite(callee, args, iterations)
    # Gate, possibly with an angle: "Rz (0.5) q[0]".
    angle = None
    gate = head
    rest = rest.strip()
    if rest.startswith("("):
        close = rest.find(")")
        if close < 0:
            raise QasmSyntaxError(line_no, "unterminated angle")
        try:
            angle = float(rest[1:close])
        except ValueError:
            raise QasmSyntaxError(
                line_no, f"bad angle {rest[1:close]!r}"
            ) from None
        rest = rest[close + 1:].strip()
    try:
        gate_spec(gate)
    except KeyError:
        raise QasmSyntaxError(line_no, f"unknown gate {gate!r}") from None
    qubits = tuple(
        _parse_qubit(tok, line_no)
        for tok in rest.split(",")
        if tok.strip()
    )
    try:
        return Operation(gate, qubits, angle)
    except ValueError as exc:
        raise QasmSyntaxError(line_no, str(exc)) from None
