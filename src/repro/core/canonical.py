"""Canonical (order-stable, repr-free) forms of the core IR.

The content-addressed layers of the toolchain — the compile-artifact
store (:mod:`repro.service`) and the per-module analysis summary cache
(:mod:`repro.analysis.dataflow`) — both need a deterministic JSON
encoding of programs to hash. That encoding lives here, at the bottom
of the dependency graph, so the analysis layer can fingerprint modules
without importing the service package (which imports the toolflow,
which imports the analysis package).

Determinism rules (the hash must never see an iteration-order or
``repr`` leak):

* modules are emitted **sorted by name**, never in ``Program.modules``
  insertion order;
* statement bodies keep their (semantically meaningful) order; every
  statement is emitted as an explicit list, never via ``repr``;
* qubits are emitted as ``[register, index]`` pairs;
* ``set``-typed structures (e.g. :meth:`Module.callees`) are never
  consumed — the canonical form only reads ordered fields;
* floats (gate angles, capacities) are emitted via :func:`float.hex` —
  exact, locale-independent, and immune to repr changes;
* non-semantic metadata (source locations) is excluded: a program
  parsed from a file and the identical program built in memory
  fingerprint the same.

:data:`PIPELINE_VERSION` also lives here: it is mixed into every
fingerprint so that behavioural changes to passes/schedulers/analyses
invalidate previously stored artifacts and summaries.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, List, Optional, Union

from .module import Module, Program
from .operation import CallSite, Operation, Statement
from .qubits import Qubit

__all__ = [
    "PIPELINE_VERSION",
    "canonical_number",
    "canonical_qubit",
    "canonical_statement",
    "canonical_module",
    "canonical_program",
    "digest",
    "fingerprint_program",
]

#: Version of the compilation pipeline's *behaviour*. Bump whenever a
#: pass, scheduler, analysis, or the cost model changes in a way that
#: alters results — every stored artifact or summary fingerprinted
#: under the old version becomes unreachable (see ``DESIGN.md``,
#: "Fingerprint recipe").
PIPELINE_VERSION = "2025.3"


def canonical_number(value: Optional[Union[int, float]]) -> Any:
    """Canonical JSON encoding for an optional numeric field."""
    if value is None:
        return None
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        return value.hex()
    return value


def canonical_qubit(q: Qubit) -> List[Any]:
    return [q.register, q.index]


def canonical_statement(stmt: Statement) -> List[Any]:
    if isinstance(stmt, Operation):
        return [
            "op",
            stmt.gate,
            [canonical_qubit(q) for q in stmt.qubits],
            canonical_number(stmt.angle),
        ]
    if isinstance(stmt, CallSite):
        return [
            "call",
            stmt.callee,
            [canonical_qubit(q) for q in stmt.args],
            stmt.iterations,
        ]
    raise TypeError(f"unknown statement type {type(stmt).__name__}")


def canonical_module(mod: Module) -> Dict[str, Any]:
    """The canonical form of one module (name, params, body)."""
    return {
        "name": mod.name,
        "params": [canonical_qubit(q) for q in mod.params],
        "body": [canonical_statement(s) for s in mod.body],
    }


def canonical_program(program: Program) -> Dict[str, Any]:
    """The canonical (order-stable, repr-free) form of a program."""
    return {
        "entry": program.entry,
        "modules": [
            canonical_module(program.modules[name])
            for name in sorted(program.modules)
        ],
    }


def digest(doc: Any) -> str:
    """SHA-256 hex digest of a canonical JSON document.

    The document must already be canonical (order-stable values);
    key order is normalised here via ``sort_keys``.
    """
    text = json.dumps(
        doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def fingerprint_program(program: Program) -> str:
    """SHA-256 over the canonical program alone (no machine/config)."""
    return digest(canonical_program(program))
