"""A Scaffold-style construction DSL for hierarchical quantum programs.

The paper's benchmarks are written in Scaffold, a C-like language that
ScaffCC lowers to a modular gate-level IR. We substitute the surface
language with a small, explicit Python builder that produces the same IR
(see DESIGN.md, substitution table): each Scaffold ``module`` becomes a
:class:`ModuleBuilder`, each gate call a builder method, and each
classically-bounded loop an ``iterations=`` argument on :meth:`call`.

Example:

    >>> from repro.core import ProgramBuilder
    >>> pb = ProgramBuilder()
    >>> bell = pb.module("bell")
    >>> q = bell.register("q", 2)
    >>> bell.h(q[0]).cnot(q[0], q[1])            # doctest: +ELLIPSIS
    <repro.core.builder.ModuleBuilder object at ...>
    >>> main = pb.module("main")
    >>> r = main.register("r", 2)
    >>> _ = main.call("bell", r)
    >>> program = pb.build("main")
    >>> program.entry_module.is_leaf
    False
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .gates import gate_spec
from .module import Module, Program
from .operation import CallSite, Operation
from .qubits import Qubit, QubitRegister

__all__ = ["ModuleBuilder", "ProgramBuilder"]

QubitLike = Union[Qubit, Sequence[Qubit]]


class ModuleBuilder:
    """Accumulates statements for one module.

    Gate methods return ``self`` so simple circuits can be chained. All
    gate methods accept individual :class:`Qubit` operands.
    """

    def __init__(self, name: str, program: Optional["ProgramBuilder"] = None):
        self.name = name
        self._program = program
        self._params: List[Qubit] = []
        self._registers: Dict[str, QubitRegister] = {}
        self._body: List[Union[Operation, CallSite]] = []

    # -- declarations -----------------------------------------------------

    def register(self, name: str, size: int) -> QubitRegister:
        """Declare a local qubit register."""
        if name in self._registers:
            raise ValueError(
                f"register {name!r} already declared in module {self.name!r}"
            )
        reg = QubitRegister(name, size)
        self._registers[name] = reg
        return reg

    def param_register(self, name: str, size: int) -> QubitRegister:
        """Declare a register whose qubits are formal parameters."""
        reg = self.register(name, size)
        self._params.extend(reg)
        return reg

    def params(self, *qubits: Qubit) -> None:
        """Declare individual qubits as formal parameters."""
        self._params.extend(qubits)

    # -- raw statement emission ---------------------------------------------

    def emit(self, stmt: Union[Operation, CallSite]) -> "ModuleBuilder":
        """Append an already-constructed statement."""
        self._body.append(stmt)
        return self

    def gate(
        self, name: str, *qubits: Qubit, angle: Optional[float] = None
    ) -> "ModuleBuilder":
        """Append a gate by mnemonic."""
        gate_spec(name)  # fail fast on unknown gates
        return self.emit(Operation(name, tuple(qubits), angle))

    def call(
        self,
        callee: Union[str, "ModuleBuilder", Module],
        args: Sequence[Qubit],
        iterations: int = 1,
    ) -> "ModuleBuilder":
        """Append a call to another module."""
        name = callee if isinstance(callee, str) else callee.name
        return self.emit(CallSite(name, tuple(args), iterations))

    # -- single-qubit gates --------------------------------------------------

    def x(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("X", q)

    def y(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("Y", q)

    def z(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("Z", q)

    def h(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("H", q)

    def s(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("S", q)

    def sdag(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("Sdag", q)

    def t(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("T", q)

    def tdag(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("Tdag", q)

    def prep_z(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("PrepZ", q)

    def prep_x(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("PrepX", q)

    def meas_z(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("MeasZ", q)

    def meas_x(self, q: Qubit) -> "ModuleBuilder":
        return self.gate("MeasX", q)

    # -- multi-qubit gates ----------------------------------------------------

    def cnot(self, control: Qubit, target: Qubit) -> "ModuleBuilder":
        return self.gate("CNOT", control, target)

    def cz(self, control: Qubit, target: Qubit) -> "ModuleBuilder":
        return self.gate("CZ", control, target)

    def swap(self, a: Qubit, b: Qubit) -> "ModuleBuilder":
        return self.gate("SWAP", a, b)

    def toffoli(self, c1: Qubit, c2: Qubit, target: Qubit) -> "ModuleBuilder":
        return self.gate("Toffoli", c1, c2, target)

    def fredkin(self, control: Qubit, a: Qubit, b: Qubit) -> "ModuleBuilder":
        return self.gate("Fredkin", control, a, b)

    def ccz(self, a: Qubit, b: Qubit, c: Qubit) -> "ModuleBuilder":
        return self.gate("CCZ", a, b, c)

    # -- rotations ---------------------------------------------------------

    def rz(self, q: Qubit, angle: float) -> "ModuleBuilder":
        return self.gate("Rz", q, angle=angle)

    def rx(self, q: Qubit, angle: float) -> "ModuleBuilder":
        return self.gate("Rx", q, angle=angle)

    def ry(self, q: Qubit, angle: float) -> "ModuleBuilder":
        return self.gate("Ry", q, angle=angle)

    def crz(self, control: Qubit, target: Qubit, angle: float) -> "ModuleBuilder":
        return self.gate("CRz", control, target, angle=angle)

    def crx(self, control: Qubit, target: Qubit, angle: float) -> "ModuleBuilder":
        return self.gate("CRx", control, target, angle=angle)

    # -- finalisation ---------------------------------------------------------

    def build(self) -> Module:
        """Produce the immutable-ish :class:`Module`."""
        return Module(self.name, tuple(self._params), list(self._body))

    def __len__(self) -> int:
        return len(self._body)


class ProgramBuilder:
    """Accumulates modules and assembles a validated :class:`Program`."""

    def __init__(self) -> None:
        self._builders: Dict[str, ModuleBuilder] = {}
        self._prebuilt: Dict[str, Module] = {}

    def module(self, name: str) -> ModuleBuilder:
        """Create (and register) a new module builder."""
        if name in self._builders or name in self._prebuilt:
            raise ValueError(f"module {name!r} already defined")
        mb = ModuleBuilder(name, self)
        self._builders[name] = mb
        return mb

    def add_module(self, module: Module) -> Module:
        """Register an already-built module."""
        if module.name in self._builders or module.name in self._prebuilt:
            raise ValueError(f"module {module.name!r} already defined")
        self._prebuilt[module.name] = module
        return module

    def build(self, entry: str) -> Program:
        """Assemble and validate the program."""
        modules = [mb.build() for mb in self._builders.values()]
        modules.extend(self._prebuilt.values())
        return Program(modules, entry)
