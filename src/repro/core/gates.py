"""Gate vocabulary for the Multi-SIMD toolflow.

The paper's compiler operates at two levels:

* the *Scaffold* level, where programs may use convenience gates such as
  ``Toffoli``, ``Fredkin`` and arbitrary-angle rotations (``Rz``/``Rx``/
  ``Ry``); and
* the *QASM* level, a universal subset (Clifford group + T, preparation
  and measurement) that the decomposition pass lowers everything onto and
  that the schedulers consume (Section 3.1 of the paper).

This module is the single source of truth for the gate vocabulary: names,
arities, which gates are QASM primitives, inverses, and whether a gate
carries a rotation angle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

__all__ = [
    "GateSpec",
    "GATES",
    "QASM_PRIMITIVES",
    "CLIFFORD_GATES",
    "ROTATION_GATES",
    "gate_spec",
    "is_primitive",
    "is_rotation",
    "inverse_gate",
]


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate kind.

    Attributes:
        name: canonical gate mnemonic (e.g. ``"CNOT"``).
        arity: number of qubit operands.
        primitive: True if the gate belongs to the QASM target subset and
            therefore survives decomposition.
        inverse: mnemonic of the inverse gate (self if self-inverse);
            ``None`` for non-unitary operations (preparation, measurement).
        takes_angle: True for parametric rotation gates.
    """

    name: str
    arity: int
    primitive: bool
    inverse: Optional[str]
    takes_angle: bool = False

    @property
    def is_self_inverse(self) -> bool:
        return self.inverse == self.name


def _spec(
    name: str,
    arity: int,
    primitive: bool,
    inverse: Optional[str],
    takes_angle: bool = False,
) -> GateSpec:
    return GateSpec(name, arity, primitive, inverse, takes_angle)


#: Registry of every gate kind known to the toolflow.
GATES: Dict[str, GateSpec] = {
    spec.name: spec
    for spec in [
        # --- QASM primitives: Pauli gates -------------------------------
        _spec("X", 1, True, "X"),
        _spec("Y", 1, True, "Y"),
        _spec("Z", 1, True, "Z"),
        # --- QASM primitives: Clifford + T ------------------------------
        _spec("H", 1, True, "H"),
        _spec("S", 1, True, "Sdag"),
        _spec("Sdag", 1, True, "S"),
        _spec("T", 1, True, "Tdag"),
        _spec("Tdag", 1, True, "T"),
        _spec("CNOT", 2, True, "CNOT"),
        # --- QASM primitives: preparation and measurement ---------------
        _spec("PrepZ", 1, True, None),
        _spec("PrepX", 1, True, None),
        _spec("MeasZ", 1, True, None),
        _spec("MeasX", 1, True, None),
        # --- Scaffold-level gates lowered by the decompose pass ---------
        _spec("CZ", 2, False, "CZ"),
        _spec("SWAP", 2, False, "SWAP"),
        _spec("Toffoli", 3, False, "Toffoli"),
        _spec("Fredkin", 3, False, "Fredkin"),
        _spec("CCZ", 3, False, "CCZ"),
        _spec("Rz", 1, False, "Rz", takes_angle=True),
        _spec("Rx", 1, False, "Rx", takes_angle=True),
        _spec("Ry", 1, False, "Ry", takes_angle=True),
        # Controlled rotation: used by QFT / phase estimation kernels.
        _spec("CRz", 2, False, "CRz", takes_angle=True),
        _spec("CRx", 2, False, "CRx", takes_angle=True),
    ]
}

#: The QASM target subset the schedulers operate on.
QASM_PRIMITIVES: FrozenSet[str] = frozenset(
    name for name, spec in GATES.items() if spec.primitive
)

#: Clifford-group gates (used by tests and by rotation synthesis).
CLIFFORD_GATES: FrozenSet[str] = frozenset(
    {"X", "Y", "Z", "H", "S", "Sdag", "CNOT"}
)

#: Parametric rotation gates.
ROTATION_GATES: FrozenSet[str] = frozenset(
    name for name, spec in GATES.items() if spec.takes_angle
)


def gate_spec(name: str) -> GateSpec:
    """Look up the :class:`GateSpec` for ``name``.

    Raises:
        KeyError: if ``name`` is not a known gate.
    """
    try:
        return GATES[name]
    except KeyError:
        raise KeyError(f"unknown gate {name!r}") from None


def is_primitive(name: str) -> bool:
    """True if ``name`` is in the QASM target subset."""
    return name in QASM_PRIMITIVES


def is_rotation(name: str) -> bool:
    """True if ``name`` is a parametric rotation gate."""
    return name in ROTATION_GATES


def inverse_gate(name: str) -> str:
    """Return the mnemonic of the inverse of ``name``.

    Raises:
        ValueError: for non-unitary operations (measure / prepare), which
            have no inverse.
    """
    spec = gate_spec(name)
    if spec.inverse is None:
        raise ValueError(f"gate {name!r} is not invertible")
    return spec.inverse
