"""Core IR: gates, qubits, operations, modules, programs, and the
dependence DAG."""

from .builder import ModuleBuilder, ProgramBuilder
from .opstream import (
    GeneratorStream,
    ListStream,
    OpStream,
    as_stream,
    iter_chunks,
    materialize,
)
from .dag import DependenceDAG
from .gates import (
    CLIFFORD_GATES,
    GATES,
    GateSpec,
    QASM_PRIMITIVES,
    ROTATION_GATES,
    gate_spec,
    inverse_gate,
    is_primitive,
    is_rotation,
)
from .module import Module, Program, ProgramValidationError
from .operation import CallSite, Operation, Statement
from .qasm import QasmSyntaxError, emit_qasm, parse_qasm
from .scaffold import ScaffoldSyntaxError, ScaffoldWarning, parse_scaffold
from .source import SourceLocation
from .qubits import AncillaAllocator, Qubit, QubitRegister

__all__ = [
    "AncillaAllocator",
    "CallSite",
    "CLIFFORD_GATES",
    "DependenceDAG",
    "GATES",
    "GateSpec",
    "Module",
    "ModuleBuilder",
    "GeneratorStream",
    "ListStream",
    "OpStream",
    "Operation",
    "Program",
    "ProgramBuilder",
    "ProgramValidationError",
    "QASM_PRIMITIVES",
    "QasmSyntaxError",
    "ScaffoldSyntaxError",
    "ScaffoldWarning",
    "SourceLocation",
    "Qubit",
    "QubitRegister",
    "ROTATION_GATES",
    "Statement",
    "gate_spec",
    "inverse_gate",
    "is_primitive",
    "is_rotation",
    "emit_qasm",
    "parse_qasm",
    "parse_scaffold",
    "as_stream",
    "iter_chunks",
    "materialize",
]
