"""Hierarchical program IR: modules and programs.

The paper's toolflow keeps benchmarks *modular* rather than fully
unrolled: leaf modules contain only primitive gates and are scheduled
fine-grained; non-leaf modules mix gates with calls to other modules and
are scheduled coarse-grained as blackboxes (Sections 3.1 and 4.3). This
module defines that IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .operation import CallSite, Operation, Statement
from .qubits import Qubit
from .source import SourceLocation

__all__ = ["Module", "Program", "ProgramValidationError"]


class ProgramValidationError(ValueError):
    """Raised when a program violates a structural invariant."""


@dataclass
class Module:
    """A quantum procedure: formal qubit parameters plus a statement body.

    Attributes:
        name: unique module name within its program.
        params: formal qubit parameters (bound positionally at call sites).
        body: ordered statements (:class:`Operation` / :class:`CallSite`).
        loc: source position of the module header, when the module came
            from a front-end. Non-comparing.
    """

    name: str
    params: Tuple[Qubit, ...] = ()
    body: List[Statement] = field(default_factory=list)
    loc: Optional[SourceLocation] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        self.params = tuple(self.params)
        if len(set(self.params)) != len(self.params):
            raise ProgramValidationError(
                f"module {self.name!r} has duplicate formal parameters"
            )

    # -- structure queries -------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True if the body contains no calls (gates only, Section 3.1)."""
        return not any(isinstance(s, CallSite) for s in self.body)

    def operations(self) -> Iterator[Operation]:
        """Iterate the gate operations in the body, in order."""
        for stmt in self.body:
            if isinstance(stmt, Operation):
                yield stmt

    def calls(self) -> Iterator[CallSite]:
        """Iterate the call sites in the body, in order."""
        for stmt in self.body:
            if isinstance(stmt, CallSite):
                yield stmt

    def callees(self) -> Set[str]:
        """Names of modules this module calls (deduplicated)."""
        return {c.callee for c in self.calls()}

    def qubits(self) -> List[Qubit]:
        """All distinct qubits referenced by the body or the parameter
        list, in first-reference order."""
        seen: Dict[Qubit, None] = {}
        for q in self.params:
            seen.setdefault(q)
        for stmt in self.body:
            operands = stmt.qubits if isinstance(stmt, Operation) else stmt.args
            for q in operands:
                seen.setdefault(q)
        return list(seen)

    @property
    def direct_gate_count(self) -> int:
        """Number of gate operations directly in this body (calls not
        expanded)."""
        return sum(1 for _ in self.operations())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "non-leaf"
        return (
            f"Module({self.name!r}, {kind}, {len(self.body)} stmts, "
            f"{len(self.params)} params)"
        )


class Program:
    """A collection of modules with a designated entry point.

    The call graph must be acyclic (quantum programs have classically
    known, bounded control flow — Section 3.1), call arities must match,
    and every callee must exist. :meth:`validate` enforces all of this
    and is called on construction.
    """

    def __init__(self, modules: Iterable[Module], entry: str):
        self.modules: Dict[str, Module] = {}
        for m in modules:
            if m.name in self.modules:
                raise ProgramValidationError(
                    f"duplicate module name {m.name!r}"
                )
            self.modules[m.name] = m
        self.entry = entry
        self.validate()

    # -- access --------------------------------------------------------

    def module(self, name: str) -> Module:
        try:
            return self.modules[name]
        except KeyError:
            raise KeyError(f"no module named {name!r}") from None

    @property
    def entry_module(self) -> Module:
        return self.modules[self.entry]

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)

    def leaf_modules(self) -> List[Module]:
        """Modules whose bodies are gates only."""
        return [m for m in self.modules.values() if m.is_leaf]

    def nonleaf_modules(self) -> List[Module]:
        """Modules containing at least one call."""
        return [m for m in self.modules.values() if not m.is_leaf]

    # -- call-graph analyses --------------------------------------------

    def call_graph(self) -> Dict[str, Set[str]]:
        """Adjacency view of the call graph: module name -> callee
        names. Covers every module, reachable or not."""
        return {name: mod.callees() for name, mod in self.modules.items()}

    def callers(self) -> Dict[str, Set[str]]:
        """Reverse call graph: module name -> names of the modules
        that call it (the entry — and any unreachable root — maps to
        an empty set)."""
        rev: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for name, mod in self.modules.items():
            for callee in mod.callees():
                rev[callee].add(name)
        return rev

    def reachable(self) -> Set[str]:
        """Module names reachable from the entry point."""
        seen: Set[str] = set()
        stack = [self.entry]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.modules[name].callees() - seen)
        return seen

    def topological_order(self) -> List[str]:
        """Module names ordered callees-first (leaves before callers).

        Only reachable modules are included. Raises
        :class:`ProgramValidationError` on a call cycle.
        """
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str, chain: Tuple[str, ...]) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(chain + (name,))
                raise ProgramValidationError(
                    f"recursive module calls are not allowed: {cycle}"
                )
            state[name] = 0
            for callee in sorted(self.modules[name].callees()):
                visit(callee, chain + (name,))
            state[name] = 1
            order.append(name)

        visit(self.entry, ())
        return order

    def call_depth(self) -> Dict[str, int]:
        """Depth of each reachable module in the call tree (entry = 0)."""
        depth = {self.entry: 0}
        for name in reversed(self.topological_order()):
            d = depth.get(name)
            if d is None:
                continue
            for callee in self.modules[name].callees():
                prev = depth.get(callee)
                if prev is None or d + 1 > prev:
                    depth[callee] = d + 1
        return depth

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise on violation."""
        if self.entry not in self.modules:
            raise ProgramValidationError(
                f"entry module {self.entry!r} does not exist"
            )
        for mod in self.modules.values():
            for call in mod.calls():
                callee = self.modules.get(call.callee)
                if callee is None:
                    raise ProgramValidationError(
                        f"module {mod.name!r} calls unknown module "
                        f"{call.callee!r}"
                    )
                if len(call.args) != len(callee.params):
                    raise ProgramValidationError(
                        f"module {mod.name!r} calls {call.callee!r} with "
                        f"{len(call.args)} args; expected "
                        f"{len(callee.params)}"
                    )
        # Raises on cycles.
        self.topological_order()

    def with_modules(self, replacements: Dict[str, Module]) -> "Program":
        """A new program with some modules replaced (same entry)."""
        merged = dict(self.modules)
        merged.update(replacements)
        return Program(merged.values(), self.entry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Program(entry={self.entry!r}, {len(self.modules)} modules, "
            f"{len(self.leaf_modules())} leaves)"
        )
