"""IR statements: gate operations and module calls.

A module body is a list of statements, each either an :class:`Operation`
(a quantum gate applied to concrete qubit operands) or a :class:`CallSite`
(an invocation of another module, optionally iterated — the IR-level
encoding of a classically-controlled loop whose trip count is known at
compile time, which is the common case for quantum benchmarks per
Section 3.1 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from .gates import gate_spec
from .qubits import Qubit
from .source import SourceLocation

__all__ = ["Operation", "CallSite", "Statement"]


@dataclass(frozen=True)
class Operation:
    """A quantum gate applied to specific qubits.

    Operations are immutable value objects; their position in a module
    body (the statement index) is what gives them identity for the
    scheduler's dependence DAG.

    Attributes:
        gate: gate mnemonic, must exist in :data:`repro.core.gates.GATES`.
        qubits: operand tuple; length must equal the gate's arity, and
            operands must be distinct (a gate cannot use one qubit twice).
        angle: rotation angle in radians; required iff the gate is
            parametric.
        loc: originating source position, when the operation came from a
            front-end. Non-comparing: it never affects equality/hashing.
    """

    gate: str
    qubits: Tuple[Qubit, ...]
    angle: Optional[float] = None
    loc: Optional[SourceLocation] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        spec = gate_spec(self.gate)
        if len(self.qubits) != spec.arity:
            raise ValueError(
                f"{self.gate} expects {spec.arity} operand(s), "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(
                f"{self.gate} operands must be distinct, got {self.qubits}"
            )
        if spec.takes_angle:
            if self.angle is None:
                raise ValueError(f"{self.gate} requires an angle")
            if not math.isfinite(self.angle):
                raise ValueError(f"{self.gate} angle must be finite")
        elif self.angle is not None:
            raise ValueError(f"{self.gate} does not take an angle")

    @property
    def arity(self) -> int:
        return len(self.qubits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ",".join(map(repr, self.qubits))
        if self.angle is not None:
            return f"{self.gate}({args};{self.angle:.6g})"
        return f"{self.gate}({args})"


@dataclass(frozen=True)
class CallSite:
    """An invocation of another module.

    Attributes:
        callee: name of the called module.
        args: actual qubit arguments, bound positionally to the callee's
            formal parameters.
        iterations: number of back-to-back repetitions of the call; a
            compact encoding of compile-time-known loops so that
            paper-scale programs (up to 10^12 gates) never have to be
            unrolled (Section 3.1). Must be >= 1.
        loc: originating source position, when the call came from a
            front-end. Non-comparing: it never affects equality/hashing.
    """

    callee: str
    args: Tuple[Qubit, ...]
    iterations: int = 1
    loc: Optional[SourceLocation] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        if len(set(self.args)) != len(self.args):
            raise ValueError(
                f"call to {self.callee!r} has duplicate qubit args: "
                f"{self.args}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ",".join(map(repr, self.args))
        reps = f" x{self.iterations}" if self.iterations > 1 else ""
        return f"call {self.callee}({args}){reps}"


Statement = Union[Operation, CallSite]
