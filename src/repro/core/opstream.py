"""Lazy operation streams for paper-scale leaf bodies.

The paper's benchmarks run at 10^7..10^12 gates; materializing a leaf's
full operation list before scheduling caps the pipeline orders of
magnitude below that. An :class:`OpStream` is a *replayable* source of
:class:`~repro.core.operation.Operation` objects: iterating it yields the
leaf's ops one at a time, in program order, and a fresh iteration always
replays the identical sequence (the streaming pipeline consumes a leaf
more than once — once per candidate width, plus movement derivation).

Replayability is the load-bearing contract: the windowed scheduler
(:mod:`repro.sched.stream`) promises bit-identical schedules to the
materialized fast path, which it can only do if every pass over the
stream observes the same ops in the same order. Streams are therefore
built from pure *factories* (zero-argument callables returning a fresh
iterator), never from half-consumed generators.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from .operation import Operation

__all__ = [
    "OpStream",
    "ListStream",
    "GeneratorStream",
    "as_stream",
    "iter_chunks",
    "materialize",
]


class OpStream:
    """Abstract replayable stream of operations.

    Subclasses implement :meth:`__iter__` to yield ``Operation`` objects
    in program order; every fresh iteration must replay the identical
    sequence. ``length_hint`` is advisory (``None`` = unknown) and used
    only for progress reporting and preallocation, never correctness.
    """

    length_hint: Optional[int] = None

    def __iter__(self) -> Iterator[Operation]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:
        if self.length_hint is None:
            raise TypeError("stream length unknown (length_hint is None)")
        return self.length_hint


class ListStream(OpStream):
    """A stream over an already-materialized operation sequence."""

    def __init__(self, ops: Sequence[Operation]):
        self._ops = ops
        self.length_hint = len(ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)


class GeneratorStream(OpStream):
    """A stream backed by a generator *factory*.

    ``factory`` must be a zero-argument callable returning a fresh
    iterator over the same op sequence each call — that is what makes
    the stream replayable. Passing an already-started generator is a
    bug the first replay would silently corrupt, so iteration calls the
    factory anew every time.
    """

    def __init__(
        self,
        factory: Callable[[], Iterator[Operation]],
        length_hint: Optional[int] = None,
    ):
        self._factory = factory
        self.length_hint = length_hint

    def __iter__(self) -> Iterator[Operation]:
        return self._factory()


def as_stream(source) -> OpStream:
    """Coerce a stream source to an :class:`OpStream`.

    Accepts an existing stream (returned as-is), a module (its body must
    be gates only), or any operation sequence.
    """
    if isinstance(source, OpStream):
        return source
    # Late import: core.module does not depend on opstream.
    from .module import Module

    if isinstance(source, Module):
        if not source.is_leaf:
            raise ValueError(
                f"module {source.name!r} is not a leaf; "
                "flatten it first (passes.stream.stream_flatten)"
            )
        return ListStream(source.body)
    return ListStream(list(source))


def iter_chunks(
    stream: OpStream, window: Optional[int]
) -> Iterator[List[Operation]]:
    """Iterate ``stream`` in chunks of at most ``window`` ops.

    ``window=None`` is the unbounded window: the whole stream
    materializes as one chunk (the memory profile of the materialized
    pipeline). A finite window bounds how many ``Operation`` objects are
    ever alive at once; the consumer must drop each chunk before
    requesting the next for the bound to hold.
    """
    if window is None:
        ops = list(stream)
        if ops:
            yield ops
        return
    if window < 1:
        raise ValueError(f"window must be >= 1 or None, got {window}")
    chunk: List[Operation] = []
    for op in stream:
        chunk.append(op)
        if len(chunk) >= window:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def materialize(stream: OpStream) -> List[Operation]:
    """Fully expand a stream (small inputs / tests only)."""
    return list(stream)
