"""Source locations for front-end constructs.

The Scaffold front-end (and, in principle, any other surface syntax)
attaches a :class:`SourceLocation` to the IR statements it produces so
that later passes — most importantly the static analyzer in
:mod:`repro.analysis` — can anchor diagnostics back to the line and
column the user wrote. Locations are carried on non-comparing fields:
two operations that differ only in where they were written are still
equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SourceLocation"]


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in a source file: 1-based line, 1-based column.

    Attributes:
        line: 1-based line number.
        column: 1-based column number (0 when unknown).
        file: originating file name, if known.
    """

    line: int
    column: int = 0
    file: Optional[str] = None

    def __str__(self) -> str:
        prefix = f"{self.file}:" if self.file else ""
        if self.column:
            return f"{prefix}{self.line}:{self.column}"
        return f"{prefix}{self.line}"

    def describe(self) -> str:
        """Human-oriented rendering (``line 4, col 7``)."""
        where = f"line {self.line}"
        if self.column:
            where += f", col {self.column}"
        if self.file:
            where = f"{self.file}: {where}"
        return where

    def to_dict(self) -> dict:
        out = {"line": self.line, "column": self.column}
        if self.file:
            out["file"] = self.file
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SourceLocation":
        """Inverse of :meth:`to_dict`."""
        return cls(
            line=data["line"],
            column=data.get("column", 0),
            file=data.get("file"),
        )
