"""Dependence DAG construction and longest-path analyses.

Because of the no-cloning theorem, *any* shared operand between two
operations creates a data dependency (Section 3.1.1 of the paper): there
is no read/write distinction, so the operations touching a given qubit
form a strict chain in program order. The DAG therefore has one edge from
each operation to the next operation on each of its operands.

The DAG also provides the longest-path machinery used by LPFS
(Section 4.2): node *heights* (longest weighted path from the node to any
sink) are static under scheduler consumption — removing already-scheduled
nodes never changes the height of an unscheduled node, because all
descendants of an unscheduled node are themselves unscheduled. LPFS'
``getNextLongestPath`` exploits this by greedily following maximum-height
successors.

Construction is a single O(V+E) pass over the statement list with a
per-qubit last-writer map; the heights/depths/slack analyses are
computed once and memoized (they are static for a given DAG, and the
schedulers consult slack per ready-set decision). The pre-optimization
construction is kept in :mod:`repro.sched._reference` and produces
identical ``preds``/``succs`` arrays — ``tests/test_differential.py``
checks that on generated programs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..fastpath import fast_path_enabled
from .operation import Operation, Statement
from .qubits import Qubit

__all__ = ["DependenceDAG"]


def _operands(stmt: Statement) -> Tuple[Qubit, ...]:
    return stmt.qubits if isinstance(stmt, Operation) else stmt.args


def _build_edges_fast(
    statements: List[Statement],
) -> Tuple[List[List[int]], List[List[int]]]:
    """Single-pass edge construction with a per-qubit last-writer map.

    Operations carry 1-3 operands, so direct-predecessor lists are
    deduplicated inline (an ``in`` test on a <=3 element list) instead
    of through a per-node set + sort.
    """
    n = len(statements)
    preds: List[List[int]] = [[] for _ in range(n)]
    succs: List[List[int]] = [[] for _ in range(n)]
    last_touch: Dict[Qubit, int] = {}
    get_last = last_touch.get
    for i, stmt in enumerate(statements):
        operands = (
            stmt.qubits if stmt.__class__ is Operation else _operands(stmt)
        )
        plist = preds[i]
        for q in operands:
            prev = get_last(q)
            if prev is not None and prev not in plist:
                plist.append(prev)
            last_touch[q] = i
        if len(plist) > 1:
            plist.sort()
        for p in plist:
            succs[p].append(i)
    return preds, succs


class DependenceDAG:
    """Data-dependence DAG over a statement list.

    Nodes are statement indices ``0..n-1``. Edges point from earlier to
    later statements sharing at least one qubit operand, restricted to
    *adjacent* uses (the chain per qubit), which preserves the full
    transitive dependence relation.

    Attributes:
        statements: the underlying statements, in program order.
        preds: ``preds[i]`` — indices of direct predecessors of node i.
        succs: ``succs[i]`` — indices of direct successors of node i.
        weights: per-node schedule weight (1 for gates by default; the
            coarse scheduler substitutes blackbox lengths).
    """

    def __init__(
        self,
        statements: Sequence[Statement],
        weights: Optional[Sequence[int]] = None,
    ):
        self.statements: List[Statement] = list(statements)
        n = len(self.statements)
        if weights is None:
            self.weights: List[int] = [1] * n
        else:
            if len(weights) != n:
                raise ValueError(
                    f"{len(weights)} weights for {n} statements"
                )
            self.weights = list(weights)
        if fast_path_enabled():
            self.preds, self.succs = _build_edges_fast(self.statements)
        else:
            from ..sched._reference import dag_edges_reference

            self.preds, self.succs = dag_edges_reference(self.statements)
        self._heights: Optional[List[int]] = None
        self._depths: Optional[List[int]] = None
        self._slack: Optional[List[int]] = None

    # -- basic shape ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.statements)

    @property
    def n(self) -> int:
        return len(self.statements)

    def indegrees(self) -> List[int]:
        """Fresh in-degree array (consumed by list schedulers)."""
        return [len(p) for p in self.preds]

    def sources(self) -> List[int]:
        """Nodes with no predecessors (the paper's ``G.top()``)."""
        return [i for i, p in enumerate(self.preds) if not p]

    def sinks(self) -> List[int]:
        """Nodes with no successors."""
        return [i for i, s in enumerate(self.succs) if not s]

    # -- longest-path analyses ------------------------------------------

    def heights(self) -> List[int]:
        """Longest weighted path from each node to any sink, inclusive of
        the node's own weight. Static across scheduler consumption."""
        if self._heights is None:
            n = len(self.statements)
            h = [0] * n
            weights = self.weights
            succs = self.succs
            for i in range(n - 1, -1, -1):
                below = 0
                for s in succs[i]:
                    hs = h[s]
                    if hs > below:
                        below = hs
                h[i] = weights[i] + below
            self._heights = h
        return self._heights

    def depths(self) -> List[int]:
        """Longest weighted path from any source to each node, inclusive
        of the node's own weight (the paper's distance-from-top tag)."""
        if self._depths is None:
            n = len(self.statements)
            d = [0] * n
            weights = self.weights
            preds = self.preds
            for i in range(n):
                above = 0
                for p in preds[i]:
                    dp = d[p]
                    if dp > above:
                        above = dp
                d[i] = weights[i] + above
            self._depths = d
        return self._depths

    def critical_path_length(self) -> int:
        """Weighted length of the longest dependence chain."""
        return max(self.depths(), default=0)

    def critical_path(self) -> List[int]:
        """One longest dependence chain, as node indices in order.

        Implements the paper's longest-path procedure: tag every node
        with its distance from the top, find the largest depth at the
        bottom, then trace the path back.
        """
        if self.n == 0:
            return []
        depths = self.depths()
        node = max(range(self.n), key=depths.__getitem__)
        path = [node]
        while self.preds[node]:
            node = max(self.preds[node], key=depths.__getitem__)
            path.append(node)
        path.reverse()
        return path

    def longest_path_from(self, start: int) -> List[int]:
        """The longest downward path beginning at ``start``, following
        maximum-height successors (ties broken by program order)."""
        heights = self.heights()
        path = [start]
        node = start
        while self.succs[node]:
            node = max(
                self.succs[node], key=lambda s: (heights[s], -s)
            )
            path.append(node)
        return path

    def next_longest_path(self, ready: Iterable[int]) -> List[int]:
        """LPFS' ``getNextLongestPath``: among the ``ready`` nodes, pick
        the one heading the longest remaining chain and return that
        chain. Returns ``[]`` if ``ready`` is empty."""
        ready = list(ready)
        if not ready:
            return []
        heights = self.heights()
        start = max(ready, key=lambda i: (heights[i], -i))
        return self.longest_path_from(start)

    # -- misc -------------------------------------------------------------

    def qubit_chains(self) -> Dict[Qubit, List[int]]:
        """For each qubit, the ordered node indices touching it."""
        chains: Dict[Qubit, List[int]] = {}
        for i, stmt in enumerate(self.statements):
            for q in _operands(stmt):
                chains.setdefault(q, []).append(i)
        return chains

    def slack(self) -> List[int]:
        """Per-node slack: ``critical_path - (depth + height - weight)``.

        Zero for nodes on a critical path; larger for nodes whose
        scheduling can be deferred. Used by RCP's priority term.
        Memoized: slack is static for a given DAG.
        """
        if self._slack is None:
            cp = self.critical_path_length()
            d, h, w = self.depths(), self.heights(), self.weights
            self._slack = [
                cp - (d[i] + h[i] - w[i]) for i in range(self.n)
            ]
        return self._slack

    def validate_acyclic(self) -> None:
        """Sanity check: edges only point forward in program order (the
        construction guarantees this; kept for defensive testing)."""
        for i, succ in enumerate(self.succs):
            for s in succ:
                if s <= i:
                    raise AssertionError(
                        f"backward edge {i} -> {s} in dependence DAG"
                    )
