"""Schedule data structures (Section 4, preamble).

"Schedules are stored as a list of sequential timesteps. Each timestep
consists of an array of k+1 SIMD regions. The 0th region contains a list
of the qubits that will be moved and their sources and destinations ...
The remaining SIMD regions contain an unsorted list of operations to be
performed in that region."

We follow that layout: a :class:`Timestep` holds ``k`` per-region node
lists (nodes are indices into the scheduled DAG's statement list) plus
the movement list for the epoch *preceding* the timestep; region 0 of
the paper is the ``moves`` field here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.dag import DependenceDAG
from ..core.operation import Operation
from ..core.qubits import Qubit

__all__ = [
    "Move",
    "Timestep",
    "Schedule",
    "ScheduleError",
    "ScheduleViolation",
]


class ScheduleError(Exception):
    """Raised when a schedule violates a Multi-SIMD execution invariant.

    Historically this subclassed :class:`AssertionError`, which made the
    checks vanish under ``python -O``; it is now a plain
    :class:`Exception` (``ScheduleAssertionError`` remains as a
    deprecated alias).
    """


#: Deprecated alias for the pre-1.1 AssertionError-based name.
ScheduleAssertionError = ScheduleError


@dataclass(frozen=True)
class ScheduleViolation:
    """One structural invariant violation found in a schedule.

    Attributes:
        code: stable diagnostic code (``QL201`` ...), shared with the
            :mod:`repro.analysis` vocabulary.
        message: human-readable description.
        timestep: offending timestep index, if applicable.
    """

    code: str
    message: str
    timestep: Optional[int] = None


@dataclass(frozen=True)
class Move:
    """One qubit movement within a movement epoch.

    Attributes:
        qubit: the qubit being moved.
        src / dst: locations — ``("global",)``, ``("region", r)`` or
            ``("local", r)``.
        kind: ``"teleport"`` (4-cycle epoch) or ``"local"`` (1-cycle
            ballistic move to/from a region's scratchpad).
    """

    qubit: Qubit
    src: tuple
    dst: tuple
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("teleport", "local"):
            raise ValueError(f"unknown move kind {self.kind!r}")
        if self.src == self.dst:
            raise ValueError(f"degenerate move of {self.qubit!r}")


@dataclass
class Timestep:
    """One logical timestep: per-region op lists plus the preceding
    movement epoch."""

    regions: List[List[int]]
    moves: List[Move] = field(default_factory=list)

    def active_regions(self) -> List[int]:
        """Region indices that execute at least one op this timestep."""
        return [r for r, ops in enumerate(self.regions) if ops]

    @property
    def width(self) -> int:
        """Number of simultaneously active regions."""
        return len(self.active_regions())

    def all_nodes(self) -> List[int]:
        return [n for ops in self.regions for n in ops]


class Schedule:
    """A fine-grained schedule of one module's DAG on a Multi-SIMD(k,d)
    machine.

    Attributes:
        dag: the scheduled dependence DAG.
        k: region count the schedule was built for.
        d: per-region data-parallel width limit (None = unbounded).
        timesteps: the schedule body.
        algorithm: name of the producing scheduler (for reports).
    """

    def __init__(
        self,
        dag: DependenceDAG,
        k: int,
        d: Optional[int] = None,
        algorithm: str = "",
    ):
        self.dag = dag
        self.k = k
        self.d = d
        self.algorithm = algorithm
        self.timesteps: List[Timestep] = []

    # -- construction -----------------------------------------------------

    def append_timestep(self) -> Timestep:
        ts = Timestep(regions=[[] for _ in range(self.k)])
        self.timesteps.append(ts)
        return ts

    # -- shape -----------------------------------------------------------

    @property
    def length(self) -> int:
        """Schedule length in op timesteps (communication excluded)."""
        return len(self.timesteps)

    @property
    def op_count(self) -> int:
        return self.dag.n

    @property
    def max_width(self) -> int:
        """Highest degree of region parallelism in any timestep — the
        blackbox *width* the coarse scheduler uses (Section 4.3)."""
        return max((ts.width for ts in self.timesteps), default=0)

    @property
    def total_moves(self) -> int:
        return sum(len(ts.moves) for ts in self.timesteps)

    @property
    def teleport_moves(self) -> int:
        return sum(
            1
            for ts in self.timesteps
            for m in ts.moves
            if m.kind == "teleport"
        )

    @property
    def local_moves(self) -> int:
        return sum(
            1 for ts in self.timesteps for m in ts.moves if m.kind == "local"
        )

    def placement(self) -> Dict[int, Tuple[int, int]]:
        """Map of DAG node -> (timestep, region)."""
        out: Dict[int, Tuple[int, int]] = {}
        for t, ts in enumerate(self.timesteps):
            for r, nodes in enumerate(ts.regions):
                for n in nodes:
                    out[n] = (t, r)
        return out

    def operation(self, node: int) -> Operation:
        stmt = self.dag.statements[node]
        if not isinstance(stmt, Operation):
            raise TypeError(f"node {node} is not an Operation")
        return stmt

    # -- validation ------------------------------------------------------

    def iter_violations(self) -> Iterator[ScheduleViolation]:
        """Yield *every* structural invariant violation, in order.

        The checks cover:

        * every DAG node scheduled exactly once;
        * dependencies strictly ordered across timesteps;
        * at most ``k`` regions used, each with at most ``d`` ops;
        * one gate *type* per region per timestep (SIMD semantics);
        * no qubit touched twice within a timestep.

        :meth:`validate` raises on the first violation; the static
        auditor (:func:`repro.analysis.audit_schedule`) drains the
        full stream into diagnostics.
        """
        placed = self.placement()
        occurrences: Dict[int, int] = {}
        for ts in self.timesteps:
            for n in ts.all_nodes():
                occurrences[n] = occurrences.get(n, 0) + 1
        if len(placed) != self.dag.n:
            missing = set(range(self.dag.n)) - set(placed)
            yield ScheduleViolation(
                "QL201",
                f"{len(missing)} ops unscheduled "
                f"(e.g. {sorted(missing)[:5]})",
            )
        for n, count in sorted(occurrences.items()):
            if count > 1:
                yield ScheduleViolation(
                    "QL201",
                    f"node {n} scheduled {count} times",
                )
        for node in range(self.dag.n):
            if node not in placed:
                continue
            t, _ = placed[node]
            for p in self.dag.preds[node]:
                if p not in placed:
                    continue
                tp, _ = placed[p]
                if tp >= t:
                    yield ScheduleViolation(
                        "QL202",
                        f"dependence violated: node {p} (ts {tp}) must "
                        f"precede node {node} (ts {t})",
                        timestep=t,
                    )
        for t, ts in enumerate(self.timesteps):
            if len(ts.regions) > self.k:
                yield ScheduleViolation(
                    "QL203",
                    f"timestep {t} uses {len(ts.regions)} regions "
                    f"(k={self.k})",
                    timestep=t,
                )
            seen_qubits: Dict[Qubit, int] = {}
            for r, nodes in enumerate(ts.regions):
                if self.d is not None and len(nodes) > self.d:
                    yield ScheduleViolation(
                        "QL203",
                        f"timestep {t} region {r} holds {len(nodes)} "
                        f"ops (d={self.d})",
                        timestep=t,
                    )
                gate_types = {self.operation(n).gate for n in nodes}
                if len(gate_types) > 1:
                    yield ScheduleViolation(
                        "QL204",
                        f"timestep {t} region {r} mixes gate types "
                        f"{sorted(gate_types)} (SIMD requires one)",
                        timestep=t,
                    )
                for n in nodes:
                    for q in self.operation(n).qubits:
                        if q in seen_qubits:
                            yield ScheduleViolation(
                                "QL205",
                                f"timestep {t}: qubit {q!r} used by "
                                f"nodes {seen_qubits[q]} and {n}",
                                timestep=t,
                            )
                        seen_qubits[q] = n

    def validate(self) -> None:
        """Check every Multi-SIMD execution invariant; raise
        :class:`ScheduleError` on the first violation found."""
        for violation in self.iter_violations():
            raise ScheduleError(violation.message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.algorithm or 'unknown'}, k={self.k}, "
            f"len={self.length}, ops={self.op_count}, "
            f"width={self.max_width})"
        )
