"""Schedule data structures (Section 4, preamble).

"Schedules are stored as a list of sequential timesteps. Each timestep
consists of an array of k+1 SIMD regions. The 0th region contains a list
of the qubits that will be moved and their sources and destinations ...
The remaining SIMD regions contain an unsorted list of operations to be
performed in that region."

We follow that layout: a :class:`Timestep` holds ``k`` per-region node
lists (nodes are indices into the scheduled DAG's statement list) plus
the movement list for the epoch *preceding* the timestep; region 0 of
the paper is the ``moves`` field here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dag import DependenceDAG
from ..core.operation import Operation
from ..core.qubits import Qubit

__all__ = ["Move", "Timestep", "Schedule", "ScheduleError"]


class ScheduleError(AssertionError):
    """Raised when a schedule violates a Multi-SIMD execution invariant."""


@dataclass(frozen=True)
class Move:
    """One qubit movement within a movement epoch.

    Attributes:
        qubit: the qubit being moved.
        src / dst: locations — ``("global",)``, ``("region", r)`` or
            ``("local", r)``.
        kind: ``"teleport"`` (4-cycle epoch) or ``"local"`` (1-cycle
            ballistic move to/from a region's scratchpad).
    """

    qubit: Qubit
    src: tuple
    dst: tuple
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("teleport", "local"):
            raise ValueError(f"unknown move kind {self.kind!r}")
        if self.src == self.dst:
            raise ValueError(f"degenerate move of {self.qubit!r}")


@dataclass
class Timestep:
    """One logical timestep: per-region op lists plus the preceding
    movement epoch."""

    regions: List[List[int]]
    moves: List[Move] = field(default_factory=list)

    def active_regions(self) -> List[int]:
        """Region indices that execute at least one op this timestep."""
        return [r for r, ops in enumerate(self.regions) if ops]

    @property
    def width(self) -> int:
        """Number of simultaneously active regions."""
        return len(self.active_regions())

    def all_nodes(self) -> List[int]:
        return [n for ops in self.regions for n in ops]


class Schedule:
    """A fine-grained schedule of one module's DAG on a Multi-SIMD(k,d)
    machine.

    Attributes:
        dag: the scheduled dependence DAG.
        k: region count the schedule was built for.
        d: per-region data-parallel width limit (None = unbounded).
        timesteps: the schedule body.
        algorithm: name of the producing scheduler (for reports).
    """

    def __init__(
        self,
        dag: DependenceDAG,
        k: int,
        d: Optional[int] = None,
        algorithm: str = "",
    ):
        self.dag = dag
        self.k = k
        self.d = d
        self.algorithm = algorithm
        self.timesteps: List[Timestep] = []

    # -- construction -----------------------------------------------------

    def append_timestep(self) -> Timestep:
        ts = Timestep(regions=[[] for _ in range(self.k)])
        self.timesteps.append(ts)
        return ts

    # -- shape -----------------------------------------------------------

    @property
    def length(self) -> int:
        """Schedule length in op timesteps (communication excluded)."""
        return len(self.timesteps)

    @property
    def op_count(self) -> int:
        return self.dag.n

    @property
    def max_width(self) -> int:
        """Highest degree of region parallelism in any timestep — the
        blackbox *width* the coarse scheduler uses (Section 4.3)."""
        return max((ts.width for ts in self.timesteps), default=0)

    @property
    def total_moves(self) -> int:
        return sum(len(ts.moves) for ts in self.timesteps)

    @property
    def teleport_moves(self) -> int:
        return sum(
            1
            for ts in self.timesteps
            for m in ts.moves
            if m.kind == "teleport"
        )

    @property
    def local_moves(self) -> int:
        return sum(
            1 for ts in self.timesteps for m in ts.moves if m.kind == "local"
        )

    def placement(self) -> Dict[int, Tuple[int, int]]:
        """Map of DAG node -> (timestep, region)."""
        out: Dict[int, Tuple[int, int]] = {}
        for t, ts in enumerate(self.timesteps):
            for r, nodes in enumerate(ts.regions):
                for n in nodes:
                    out[n] = (t, r)
        return out

    def operation(self, node: int) -> Operation:
        stmt = self.dag.statements[node]
        if not isinstance(stmt, Operation):
            raise TypeError(f"node {node} is not an Operation")
        return stmt

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Check every Multi-SIMD execution invariant:

        * every DAG node scheduled exactly once;
        * dependencies strictly ordered across timesteps;
        * at most ``k`` regions used, each with at most ``d`` ops;
        * one gate *type* per region per timestep (SIMD semantics);
        * no qubit touched twice within a timestep.
        """
        placed = self.placement()
        if len(placed) != self.dag.n:
            missing = set(range(self.dag.n)) - set(placed)
            raise ScheduleError(
                f"{len(missing)} ops unscheduled (e.g. {sorted(missing)[:5]})"
            )
        for node in range(self.dag.n):
            t, _ = placed[node]
            for p in self.dag.preds[node]:
                tp, _ = placed[p]
                if tp >= t:
                    raise ScheduleError(
                        f"dependence violated: node {p} (ts {tp}) must "
                        f"precede node {node} (ts {t})"
                    )
        for t, ts in enumerate(self.timesteps):
            if len(ts.regions) > self.k:
                raise ScheduleError(
                    f"timestep {t} uses {len(ts.regions)} regions (k={self.k})"
                )
            seen_qubits: Dict[Qubit, int] = {}
            for r, nodes in enumerate(ts.regions):
                if self.d is not None and len(nodes) > self.d:
                    raise ScheduleError(
                        f"timestep {t} region {r} holds {len(nodes)} ops "
                        f"(d={self.d})"
                    )
                gate_types = {self.operation(n).gate for n in nodes}
                if len(gate_types) > 1:
                    raise ScheduleError(
                        f"timestep {t} region {r} mixes gate types "
                        f"{sorted(gate_types)} (SIMD requires one)"
                    )
                for n in nodes:
                    for q in self.operation(n).qubits:
                        if q in seen_qubits:
                            raise ScheduleError(
                                f"timestep {t}: qubit {q!r} used by nodes "
                                f"{seen_qubits[q]} and {n}"
                            )
                        seen_qubits[q] = n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.algorithm or 'unknown'}, k={self.k}, "
            f"len={self.length}, ops={self.op_count}, "
            f"width={self.max_width})"
        )
