"""Hierarchical coarse-grained scheduling — the paper's Algorithm 3.

Benchmarks at 10^7..10^12 gates cannot be flattened and fine-scheduled
whole. Instead, leaf modules are fine-scheduled (RCP / LPFS) and treated
as *blackboxes* with a length (schedule cycles) and width (regions
used); non-leaf modules are then list-scheduled over their statements,
packing parallelizable blackboxes side by side within the ``k``-region
constraint.

The key refinement is *flexible blackbox dimensions*: each callee is
pre-scheduled at widths ``1..k``, and the list scheduler chooses, per
call site, the width that minimises the call's finish time given
current region availability — the practical equivalent of Algorithm 3's
"try all combinations of possible widths" step. Statements are
processed in criticality (height) order, which is topologically
consistent, and each starts at ``max(te, region availability)`` exactly
as Algorithm 3's ``timestep(Fi) = max(totalL+1, te)`` allows staggered
starts within a parallel set.

Cost parameterisation: Figure 6's parallelism-only view charges gates 1
cycle and call boundaries nothing; the communication-aware views
(Figures 7-9) charge non-call ops ``1 + 4`` (execute + movement) and
each call boundary one teleport epoch for the active-qubit flush to
global memory (Section 3.2). Callers select these via ``gate_cost`` /
``call_overhead`` and by supplying per-width callee costs measured in
the matching metric.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dag import DependenceDAG
from ..core.module import Module
from ..core.operation import Operation
from ..fastpath import fast_path_enabled
from ..instrument import spanned

__all__ = [
    "Placement",
    "CoarseResult",
    "best_dim",
    "schedule_coarse",
    "coarse_length_profile",
]

#: width -> cost table for one blackbox.
Dims = Dict[int, int]


def best_dim(dims: Dims, budget: int) -> Tuple[int, int]:
    """The (width, cost) choice minimising cost within a width budget.

    Ties prefer the narrower width (cheaper to pack). Raises if no
    width fits the budget.
    """
    candidates = [(c, w) for w, c in dims.items() if w <= budget]
    if not candidates:
        raise ValueError(
            f"no blackbox width fits budget {budget} (have "
            f"{sorted(dims)})"
        )
    cost, width = min(candidates)
    return width, cost


@dataclass
class Placement:
    """Where one statement landed in the coarse schedule."""

    node: int
    start: int
    finish: int
    width: int


@dataclass
class CoarseResult:
    """Outcome of coarse-scheduling one (possibly non-leaf) module."""

    module: str
    k: int
    total_length: int
    total_width: int
    placements: List[Placement] = field(default_factory=list)

    @property
    def parallelized(self) -> int:
        """Statements that overlap in time with at least one other."""
        events = sorted(
            (p.start, p.finish, i) for i, p in enumerate(self.placements)
        )
        count = 0
        for i, p in enumerate(self.placements):
            for q in self.placements:
                if q is not p and q.start < p.finish and p.start < q.finish:
                    count += 1
                    break
        return count


class _Prepared:
    """The k-independent half of coarse scheduling, computed once.

    Dimension tables, the min-cost-weighted dependence DAG, heights and
    the criticality order do not depend on the region budget ``k``, so a
    multi-width profile (the toolflow schedules every non-leaf module at
    every candidate width, twice — once per cost metric) can share one
    preparation across all placements. Dimension dicts are shared: one
    ``{1: gate_cost}`` singleton for all direct ops and one scaled table
    per distinct (callee, iterations) pair, plus each table's
    width-sorted items and minimum width, precomputed so the placement
    inner loops never re-derive them.
    """

    __slots__ = ("name", "dims_of", "items_of", "minw_of", "dag", "order")

    def __init__(
        self,
        module: Module,
        callee_dims: Dict[str, Dims],
        gate_cost: int,
        call_overhead: int,
    ):
        stmts = module.body
        self.name = module.name
        dims_of: List[Dims] = []
        op_dims = {1: gate_cost}
        call_cache: Dict[Tuple[str, int], Dims] = {}
        for stmt in stmts:
            if isinstance(stmt, Operation):
                dims_of.append(op_dims)
                continue
            cache_key = (stmt.callee, stmt.iterations)
            dims = call_cache.get(cache_key)
            if dims is None:
                table = callee_dims.get(stmt.callee)
                if not table:
                    raise KeyError(
                        f"no dimensions for callee {stmt.callee!r}"
                    )
                iterations = stmt.iterations
                dims = call_cache[cache_key] = {
                    w: iterations * c + call_overhead
                    for w, c in table.items()
                }
            dims_of.append(dims)
        self.dims_of = dims_of
        items_cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        minw_cache: Dict[int, int] = {}
        items_of: List[Tuple[Tuple[int, int], ...]] = []
        minw_of: List[int] = []
        min_costs: List[int] = []
        cost_cache: Dict[int, int] = {}
        for dims in dims_of:
            key = id(dims)
            items = items_cache.get(key)
            if items is None:
                items = items_cache[key] = tuple(sorted(dims.items()))
                minw_cache[key] = min(dims)
                cost_cache[key] = min(dims.values())
            items_of.append(items)
            minw_of.append(minw_cache[key])
            min_costs.append(cost_cache[key])
        self.items_of = items_of
        self.minw_of = minw_of
        self.dag = DependenceDAG(stmts, weights=min_costs)
        heights = self.dag.heights()
        self.order = sorted(
            range(len(stmts)), key=lambda i: (-heights[i], i)
        )


def _place(prep: _Prepared, k: int, with_placements: bool = True):
    """Place ``prep``'s statements under a ``k``-region budget.

    Returns a :class:`CoarseResult`, or just the total length when
    ``with_placements`` is false (the multi-width profile only consumes
    lengths, and the peak-width sweep is the placement list's main
    cost).
    """
    dims_of = prep.dims_of
    items_of = prep.items_of
    minw_of = prep.minw_of
    order = prep.order
    preds = prep.dag.preds
    n = len(order)

    # Region pool: free times, kept sorted ascending (regions are
    # interchangeable, so only the multiset matters). Finish times are
    # indexed by node; None marks not-yet-placed.
    free = [0] * k
    finish: List[Optional[int]] = [None] * n
    placements: List[Placement] = []
    total_length = 0

    idx = 0
    while idx < n:
        node = order[idx]
        te = 0
        for p in preds[node]:
            f = finish[p]
            if f > te:
                te = f
        # Regions already free at te — the capacity a parallel set of
        # same-te siblings can share.
        avail = bisect_right(free, te)
        # Gather a contiguous run of siblings with the same earliest
        # start (their predecessors are all placed — height order
        # guarantees it) that fit within the available regions at their
        # narrowest widths. These get a joint width optimisation
        # (Algorithm 3's "try all combinations of possible widths").
        batch = [node]
        width_sum = minw_of[node]
        j = idx + 1
        while j < n and avail > 1:
            cand = order[j]
            te_c = 0
            for p in preds[cand]:
                f = finish[p]
                if f is None:
                    # Depends on an unplaced node (maybe the batch).
                    te_c = -1
                    break
                if f > te_c:
                    te_c = f
            if te_c != te:
                break
            w_min = minw_of[cand]
            if width_sum + w_min > avail:
                break
            batch.append(cand)
            width_sum += w_min
            j += 1

        if len(batch) == 1:
            # Lone statement: pick the width with the earliest finish,
            # allowing a start later than te if wider regions free up.
            best: Optional[Tuple[int, int, int, int]] = None
            for w, cost in items_of[node]:
                if w > k:
                    continue
                start = max(te, free[w - 1])
                fin = start + cost
                if best is None or (fin, w) < (best[0], best[1]):
                    best = (fin, w, start, cost)
            assert best is not None, "dims must contain width 1"
            fin, w, start, _ = best
            for i in range(w):
                if free[i] < fin:
                    free[i] = fin
            free.sort()
            finish[node] = fin
            if fin > total_length:
                total_length = fin
            if with_placements:
                placements.append(Placement(node, start, fin, w))
            idx += 1
            continue

        # Joint width optimisation over the batch within the regions
        # free at te.
        widths = _optimize_widths(batch, dims_of, avail)
        slot = 0
        for member in batch:
            w = widths[member]
            fin = te + dims_of[member][w]
            for _ in range(w):
                free[slot] = fin
                slot += 1
            finish[member] = fin
            if fin > total_length:
                total_length = fin
            if with_placements:
                placements.append(Placement(member, te, fin, w))
        free.sort()
        idx += len(batch)

    if not with_placements:
        return total_length
    total_width = _peak_width(placements)
    return CoarseResult(prep.name, k, total_length, total_width, placements)


@spanned("schedule:coarse")
def schedule_coarse(
    module: Module,
    callee_dims: Dict[str, Dims],
    k: int,
    gate_cost: int = 1,
    call_overhead: int = 0,
) -> CoarseResult:
    """Coarse-schedule ``module`` under a ``k``-region constraint.

    Args:
        module: the module to schedule.
        callee_dims: per-callee width->cost tables (from fine or prior
            coarse scheduling of the callees).
        k: region budget.
        gate_cost: cycles charged per direct (non-call) op.
        call_overhead: cycles added around each call (the active-qubit
            flush; 4 for communication-aware accounting, 0 otherwise).
    """
    if not fast_path_enabled():
        from ._reference import schedule_coarse_reference

        return schedule_coarse_reference(
            module, callee_dims, k, gate_cost, call_overhead
        )
    if not module.body:
        return CoarseResult(module.name, k, 0, 0, [])
    prep = _Prepared(module, callee_dims, gate_cost, call_overhead)
    return _place(prep, k)


@spanned("schedule:coarse")
def coarse_length_profile(
    module: Module,
    callee_dims: Dict[str, Dims],
    widths: Sequence[int],
    gate_cost: int = 1,
    call_overhead: int = 0,
) -> Dict[int, int]:
    """Total coarse-schedule length at each region budget in ``widths``.

    Equivalent to ``{w: schedule_coarse(...).total_length for w in
    widths}`` but on the fast path the k-independent preparation
    (dimension tables, weighted DAG, criticality order) is shared across
    all widths and placement lists are skipped.
    """
    if not fast_path_enabled():
        from ._reference import schedule_coarse_reference

        return {
            w: schedule_coarse_reference(
                module, callee_dims, w, gate_cost, call_overhead
            ).total_length
            for w in widths
        }
    if not module.body:
        return {w: 0 for w in widths}
    prep = _Prepared(module, callee_dims, gate_cost, call_overhead)
    return {w: _place(prep, w, with_placements=False) for w in widths}


def _optimize_widths(
    members: List[int], dims_of: List[Dims], budget: int
) -> Dict[int, int]:
    """Greedy joint width assignment: start every member at its
    narrowest width, then repeatedly widen whichever member currently
    bounds the set's length, while the region budget allows."""
    widths = {m: min(dims_of[m]) for m in members}

    def cost(m: int) -> int:
        return dims_of[m][widths[m]]

    while True:
        used = sum(widths.values())
        improved = False
        for m in sorted(members, key=cost, reverse=True):
            larger = [w for w in dims_of[m] if w > widths[m]]
            if not larger:
                continue
            nw = min(larger)
            if used - widths[m] + nw > budget:
                continue
            if dims_of[m][nw] >= cost(m):
                continue
            widths[m] = nw
            improved = True
            break
        if not improved:
            break
    return widths


def _peak_width(placements: Sequence[Placement]) -> int:
    """Maximum number of regions simultaneously occupied."""
    events: List[Tuple[int, int]] = []
    for p in placements:
        events.append((p.start, p.width))
        events.append((p.finish, -p.width))
    events.sort()
    peak = cur = 0
    for _, delta in events:
        cur += delta
        peak = max(peak, cur)
    return peak
