"""Schedule replay: execute a movement-annotated schedule against the
machine model and check every physical invariant.

``derive_movement`` *plans* qubit motion; this module independently
*replays* the plan, timestep by timestep, and verifies that the
execution would actually be physically realisable on a
Multi-SIMD(k,d) machine:

* every operand of every operation is resident in the operation's
  region when it executes;
* moves are consistent (a move's source matches where the qubit
  actually is; kinds match the endpoints — ballistic moves only
  between a region and its own scratchpad);
* scratchpad capacities are never exceeded;
* no qubit sits idle in a region that is actively operating on other
  qubits (the passive-storage rule of Section 3.2);
* the billed runtime equals the replayed cost.

Used by tests as an oracle against the movement planner, and usable by
library consumers to validate hand-built or externally modified
schedules. Two failure modes are offered:

* the default raises :class:`ReplayError` on the **first** violation
  (the historical behaviour);
* passing ``on_violation`` collects **every** violation — the replay
  repairs its tracked state after each one and keeps going, which is
  what the static auditor (:func:`repro.analysis.audit_replay`) uses
  to report a complete picture of a broken plan.

Violation codes (shared with :mod:`repro.analysis`): ``QL301`` operand
not resident, ``QL302`` move source mismatch, ``QL303`` invalid
ballistic endpoints, ``QL304`` scratchpad capacity/absence, ``QL305``
passive-storage violation, ``QL306`` schedule/machine shape mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..arch.machine import (
    GATE_CYCLES,
    MultiSIMD,
    epoch_cycles,
    split_epoch,
)
from ..core.qubits import Qubit
from .types import Move, Schedule

__all__ = [
    "ReplayError",
    "ReplayReport",
    "replay_schedule",
]


class ReplayError(Exception):
    """A schedule's movement plan is physically unrealisable.

    Historically this subclassed :class:`AssertionError`, which made
    replay validation silently vanish under ``python -O``; it is now a
    plain :class:`Exception`. ``ReplayAssertionError`` remains as a
    deprecated alias for the old name.
    """


#: Deprecated alias for the pre-1.1 AssertionError-based class.
ReplayAssertionError = ReplayError

#: Signature of a violation collector: ``(code, message, timestep)``.
ViolationHandler = Callable[[str, str, int], None]


@dataclass
class ReplayReport:
    """Outcome of a successful replay.

    Attributes:
        runtime: replayed total cycles (gate + movement epochs).
        teleport_epochs / local_epochs: epoch counts by billed kind.
        peak_scratchpad: max scratchpad occupancy observed per region.
        final_locations: where every qubit ended up.
        violations: number of violations tolerated (always 0 unless an
            ``on_violation`` collector was supplied).
    """

    runtime: int
    teleport_epochs: int
    local_epochs: int
    peak_scratchpad: Dict[int, int] = field(default_factory=dict)
    final_locations: Dict[Qubit, tuple] = field(default_factory=dict)
    violations: int = 0


def replay_schedule(
    sched: Schedule,
    machine: MultiSIMD,
    on_violation: Optional[ViolationHandler] = None,
) -> ReplayReport:
    """Replay ``sched`` (with moves attached) on ``machine``.

    Args:
        sched: the movement-annotated schedule.
        machine: the target machine model.
        on_violation: when given, called as ``(code, message,
            timestep)`` for *every* physical-invariant violation and
            the replay continues best-effort (repairing its tracked
            state) instead of aborting.

    Raises:
        ReplayError: on the first violation, when ``on_violation`` is
            not supplied.
    """
    count = 0

    def emit(code: str, message: str, t: int = -1) -> None:
        nonlocal count
        if on_violation is None:
            raise ReplayError(message)
        count += 1
        on_violation(code, message, t)

    if machine.k < sched.k:
        emit(
            "QL306",
            f"schedule uses {sched.k} regions, machine has "
            f"{machine.k}",
        )
    location: Dict[Qubit, tuple] = {}
    pad_occupancy: Dict[int, Set[Qubit]] = {
        r: set() for r in range(sched.k)
    }
    peak: Dict[int, int] = {r: 0 for r in range(sched.k)}
    runtime = 0
    teleport_epochs = 0
    local_epochs = 0

    for t, ts in enumerate(sched.timesteps):
        # --- movement epoch preceding the timestep ----------------------
        for move in ts.moves:
            _apply_move(move, t, location, pad_occupancy, machine, emit)
        for r, pad in pad_occupancy.items():
            if len(pad) > peak[r]:
                peak[r] = len(pad)
        teleports, locals_ = split_epoch(ts.moves)
        runtime += epoch_cycles(len(teleports), len(locals_))
        if teleports:
            teleport_epochs += 1
        elif locals_:
            local_epochs += 1
        # --- execute the timestep ----------------------------------------
        active: Set[int] = set()
        used_here: Dict[Qubit, int] = {}
        for r, nodes in enumerate(ts.regions):
            if not nodes:
                continue
            active.add(r)
            for n in nodes:
                op = sched.operation(n)
                for q in op.qubits:
                    where = location.get(q, ("global",))
                    if where != ("region", r):
                        emit(
                            "QL301",
                            f"t={t}: operand {q!r} of node {n} is at "
                            f"{where}, not in region {r}",
                            t,
                        )
                        # Repair: pretend the qubit arrived so later
                        # timesteps report their own violations rather
                        # than echoes of this one.
                        if where[0] == "local":
                            pad_occupancy[where[1]].discard(q)
                        location[q] = ("region", r)
                    used_here[q] = r
        # Passive-storage rule: a qubit resident in an *active* region
        # but not used this timestep would be hit by the region's SIMD
        # gate. Qubits with no further use are exempt (reabsorbed as
        # ancilla feedstock, Section 4.4).
        remaining = _future_uses(sched, t)
        for q, where in location.items():
            if (
                where[0] == "region"
                and where[1] in active
                and q not in used_here
                and q in remaining
            ):
                emit(
                    "QL305",
                    f"t={t}: live qubit {q!r} idles in active region "
                    f"{where[1]}",
                    t,
                )
        runtime += GATE_CYCLES
    return ReplayReport(
        runtime=runtime,
        teleport_epochs=teleport_epochs,
        local_epochs=local_epochs,
        peak_scratchpad=peak,
        final_locations=dict(location),
        violations=count,
    )


def _apply_move(
    move: Move,
    t: int,
    location: Dict[Qubit, tuple],
    pads: Dict[int, Set[Qubit]],
    machine: MultiSIMD,
    emit: Callable[[str, str, int], None],
) -> None:
    actual = location.get(move.qubit, ("global",))
    if actual != move.src:
        emit(
            "QL302",
            f"t={t}: move of {move.qubit!r} claims src {move.src}, "
            f"but it is at {actual}",
            t,
        )
        # Repair: take the qubit from wherever it actually is.
        if actual[0] == "local" and actual[1] in pads:
            pads[actual[1]].discard(move.qubit)
    if move.kind == "local":
        ok = (
            move.src[0] == "region"
            and move.dst == ("local", move.src[1])
        ) or (
            move.src[0] == "local"
            and move.dst == ("region", move.src[1])
        )
        if not ok:
            emit(
                "QL303",
                f"t={t}: ballistic move {move.src} -> {move.dst} is "
                "not between a region and its own scratchpad",
                t,
            )
    if move.src[0] == "local" and move.src[1] in pads:
        pads[move.src[1]].discard(move.qubit)
    if move.dst[0] == "local":
        if machine.local_memory is None:
            emit(
                "QL304",
                f"t={t}: move into scratchpad on a machine without "
                "local memory",
                t,
            )
        pad = pads.setdefault(move.dst[1], set())
        pad.add(move.qubit)
        if (
            machine.local_memory is not None
            and len(pad) > machine.local_memory
        ):
            emit(
                "QL304",
                f"t={t}: scratchpad {move.dst[1]} over capacity "
                f"({len(pad)} > {machine.local_memory})",
                t,
            )
    location[move.qubit] = move.dst


# Cache of qubits-with-uses-after-t, computed lazily per schedule.
_future_cache: Dict[int, Tuple[Schedule, List[Set[Qubit]]]] = {}


def _future_uses(sched: Schedule, t: int) -> Set[Qubit]:
    """Qubits used at any timestep > t (memoised per schedule)."""
    cached = _future_cache.get(id(sched))
    if cached is None or cached[0] is not sched:
        suffix: List[Set[Qubit]] = [set() for _ in range(sched.length + 1)]
        for i in range(sched.length - 1, -1, -1):
            bucket = set(suffix[i + 1])
            for nodes in sched.timesteps[i].regions:
                for n in nodes:
                    bucket.update(sched.operation(n).qubits)
            suffix[i] = bucket
        _future_cache.clear()  # keep at most one schedule cached
        _future_cache[id(sched)] = (sched, suffix)
        cached = _future_cache[id(sched)]
    suffix = cached[1]
    return suffix[t + 1] if t + 1 < len(suffix) else set()
