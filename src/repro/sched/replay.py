"""Schedule replay: execute a movement-annotated schedule against the
machine model and check every physical invariant.

``derive_movement`` *plans* qubit motion; this module independently
*replays* the plan, timestep by timestep, and verifies that the
execution would actually be physically realisable on a
Multi-SIMD(k,d) machine:

* every operand of every operation is resident in the operation's
  region when it executes;
* moves are consistent (a move's source matches where the qubit
  actually is; kinds match the endpoints — ballistic moves only
  between a region and its own scratchpad);
* scratchpad capacities are never exceeded;
* no qubit sits idle in a region that is actively operating on other
  qubits (the passive-storage rule of Section 3.2);
* the billed runtime equals the replayed cost.

Used by tests as an oracle against the movement planner, and usable by
library consumers to validate hand-built or externally modified
schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..arch.machine import (
    GATE_CYCLES,
    LOCAL_MOVE_CYCLES,
    MultiSIMD,
    TELEPORT_CYCLES,
)
from ..core.qubits import Qubit
from .types import Move, Schedule

__all__ = ["ReplayError", "ReplayReport", "replay_schedule"]


class ReplayError(AssertionError):
    """A schedule's movement plan is physically unrealisable."""


@dataclass
class ReplayReport:
    """Outcome of a successful replay.

    Attributes:
        runtime: replayed total cycles (gate + movement epochs).
        teleport_epochs / local_epochs: epoch counts by billed kind.
        peak_scratchpad: max scratchpad occupancy observed per region.
        final_locations: where every qubit ended up.
    """

    runtime: int
    teleport_epochs: int
    local_epochs: int
    peak_scratchpad: Dict[int, int] = field(default_factory=dict)
    final_locations: Dict[Qubit, tuple] = field(default_factory=dict)


def replay_schedule(
    sched: Schedule, machine: MultiSIMD
) -> ReplayReport:
    """Replay ``sched`` (with moves attached) on ``machine``.

    Raises:
        ReplayError: on any physical-invariant violation.
    """
    if machine.k < sched.k:
        raise ReplayError(
            f"schedule uses {sched.k} regions, machine has {machine.k}"
        )
    location: Dict[Qubit, tuple] = {}
    pad_occupancy: Dict[int, Set[Qubit]] = {
        r: set() for r in range(sched.k)
    }
    peak: Dict[int, int] = {r: 0 for r in range(sched.k)}
    runtime = 0
    teleport_epochs = 0
    local_epochs = 0

    for t, ts in enumerate(sched.timesteps):
        # --- movement epoch preceding the timestep ----------------------
        kinds = set()
        for move in ts.moves:
            _apply_move(move, t, location, pad_occupancy, machine)
            kinds.add(move.kind)
        for r, pad in pad_occupancy.items():
            if len(pad) > peak[r]:
                peak[r] = len(pad)
        if "teleport" in kinds:
            runtime += TELEPORT_CYCLES
            teleport_epochs += 1
        elif "local" in kinds:
            runtime += LOCAL_MOVE_CYCLES
            local_epochs += 1
        # --- execute the timestep ----------------------------------------
        active: Set[int] = set()
        used_here: Dict[Qubit, int] = {}
        for r, nodes in enumerate(ts.regions):
            if not nodes:
                continue
            active.add(r)
            for n in nodes:
                op = sched.operation(n)
                for q in op.qubits:
                    where = location.get(q, ("global",))
                    if where != ("region", r):
                        raise ReplayError(
                            f"t={t}: operand {q!r} of node {n} is at "
                            f"{where}, not in region {r}"
                        )
                    used_here[q] = r
        # Passive-storage rule: a qubit resident in an *active* region
        # but not used this timestep would be hit by the region's SIMD
        # gate. Qubits with no further use are exempt (reabsorbed as
        # ancilla feedstock, Section 4.4).
        remaining = _future_uses(sched, t)
        for q, where in location.items():
            if (
                where[0] == "region"
                and where[1] in active
                and q not in used_here
                and q in remaining
            ):
                raise ReplayError(
                    f"t={t}: live qubit {q!r} idles in active region "
                    f"{where[1]}"
                )
        runtime += GATE_CYCLES
    return ReplayReport(
        runtime=runtime,
        teleport_epochs=teleport_epochs,
        local_epochs=local_epochs,
        peak_scratchpad=peak,
        final_locations=dict(location),
    )


def _apply_move(
    move: Move,
    t: int,
    location: Dict[Qubit, tuple],
    pads: Dict[int, Set[Qubit]],
    machine: MultiSIMD,
) -> None:
    actual = location.get(move.qubit, ("global",))
    if actual != move.src:
        raise ReplayError(
            f"t={t}: move of {move.qubit!r} claims src {move.src}, "
            f"but it is at {actual}"
        )
    if move.kind == "local":
        ok = (
            move.src[0] == "region"
            and move.dst == ("local", move.src[1])
        ) or (
            move.src[0] == "local"
            and move.dst == ("region", move.src[1])
        )
        if not ok:
            raise ReplayError(
                f"t={t}: ballistic move {move.src} -> {move.dst} is "
                "not between a region and its own scratchpad"
            )
    if move.src[0] == "local":
        pads[move.src[1]].discard(move.qubit)
    if move.dst[0] == "local":
        if machine.local_memory is None:
            raise ReplayError(
                f"t={t}: move into scratchpad on a machine without "
                "local memory"
            )
        pad = pads[move.dst[1]]
        pad.add(move.qubit)
        if len(pad) > machine.local_memory:
            raise ReplayError(
                f"t={t}: scratchpad {move.dst[1]} over capacity "
                f"({len(pad)} > {machine.local_memory})"
            )
    location[move.qubit] = move.dst


# Cache of qubits-with-uses-after-t, computed lazily per schedule.
_future_cache: Dict[int, Tuple[Schedule, List[Set[Qubit]]]] = {}


def _future_uses(sched: Schedule, t: int) -> Set[Qubit]:
    """Qubits used at any timestep > t (memoised per schedule)."""
    cached = _future_cache.get(id(sched))
    if cached is None or cached[0] is not sched:
        suffix: List[Set[Qubit]] = [set() for _ in range(sched.length + 1)]
        for i in range(sched.length - 1, -1, -1):
            bucket = set(suffix[i + 1])
            for nodes in sched.timesteps[i].regions:
                for n in nodes:
                    bucket.update(sched.operation(n).qubits)
            suffix[i] = bucket
        _future_cache.clear()  # keep at most one schedule cached
        _future_cache[id(sched)] = (sched, suffix)
        cached = _future_cache[id(sched)]
    suffix = cached[1]
    return suffix[t + 1] if t + 1 < len(suffix) else set()
