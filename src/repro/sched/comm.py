"""Movement derivation and communication-aware runtime (Sections 3.2, 4.4).

The fine-grained schedulers place *operations*; the qubit movements those
placements imply are derived afterwards, following the paper's execution
model:

* an operand not resident in its op's region is teleported there in the
  movement epoch before the timestep;
* after a timestep, a qubit staying in a region that is *active* next
  timestep (executing other qubits' ops) must be evacuated — to the
  region's local scratchpad if its next op is in the same region and
  space remains (a 1-cycle ballistic move), otherwise to global memory
  by teleportation; idle regions double as passive storage;
* a movement epoch costs 4 cycles if it contains any teleport, 1 cycle
  if it contains only local moves, 0 if empty ("If any SIMD regions in a
  timestep have a global move, the full four cycle move time is
  retained").

The *naive movement model* — the baseline of Figures 7 and 8 — instead
charges a teleport epoch around every sequential gate: runtime = 5x the
gate count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..arch.machine import (
    GATE_CYCLES,
    MultiSIMD,
    NAIVE_FACTOR,
    epoch_cycles,
    split_epoch,
)
from ..arch.memory import MemoryMap
from ..arch.teleport import EPRAccounting
from ..core.qubits import Qubit
from ..fastpath import fast_path_enabled
from ..instrument import spanned
from .types import Move, Schedule

__all__ = ["CommStats", "derive_movement", "naive_runtime"]


@dataclass
class CommStats:
    """Communication profile of one scheduled module.

    Attributes:
        gate_cycles: schedule length (1 cycle per timestep).
        comm_cycles: cycles added by movement epochs.
        runtime: gate_cycles + comm_cycles.
        teleports / local_moves: total move counts by kind.
        teleport_epochs / local_epochs: epochs billed at 4 / at 1.
        epr: per-channel EPR-pair consumption.
    """

    gate_cycles: int
    comm_cycles: int
    teleports: int
    local_moves: int
    teleport_epochs: int
    local_epochs: int
    epr: EPRAccounting = field(default_factory=EPRAccounting)

    @property
    def runtime(self) -> int:
        return self.gate_cycles + self.comm_cycles


def naive_runtime(op_count: int) -> int:
    """Runtime of the sequential, naive movement model: one gate per
    timestep, every timestep wrapped in a teleport epoch (5x)."""
    return NAIVE_FACTOR * op_count


def _loc_label(loc: tuple) -> str:
    if loc[0] == "global":
        return "global"
    return f"{loc[0]}{loc[1]}"


@spanned("comm:derive_movement")
def derive_movement(
    sched: Schedule, machine: MultiSIMD
) -> CommStats:
    """Derive the movement epochs for ``sched`` on ``machine``.

    Populates each timestep's ``moves`` list in place (idempotent: any
    existing moves are cleared) and returns the communication profile.

    The fast path tracks the set of region-resident qubits incrementally
    instead of rescanning the whole memory map every timestep (the
    pre-optimization scan made movement derivation O(qubits x
    timesteps)); dead qubits are retired from the tracked set once their
    use list is exhausted. Eviction candidates are visited in each
    qubit's first-move order — the memory map's insertion order, which
    is what the reference scan iterates — so the scratchpad fill
    decisions and the emitted ``Move`` sequence are bit-identical to
    :func:`repro.sched._reference.derive_movement_reference`.
    """
    if not fast_path_enabled():
        from ._reference import derive_movement_reference

        return derive_movement_reference(sched, machine)

    for ts in sched.timesteps:
        ts.moves = []

    statements = sched.dag.statements
    timesteps = sched.timesteps
    # Per-qubit ordered use list: (timestep, region).
    uses: Dict[Qubit, List[Tuple[int, int]]] = {}
    for t, ts in enumerate(timesteps):
        for r, nodes in enumerate(ts.regions):
            for n in nodes:
                for q in statements[n].qubits:
                    ulist = uses.get(q)
                    if ulist is None:
                        ulist = uses[q] = []
                    ulist.append((t, r))
    next_use_idx: Dict[Qubit, int] = {q: 0 for q in uses}

    mm = MemoryMap(k=sched.k, local_capacity=machine.local_memory)
    stats = CommStats(
        gate_cycles=sched.length * GATE_CYCLES,
        comm_cycles=0,
        teleports=0,
        local_moves=0,
        teleport_epochs=0,
        local_epochs=0,
    )
    pending_evictions: List[Move] = []
    # Qubits currently sitting in a SIMD region, plus each qubit's
    # first-move serial (== its position in mm.locations' insertion
    # order, which the reference eviction scan iterates).
    resident: Dict[Qubit, int] = {}
    serial: Dict[Qubit, int] = {}
    n_ts = len(timesteps)

    for t, ts in enumerate(timesteps):
        epoch: List[Move] = pending_evictions
        pending_evictions = []
        # --- fetch operands into their regions -------------------------
        for r, nodes in enumerate(ts.regions):
            target = ("region", r)
            for n in nodes:
                for q in statements[n].qubits:
                    src = mm.location(q)
                    if src == target:
                        continue
                    kind = (
                        "local"
                        if src == ("local", r)
                        else "teleport"
                    )
                    epoch.append(Move(q, src, target, kind))
                    mm.move(q, target)
                    resident[q] = r
                    if q not in serial:
                        serial[q] = len(serial)
                # Advance the qubit-use cursors past this timestep.
            for n in nodes:
                for q in statements[n].qubits:
                    ulist = uses[q]
                    i = next_use_idx[q]
                    while i < len(ulist) and ulist[i][0] <= t:
                        i += 1
                    next_use_idx[q] = i
        ts.moves = epoch
        _bill_epoch(epoch, stats)
        # --- eviction decisions for the next epoch ----------------------
        if t + 1 < n_ts:
            next_ts = timesteps[t + 1]
            active_next = {
                r for r, nodes in enumerate(next_ts.regions) if nodes
            }
            used_next: Dict[Qubit, int] = {}
            for r, nodes in enumerate(next_ts.regions):
                for n in nodes:
                    for q in statements[n].qubits:
                        used_next[q] = r
            candidates: List[Tuple[int, Qubit]] = []
            dead: List[Qubit] = []
            for q, r in resident.items():
                if q in used_next:
                    # Either stays for its next op or is fetched by the
                    # next timestep's operand pass.
                    continue
                if r not in active_next:
                    continue  # idle regions store qubits passively
                if next_use_idx[q] >= len(uses[q]):
                    # Dead qubit: left behind and reabsorbed as ancilla
                    # or EPR feedstock (Section 4.4) — no move billed,
                    # and no reason to ever reconsider it.
                    dead.append(q)
                    continue
                candidates.append((serial[q], q))
            for q in dead:
                del resident[q]
            # Scratchpad space is claimed in visit order, so the visit
            # order must match the reference scan's (first-move order).
            candidates.sort()
            for _, q in candidates:
                r = resident[q]
                next_region = uses[q][next_use_idx[q]][1]
                if (
                    next_region == r
                    and machine.has_local_memory
                    and mm.local_has_space(r)
                ):
                    dest = ("local", r)
                    kind = "local"
                else:
                    dest = ("global",)
                    kind = "teleport"
                pending_evictions.append(Move(q, ("region", r), dest, kind))
                mm.move(q, dest)
                del resident[q]
    return stats


def _bill_epoch(epoch: List[Move], stats: CommStats) -> None:
    """Charge one movement epoch per the paper's cost rule
    (:func:`~repro.arch.machine.epoch_cycles` — the one canonical
    implementation, shared with EPR planning, NUMA re-billing, replay
    and the execution engine)."""
    teleports, locals_ = split_epoch(epoch)
    stats.teleports += len(teleports)
    stats.local_moves += len(locals_)
    stats.comm_cycles += epoch_cycles(len(teleports), len(locals_))
    if teleports:
        stats.teleport_epochs += 1
        stats.epr.record_epoch(
            [(_loc_label(m.src), _loc_label(m.dst)) for m in teleports]
        )
    elif locals_:
        stats.local_epochs += 1
