"""Ready Critical Path (RCP) scheduling — the paper's Algorithm 1.

RCP is a classical list-scheduling algorithm (Yang & Gerasoulis) that
keeps a *ready* list — only ops whose dependencies are all met — and is
extended here for the Multi-SIMD execution model with a priority over
(operation, region) pairs built from three terms:

* **operation-type prevalence** (``w_op``): common gate types are
  preferred, because scheduling one type fills a SIMD region with
  data-parallel work;
* **movement cost** (``w_dist``): operands already resident in a region
  make that region cheaper;
* **slack** (``w_slack``): ops far from their next use can wait
  (negatively correlated with priority).

Each timestep repeatedly picks the highest-weight (region, gate-type)
pair, extracts every ready op of that type into the region (up to ``d``),
and removes the region from the available set, until regions or ready
ops run out. All weights default to 1, as in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.dag import DependenceDAG
from ..core.qubits import Qubit
from ..instrument import spanned
from .types import Schedule

__all__ = ["RCPWeights", "schedule_rcp"]


class RCPWeights:
    """The w_op / w_dist / w_slack multipliers of Algorithm 1."""

    def __init__(
        self, w_op: float = 1.0, w_dist: float = 1.0, w_slack: float = 1.0
    ):
        self.w_op = w_op
        self.w_dist = w_dist
        self.w_slack = w_slack


@spanned("schedule:rcp")
def schedule_rcp(
    dag: DependenceDAG,
    k: int,
    d: Optional[int] = None,
    weights: Optional[RCPWeights] = None,
) -> Schedule:
    """Schedule ``dag`` on a Multi-SIMD(k,d) machine with RCP."""
    w = weights or RCPWeights()
    sched = Schedule(dag, k=k, d=d, algorithm="rcp")
    indeg = dag.indegrees()
    slack = dag.slack()
    ready: Deque[int] = deque(dag.sources())
    in_ready = set(ready)
    # Region of last activity per qubit; None = memory (Section 3.2: all
    # qubits start in global memory).
    location: Dict[Qubit, Optional[int]] = {}
    scheduled = 0

    while scheduled < dag.n:
        ts = sched.append_timestep()
        available = list(range(k))
        placed_this_ts: List[int] = []
        while available and ready:
            region, gate = _max_weight_simd_optype(
                dag, ready, available, location, slack, w
            )
            batch = _extract_optype(dag, ready, in_ready, gate, d)
            ts.regions[region].extend(batch)
            placed_this_ts.extend(batch)
            for node in batch:
                for q in dag.statements[node].qubits:
                    location[q] = region
            available.remove(region)
        # Ready-list update: children whose last dependency completed
        # this timestep become ready for the *next* timestep.
        for node in placed_this_ts:
            for child in dag.succs[node]:
                indeg[child] -= 1
                if indeg[child] == 0 and child not in in_ready:
                    ready.append(child)
                    in_ready.add(child)
        scheduled += len(placed_this_ts)
        if not placed_this_ts:  # pragma: no cover - defensive
            raise RuntimeError("RCP made no progress (scheduler bug)")
    return sched


def _max_weight_simd_optype(
    dag: DependenceDAG,
    ready: Deque[int],
    available: List[int],
    location: Dict[Qubit, Optional[int]],
    slack: List[int],
    w: RCPWeights,
) -> Tuple[int, str]:
    """The paper's ``getMaxWeightSimdOpType``: the (region, gate-type)
    pair maximising the scheduling priority over ready ops."""
    # Prevalence of each ready gate type (the data-parallelism term).
    optype_count: Dict[str, int] = {}
    for node in ready:
        gate = dag.statements[node].gate
        optype_count[gate] = optype_count.get(gate, 0) + 1

    best = None
    best_weight = float("-inf")
    for region in available:
        for node in ready:
            op = dag.statements[node]
            resident = sum(
                1 for q in op.qubits if location.get(q) == region
            )
            weight = (
                w.w_op * optype_count[op.gate]
                + w.w_dist * resident
                - w.w_slack * slack[node]
            )
            if weight > best_weight:
                best_weight = weight
                best = (region, op.gate)
    assert best is not None
    return best


def _extract_optype(
    dag: DependenceDAG,
    ready: Deque[int],
    in_ready: set,
    gate: str,
    d: Optional[int],
) -> List[int]:
    """Remove (up to ``d``) ready ops of type ``gate`` from the ready
    list, preserving arrival order."""
    cap = len(ready) if d is None else d
    batch: List[int] = []
    keep: List[int] = []
    while ready:
        node = ready.popleft()
        if len(batch) < cap and dag.statements[node].gate == gate:
            batch.append(node)
            in_ready.discard(node)
        else:
            keep.append(node)
    ready.extend(keep)
    return batch
