"""Ready Critical Path (RCP) scheduling — the paper's Algorithm 1.

RCP is a classical list-scheduling algorithm (Yang & Gerasoulis) that
keeps a *ready* list — only ops whose dependencies are all met — and is
extended here for the Multi-SIMD execution model with a priority over
(operation, region) pairs built from three terms:

* **operation-type prevalence** (``w_op``): common gate types are
  preferred, because scheduling one type fills a SIMD region with
  data-parallel work;
* **movement cost** (``w_dist``): operands already resident in a region
  make that region cheaper;
* **slack** (``w_slack``): ops far from their next use can wait
  (negatively correlated with priority).

Each timestep repeatedly picks the highest-weight (region, gate-type)
pair, extracts every ready op of that type into the region (up to ``d``),
and removes the region from the available set, until regions or ready
ops run out. All weights default to 1, as in the paper. Weight ties are
broken deterministically: smallest gate name first, then smallest
region index (historically the tie went to whichever pair the scan
encountered first, which depended on ready-list arrival order).

The fast path keeps the ready set *bucketed by gate type* (arrival
order preserved within each bucket), so type prevalence is an O(1)
counter read and batch extraction pops one bucket instead of rescanning
the whole ready deque; the (region, gate) selection enumerates each
ready op's resident regions (at most its operand count) plus one
zero-residency representative instead of every available region. The
pre-optimization implementation is
:func:`repro.sched._reference.schedule_rcp_reference`; both produce
bit-identical schedules.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.dag import DependenceDAG
from ..core.qubits import Qubit
from ..fastpath import fast_path_enabled
from ..instrument import spanned
from .types import Schedule

__all__ = ["RCPWeights", "schedule_rcp"]


class RCPWeights:
    """The w_op / w_dist / w_slack multipliers of Algorithm 1."""

    def __init__(
        self, w_op: float = 1.0, w_dist: float = 1.0, w_slack: float = 1.0
    ):
        self.w_op = w_op
        self.w_dist = w_dist
        self.w_slack = w_slack


@spanned("schedule:rcp")
def schedule_rcp(
    dag: DependenceDAG,
    k: int,
    d: Optional[int] = None,
    weights: Optional[RCPWeights] = None,
) -> Schedule:
    """Schedule ``dag`` on a Multi-SIMD(k,d) machine with RCP."""
    if not fast_path_enabled():
        from ._reference import schedule_rcp_reference

        return schedule_rcp_reference(dag, k, d, weights)

    w = weights or RCPWeights()
    sched = Schedule(dag, k=k, d=d, algorithm="rcp")
    statements = dag.statements
    succs = dag.succs
    indeg = dag.indegrees()
    slack = dag.slack()
    # Ready set, bucketed by gate type. Within a bucket nodes keep
    # arrival order, which is all batch extraction needs; the bucket
    # length doubles as the type-prevalence count.
    buckets: Dict[str, Deque[int]] = {}
    n_ready = 0
    for node in dag.sources():
        gate = statements[node].gate
        bucket = buckets.get(gate)
        if bucket is None:
            bucket = buckets[gate] = deque()
        bucket.append(node)
        n_ready += 1
    # Region of last activity per qubit; None = memory (Section 3.2: all
    # qubits start in global memory).
    location: Dict[Qubit, Optional[int]] = {}
    scheduled = 0

    while scheduled < dag.n:
        ts = sched.append_timestep()
        available = list(range(k))
        placed_this_ts: List[int] = []
        while available and n_ready:
            region, gate = _pick_max_weight(
                statements, buckets, available, location, slack, w
            )
            bucket = buckets[gate]
            cap = len(bucket) if d is None else d
            batch: List[int] = []
            while bucket and len(batch) < cap:
                batch.append(bucket.popleft())
            if not bucket:
                del buckets[gate]
            n_ready -= len(batch)
            ts.regions[region].extend(batch)
            placed_this_ts.extend(batch)
            for node in batch:
                for q in statements[node].qubits:
                    location[q] = region
            available.remove(region)
        # Ready-list update: children whose last dependency completed
        # this timestep become ready for the *next* timestep.
        for node in placed_this_ts:
            for child in succs[node]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    gate = statements[child].gate
                    bucket = buckets.get(gate)
                    if bucket is None:
                        bucket = buckets[gate] = deque()
                    bucket.append(child)
                    n_ready += 1
        scheduled += len(placed_this_ts)
        if not placed_this_ts:  # pragma: no cover - defensive
            raise RuntimeError("RCP made no progress (scheduler bug)")
    return sched


def _pick_max_weight(
    statements,
    buckets: Dict[str, Deque[int]],
    available: List[int],
    location: Dict[Qubit, Optional[int]],
    slack: List[int],
    w: RCPWeights,
) -> Tuple[int, str]:
    """The paper's ``getMaxWeightSimdOpType`` over the bucketed ready
    set: the (region, gate-type) pair maximising the scheduling
    priority, ties broken by (gate name, region index).

    For each ready op the candidate regions are the op's resident
    regions (at most its operand count) plus the lowest-index available
    region with zero residency — every other region yields the same
    weight as the zero-residency representative but a larger index, so
    the tie-break can never prefer it.
    """
    w_op, w_dist, w_slack = w.w_op, w.w_dist, w.w_slack
    loc_get = location.get
    avail_set = set(available)
    best_weight = float("-inf")
    best_gate: Optional[str] = None
    best_region = -1
    for gate, bucket in buckets.items():
        type_term = w_op * len(bucket)
        for node in bucket:
            base = type_term - w_slack * slack[node]
            resident: Dict[int, int] = {}
            for q in statements[node].qubits:
                r = loc_get(q)
                if r is not None:
                    resident[r] = resident.get(r, 0) + 1
            for r, count in resident.items():
                if r not in avail_set:
                    continue
                weight = base + w_dist * count
                if weight > best_weight or (
                    weight == best_weight
                    and (gate, r) < (best_gate, best_region)
                ):
                    best_weight = weight
                    best_gate = gate
                    best_region = r
            for r in available:
                if r not in resident:
                    # Lowest-index zero-residency region; all others
                    # score the same weight with a larger index.
                    if base > best_weight or (
                        base == best_weight
                        and (gate, r) < (best_gate, best_region)
                    ):
                        best_weight = base
                        best_gate = gate
                        best_region = r
                    break
    assert best_gate is not None
    return best_region, best_gate
