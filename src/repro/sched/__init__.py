"""Schedulers: sequential baseline, RCP, LPFS, hierarchical coarse
scheduling, movement derivation and metrics."""

from .coarse import (
    CoarseResult,
    Placement,
    best_dim,
    coarse_length_profile,
    schedule_coarse,
)
from .comm import CommStats, derive_movement, naive_runtime
from .lpfs import schedule_lpfs
from .metrics import (
    comm_speedup,
    hierarchical_critical_path,
    parallel_speedup,
)
from .rcp import RCPWeights, schedule_rcp
from .replay import ReplayError, ReplayReport, replay_schedule
from .report import (
    compile_result_to_dict,
    render_coarse_gantt,
    profile_table,
    render_timeline,
    schedule_to_dict,
)
from .sequential import schedule_sequential
from .stream import (
    StreamColumns,
    StreamedSchedule,
    build_columns,
    derive_movement_stream,
    engine_epochs,
    iter_schedule_epochs,
    schedule_columns,
    to_schedule,
)
from .types import Move, Schedule, ScheduleError, Timestep

__all__ = [
    "CoarseResult",
    "Placement",
    "CommStats",
    "Move",
    "RCPWeights",
    "ReplayError",
    "ReplayReport",
    "Schedule",
    "StreamColumns",
    "StreamedSchedule",
    "ScheduleError",
    "Timestep",
    "best_dim",
    "comm_speedup",
    "derive_movement",
    "hierarchical_critical_path",
    "naive_runtime",
    "parallel_speedup",
    "coarse_length_profile",
    "schedule_coarse",
    "schedule_lpfs",
    "schedule_rcp",
    "schedule_sequential",
    "compile_result_to_dict",
    "profile_table",
    "render_coarse_gantt",
    "render_timeline",
    "replay_schedule",
    "schedule_to_dict",
    "build_columns",
    "derive_movement_stream",
    "engine_epochs",
    "iter_schedule_epochs",
    "schedule_columns",
    "to_schedule",
]
