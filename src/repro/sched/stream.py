"""Windowed columnar scheduling for paper-scale leaf bodies.

The materialized pipeline spends ~1 KiB per gate: each op is a boxed
``Operation`` with a qubit tuple, the DAG holds per-node Python lists,
and the schedulers copy those into per-timestep region lists. At the
paper's 10^7-gate leaves that is tens of GiB. This module runs the
*same algorithms* over a columnar encoding at ~50 B per gate:

* gates are interned ids in an ``array('H')``;
* operands are interned qubit ids in one flat ``array('i')`` plus an
  offsets array (CSR layout);
* dependence edges are ingested op-by-op from an
  :class:`~repro.core.opstream.OpStream` with the same per-qubit
  last-writer map as :func:`repro.core.dag._build_edges_fast`, into a
  CSR predecessor table that is transposed to successors by counting
  sort and then freed;
* heights/depths/slack are ``array('i')`` passes over the CSR tables.

``window`` governs the *ingestion* memory granularity: it bounds how
many boxed ``Operation`` objects are ever alive while the columns are
built (``None`` materializes the whole stream first — the materialized
pipeline's ingest profile). It cannot affect the emitted schedule:
every window produces identical columns, and the schedulers run on the
columns alone. That is the streaming pipeline's window-invariance
guarantee, and it is exactly why the streamed schedules are bit-for-bit
the schedules of the materialized fast path — the scheduler mirrors
below replay :mod:`repro.sched.rcp`, :mod:`repro.sched.lpfs`,
:mod:`repro.sched.sequential` and :func:`repro.sched.comm.
derive_movement` decision-for-decision (same priority arithmetic, same
tie-breaks, same iteration orders), with node/gate/qubit ids in place
of boxed objects. ``tests/test_stream_sched.py`` and the differential
battery check the equivalence end to end.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Callable, Dict, Deque, Iterator, List, Optional, Set, Tuple

from ..arch.machine import GATE_CYCLES, MultiSIMD
from ..arch.memory import MemoryMap
from ..core.dag import DependenceDAG
from ..core.operation import Operation
from ..core.opstream import OpStream, iter_chunks
from ..core.qubits import Qubit
from ..instrument import spanned
from .comm import CommStats, _bill_epoch
from .rcp import RCPWeights
from .types import Move, Schedule

__all__ = [
    "StreamColumns",
    "build_columns",
    "StreamedSchedule",
    "schedule_columns",
    "derive_movement_stream",
    "iter_schedule_epochs",
    "engine_epochs",
    "to_schedule",
]

_MAX_NODES = 2**31 - 1
_MAX_GATES = 2**16
_MAX_REGIONS = 2**16


class StreamColumns:
    """Columnar form of one leaf body plus its dependence structure.

    Node ids are statement indices ``0..n-1`` in program order, exactly
    as in :class:`~repro.core.dag.DependenceDAG`. Qubits and gate names
    are interned; the boxed ops themselves are not retained.
    """

    def __init__(self) -> None:
        self.n = 0
        self.gate_names: List[str] = []
        self.gate_ids = array("H")
        self.qubits: List[Qubit] = []
        self.op_q = array("i")  # flattened operand qubit ids
        self.op_off = array("i", [0])
        self.angles: Dict[int, float] = {}
        # CSR successor table (built by finalize; preds are transient).
        self.succ_flat = array("i")
        self.succ_off = array("i")
        self.indeg_base = array("i")
        self._heights: Optional[array] = None
        self._depths: Optional[array] = None
        self._slack: Optional[array] = None

    # -- shape ------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def operands(self, node: int) -> Tuple[int, ...]:
        return tuple(self.op_q[self.op_off[node] : self.op_off[node + 1]])

    def gate_of(self, node: int) -> str:
        return self.gate_names[self.gate_ids[node]]

    def operation(self, node: int) -> Operation:
        """Rebox one node as an :class:`Operation` (tests, inflation)."""
        return Operation(
            self.gate_of(node),
            tuple(
                self.qubits[self.op_q[j]]
                for j in range(self.op_off[node], self.op_off[node + 1])
            ),
            self.angles.get(node),
        )

    def sources(self) -> Iterator[int]:
        indeg = self.indeg_base
        return (i for i in range(self.n) if not indeg[i])

    def indegrees(self) -> array:
        """Fresh in-degree array (consumed by the list schedulers)."""
        return array("i", self.indeg_base)

    # -- longest-path analyses (mirrors of DependenceDAG) -----------------

    def heights(self) -> array:
        if self._heights is None:
            n = self.n
            h = array("i", bytes(4 * n))
            succ_flat, succ_off = self.succ_flat, self.succ_off
            for i in range(n - 1, -1, -1):
                below = 0
                for j in range(succ_off[i], succ_off[i + 1]):
                    hs = h[succ_flat[j]]
                    if hs > below:
                        below = hs
                h[i] = 1 + below
            self._heights = h
        return self._heights

    def depths(self) -> array:
        # Forward relaxation over successor edges (all edges point
        # forward in program order): when node i is visited, d[i]
        # already holds the max depth over its predecessors — the same
        # recurrence DependenceDAG.depths computes over preds, which
        # this class frees after transposition.
        if self._depths is None:
            n = self.n
            d = array("i", bytes(4 * n))
            succ_flat, succ_off = self.succ_flat, self.succ_off
            for i in range(n):
                di = d[i] + 1
                d[i] = di
                for j in range(succ_off[i], succ_off[i + 1]):
                    s = succ_flat[j]
                    if di > d[s]:
                        d[s] = di
            self._depths = d
        return self._depths

    def critical_path_length(self) -> int:
        return max(self.depths(), default=0)

    def slack(self) -> array:
        if self._slack is None:
            cp = self.critical_path_length()
            d, h = self.depths(), self.heights()
            self._slack = array(
                "i", (cp - (d[i] + h[i] - 1) for i in range(self.n))
            )
        return self._slack

    def release_graph(self) -> None:
        """Drop the dependence structure once scheduling is done —
        movement derivation only reads operands and the schedule."""
        self.succ_flat = array("i")
        self.succ_off = array("i")
        self._heights = self._depths = self._slack = None


@spanned("stream:build_columns")
def build_columns(
    stream: OpStream, window: Optional[int] = None
) -> StreamColumns:
    """Ingest a leaf stream into columns, ``window`` ops at a time.

    The per-qubit last-writer map, inline <=3-element dedup and sort
    mirror :func:`repro.core.dag._build_edges_fast` exactly; successor
    lists come out in ascending node order (counting sort over the
    predecessor table), matching the fast path's append order.
    """
    cols = StreamColumns()
    gate_table: Dict[str, int] = {}
    qubit_table: Dict[Qubit, int] = {}
    gate_names = cols.gate_names
    gate_ids = cols.gate_ids
    qubits = cols.qubits
    op_q = cols.op_q
    op_off = cols.op_off
    angles = cols.angles
    pred_flat = array("i")
    pred_off = array("i", [0])
    last_touch: Dict[int, int] = {}
    get_last = last_touch.get
    n = 0
    for chunk in iter_chunks(stream, window):
        for op in chunk:
            gid = gate_table.get(op.gate)
            if gid is None:
                gid = gate_table[op.gate] = len(gate_names)
                if gid >= _MAX_GATES:
                    raise OverflowError(
                        f"more than {_MAX_GATES} distinct gate names"
                    )
                gate_names.append(op.gate)
            plist: List[int] = []
            for q in op.qubits:
                qid = qubit_table.get(q)
                if qid is None:
                    qid = qubit_table[q] = len(qubits)
                    qubits.append(q)
                op_q.append(qid)
                prev = get_last(qid)
                if prev is not None and prev not in plist:
                    plist.append(prev)
                last_touch[qid] = n
            if len(plist) > 1:
                plist.sort()
            pred_flat.extend(plist)
            pred_off.append(len(pred_flat))
            gate_ids.append(gid)
            op_off.append(len(op_q))
            if op.angle is not None:
                angles[n] = op.angle
            n += 1
            if n >= _MAX_NODES:
                raise OverflowError("leaf exceeds 2^31-1 operations")
        # Chunk ops die here; a finite window bounds peak boxed-op count.
        del chunk
    cols.n = n
    cols.indeg_base = array(
        "i", (pred_off[i + 1] - pred_off[i] for i in range(n))
    )
    # Transpose preds -> succs by counting sort. Node ids are appended
    # in ascending order, so each successor list is ascending — the
    # order _build_edges_fast produces.
    n_edges = len(pred_flat)
    succ_cnt = array("i", bytes(4 * n))
    for p in pred_flat:
        succ_cnt[p] += 1
    succ_off = array("i", bytes(4 * (n + 1)))
    run = 0
    for i in range(n):
        succ_off[i] = run
        run += succ_cnt[i]
    succ_off[n] = run
    cursor = array("i", succ_off[:n])
    succ_flat = array("i", bytes(4 * n_edges))
    for i in range(n):
        for j in range(pred_off[i], pred_off[i + 1]):
            p = pred_flat[j]
            succ_flat[cursor[p]] = i
            cursor[p] += 1
    cols.succ_flat = succ_flat
    cols.succ_off = succ_off
    return cols


class StreamedSchedule:
    """A schedule in flat arrays: ~10 B per op instead of per-timestep
    region lists of boxed ints.

    Entries are stored timestep-major, region-ascending, insertion order
    within a region — the order ``for r, nodes in enumerate(ts.regions)``
    iterates a materialized :class:`~repro.sched.types.Schedule`.
    """

    def __init__(self, k: int, d: Optional[int], algorithm: str):
        if k >= _MAX_REGIONS:
            raise OverflowError(f"k={k} exceeds region-id width")
        self.k = k
        self.d = d
        self.algorithm = algorithm
        self.ts_off = array("i", [0])
        self.flat_regions = array("H")
        self.flat_nodes = array("i")
        self.max_width = 0
        self.op_count = 0

    @property
    def length(self) -> int:
        return len(self.ts_off) - 1

    def _append_timestep(self, regions: Dict[int, List[int]]) -> None:
        """Flush one timestep's region->nodes map (all lists non-empty)."""
        flat_r, flat_n = self.flat_regions, self.flat_nodes
        for r in sorted(regions):
            nodes = regions[r]
            for node in nodes:
                flat_r.append(r)
                flat_n.append(node)
            self.op_count += len(nodes)
        self.ts_off.append(len(flat_n))
        if len(regions) > self.max_width:
            self.max_width = len(regions)

    def regions_at(self, t: int) -> List[Tuple[int, List[int]]]:
        """The non-empty regions of timestep ``t`` as ``(r, nodes)``,
        region-ascending (entries are stored grouped and sorted)."""
        flat_r, flat_n = self.flat_regions, self.flat_nodes
        out: List[Tuple[int, List[int]]] = []
        j = self.ts_off[t]
        end = self.ts_off[t + 1]
        while j < end:
            r = flat_r[j]
            nodes: List[int] = []
            while j < end and flat_r[j] == r:
                nodes.append(flat_n[j])
                j += 1
            out.append((r, nodes))
        return out


# ---------------------------------------------------------------------------
# Scheduler mirrors
# ---------------------------------------------------------------------------


def _rcp_stream(
    cols: StreamColumns,
    k: int,
    d: Optional[int],
    weights: Optional[RCPWeights],
) -> StreamedSchedule:
    """Mirror of :func:`repro.sched.rcp.schedule_rcp` over columns."""
    w = weights or RCPWeights()
    out = StreamedSchedule(k, d, "rcp")
    n = cols.n
    gate_ids = cols.gate_ids
    op_q, op_off = cols.op_q, cols.op_off
    succ_flat, succ_off = cols.succ_flat, cols.succ_off
    indeg = cols.indegrees()
    slack = cols.slack()
    buckets: Dict[int, Deque[int]] = {}
    n_ready = 0
    for node in cols.sources():
        gid = gate_ids[node]
        bucket = buckets.get(gid)
        if bucket is None:
            bucket = buckets[gid] = deque()
        bucket.append(node)
        n_ready += 1
    location: Dict[int, int] = {}  # qubit id -> region; absent = memory
    scheduled = 0

    while scheduled < n:
        regions: Dict[int, List[int]] = {}
        available = list(range(k))
        placed_this_ts: List[int] = []
        while available and n_ready:
            region, gid = _pick_max_weight_stream(
                cols, buckets, available, location, slack, w
            )
            bucket = buckets[gid]
            cap = len(bucket) if d is None else d
            batch: List[int] = []
            while bucket and len(batch) < cap:
                batch.append(bucket.popleft())
            if not bucket:
                del buckets[gid]
            n_ready -= len(batch)
            dst = regions.get(region)
            if dst is None:
                dst = regions[region] = []
            dst.extend(batch)
            placed_this_ts.extend(batch)
            for node in batch:
                for j in range(op_off[node], op_off[node + 1]):
                    location[op_q[j]] = region
            available.remove(region)
        for node in placed_this_ts:
            for j in range(succ_off[node], succ_off[node + 1]):
                child = succ_flat[j]
                indeg[child] -= 1
                if indeg[child] == 0:
                    gid = gate_ids[child]
                    bucket = buckets.get(gid)
                    if bucket is None:
                        bucket = buckets[gid] = deque()
                    bucket.append(child)
                    n_ready += 1
        scheduled += len(placed_this_ts)
        if not placed_this_ts:  # pragma: no cover - defensive
            raise RuntimeError("RCP made no progress (scheduler bug)")
        out._append_timestep(regions)
    return out


def _pick_max_weight_stream(
    cols: StreamColumns,
    buckets: Dict[int, Deque[int]],
    available: List[int],
    location: Dict[int, int],
    slack: array,
    w: RCPWeights,
) -> Tuple[int, int]:
    """Mirror of :func:`repro.sched.rcp._pick_max_weight`: identical
    float expressions and the same (gate name, region) tie-break, with
    gate/qubit ids in place of boxed objects."""
    w_op, w_dist, w_slack = w.w_op, w.w_dist, w.w_slack
    gate_names = cols.gate_names
    op_q, op_off = cols.op_q, cols.op_off
    loc_get = location.get
    avail_set = set(available)
    best_weight = float("-inf")
    best_gate: Optional[str] = None
    best_gid = -1
    best_region = -1
    for gid, bucket in buckets.items():
        gate = gate_names[gid]
        type_term = w_op * len(bucket)
        for node in bucket:
            base = type_term - w_slack * slack[node]
            resident: Dict[int, int] = {}
            for j in range(op_off[node], op_off[node + 1]):
                r = loc_get(op_q[j])
                if r is not None:
                    resident[r] = resident.get(r, 0) + 1
            for r, count in resident.items():
                if r not in avail_set:
                    continue
                weight = base + w_dist * count
                if weight > best_weight or (
                    weight == best_weight
                    and (gate, r) < (best_gate, best_region)
                ):
                    best_weight = weight
                    best_gate = gate
                    best_gid = gid
                    best_region = r
            for r in available:
                if r not in resident:
                    if base > best_weight or (
                        base == best_weight
                        and (gate, r) < (best_gate, best_region)
                    ):
                        best_weight = base
                        best_gate = gate
                        best_gid = gid
                        best_region = r
                    break
    assert best_gate is not None
    return best_region, best_gid


class _StreamFreeList:
    """Mirror of :class:`repro.sched.lpfs._FreeList` with gate ids,
    byte-flag path membership and the same lazy-deletion semantics.
    Name-ordered tie-breaks resolve through the intern table."""

    __slots__ = (
        "gate_ids",
        "gate_names",
        "on_path",
        "in_ready",
        "buckets",
        "fifo",
        "counts",
        "path_counts",
    )

    def __init__(self, cols: StreamColumns, on_path: bytearray):
        self.gate_ids = cols.gate_ids
        self.gate_names = cols.gate_names
        self.on_path = on_path
        self.in_ready: Set[int] = set()
        self.buckets: Dict[int, Deque[int]] = {}
        self.fifo: Deque[int] = deque()
        self.counts: Dict[int, int] = {}
        self.path_counts: Dict[int, int] = {}

    def add(self, node: int) -> None:
        gid = self.gate_ids[node]
        bucket = self.buckets.get(gid)
        if bucket is None:
            bucket = self.buckets[gid] = deque()
        bucket.append(node)
        self.fifo.append(node)
        self.in_ready.add(node)
        self.counts[gid] = self.counts.get(gid, 0) + 1
        if self.on_path[node]:
            self.path_counts[gid] = self.path_counts.get(gid, 0) + 1

    def claim_mark(self, node: int) -> None:
        if node in self.in_ready:
            gid = self.gate_ids[node]
            self.path_counts[gid] = self.path_counts.get(gid, 0) + 1

    def remove_scheduled(self, node: int) -> None:
        if node in self.in_ready:
            self.in_ready.discard(node)
            gid = self.gate_ids[node]
            self.counts[gid] -= 1
            if self.on_path[node]:
                self.path_counts[gid] -= 1

    def extract(self, gid: int, cap: Optional[int]) -> List[int]:
        bucket = self.buckets.get(gid)
        if not bucket:
            return []
        limit = len(bucket) if cap is None else cap
        if limit <= 0:
            return []
        in_ready = self.in_ready
        on_path = self.on_path
        batch: List[int] = []
        stash: List[int] = []
        while bucket and len(batch) < limit:
            node = bucket.popleft()
            if node not in in_ready:
                continue
            if on_path[node]:
                stash.append(node)
                continue
            batch.append(node)
            in_ready.discard(node)
        if stash:
            bucket.extendleft(reversed(stash))
        if not bucket:
            del self.buckets[gid]
        if batch:
            self.counts[gid] -= len(batch)
        return batch

    def most_common(self) -> Optional[int]:
        path_counts = self.path_counts
        gate_names = self.gate_names
        best_gid: Optional[int] = None
        best_name: Optional[str] = None
        best_free = 0
        for gid, count in self.counts.items():
            free = count - path_counts.get(gid, 0)
            if free <= 0:
                continue
            name = gate_names[gid]
            if free > best_free or (
                free == best_free and name > best_name
            ):
                best_free = free
                best_gid = gid
                best_name = name
        return best_gid

    def oldest(self) -> Optional[int]:
        fifo = self.fifo
        in_ready = self.in_ready
        on_path = self.on_path
        while fifo:
            node = fifo[0]
            if node not in in_ready:
                fifo.popleft()
                continue
            if not on_path[node]:
                return self.gate_ids[node]
            break
        else:
            return None
        stash: List[int] = []
        gid: Optional[int] = None
        while fifo:
            node = fifo.popleft()
            if node not in in_ready:
                continue
            stash.append(node)
            if not on_path[node]:
                gid = self.gate_ids[node]
                break
        if stash:
            fifo.extendleft(reversed(stash))
        return gid

    def fallback_pop(self) -> Optional[int]:
        fifo = self.fifo
        while fifo:
            node = fifo.popleft()
            if node in self.in_ready:
                self.remove_scheduled(node)
                return node
        return None


def _lpfs_stream(
    cols: StreamColumns,
    k: int,
    d: Optional[int],
    l: int,
    simd: bool,
    refill: bool,
) -> StreamedSchedule:
    """Mirror of :func:`repro.sched.lpfs.schedule_lpfs` over columns.
    ``done``/``on_path`` are byte flags (sets of int would reintroduce
    O(gates) boxed memory)."""
    if not 1 <= l <= k:
        raise ValueError(f"need 1 <= l <= k, got l={l}, k={k}")
    out = StreamedSchedule(k, d, "lpfs")
    n = cols.n
    gate_ids = cols.gate_ids
    succ_flat, succ_off = cols.succ_flat, cols.succ_off
    indeg = cols.indegrees()
    heights = cols.heights()
    on_path = bytearray(n)
    done = bytearray(n)
    free_list = _StreamFreeList(cols, on_path)
    for node in cols.sources():
        free_list.add(node)
    paths: List[Deque[int]] = [
        _claim_longest_path_stream(cols, heights, free_list, done)
        for _ in range(l)
    ]

    scheduled = 0
    while scheduled < n:
        regions: Dict[int, List[int]] = {}
        placed: List[int] = []
        for i in range(l):
            if refill and not paths[i]:
                paths[i] = _claim_longest_path_stream(
                    cols, heights, free_list, done
                )
            path = paths[i]
            if path and path[0] in free_list.in_ready:
                head = path.popleft()
                free_list.remove_scheduled(head)
                on_path[head] = 0
                dst = regions.get(i)
                if dst is None:
                    dst = regions[i] = []
                dst.append(head)
                placed.append(head)
                if simd:
                    gid = gate_ids[head]
                    cap = None if d is None else d - 1
                    batch = free_list.extract(gid, cap)
                    dst.extend(batch)
                    placed.extend(batch)
            elif simd:
                gid = free_list.most_common()
                if gid is not None:
                    batch = free_list.extract(gid, d)
                    if batch:
                        dst = regions.get(i)
                        if dst is None:
                            dst = regions[i] = []
                        dst.extend(batch)
                    placed.extend(batch)
        for i in range(l, k):
            gid = free_list.oldest()
            if gid is None:
                break
            batch = free_list.extract(gid, d)
            if batch:
                dst = regions.get(i)
                if dst is None:
                    dst = regions[i] = []
                dst.extend(batch)
            placed.extend(batch)
        if not placed:
            node = free_list.fallback_pop()
            if node is None:  # pragma: no cover - defensive
                raise RuntimeError("LPFS deadlock (scheduler bug)")
            on_path[node] = 0
            for i in range(l):
                if paths[i] and paths[i][0] == node:
                    paths[i].popleft()
            regions[0] = [node]
            placed.append(node)
        for node in placed:
            done[node] = 1
        for node in placed:
            for j in range(succ_off[node], succ_off[node + 1]):
                child = succ_flat[j]
                indeg[child] -= 1
                if indeg[child] == 0 and child not in free_list.in_ready:
                    free_list.add(child)
        scheduled += len(placed)
        out._append_timestep(regions)
    return out


def _claim_longest_path_stream(
    cols: StreamColumns,
    heights: array,
    free_list: _StreamFreeList,
    done: bytearray,
) -> Deque[int]:
    """Mirror of :func:`repro.sched.lpfs._claim_longest_path` — the
    strict-max key ``(height, -node)`` makes the claim independent of
    the ready set's iteration order."""
    on_path = free_list.on_path
    candidates = [n for n in free_list.in_ready if not on_path[n]]
    if not candidates:
        return deque()
    start = max(candidates, key=lambda n: (heights[n], -n))
    path: Deque[int] = deque()
    succ_flat, succ_off = cols.succ_flat, cols.succ_off
    node: Optional[int] = start
    while node is not None and not on_path[node] and not done[node]:
        path.append(node)
        on_path[node] = 1
        free_list.claim_mark(node)
        lo, hi = succ_off[node], succ_off[node + 1]
        if lo == hi:
            node = None
        else:
            node = max(
                succ_flat[lo:hi], key=lambda s: (heights[s], -s)
            )
    return path


def _sequential_stream(
    cols: StreamColumns, k: int, d: Optional[int]
) -> StreamedSchedule:
    """Mirror of :func:`repro.sched.sequential.schedule_sequential`."""
    out = StreamedSchedule(k, d, "sequential")
    for node in range(cols.n):
        out._append_timestep({0: [node]})
    return out


@spanned("stream:schedule")
def schedule_columns(
    cols: StreamColumns,
    algorithm: str,
    k: int,
    d: Optional[int] = None,
    lpfs_l: int = 1,
    lpfs_simd: bool = True,
    lpfs_refill: bool = True,
    rcp_weights: Optional[RCPWeights] = None,
) -> StreamedSchedule:
    """Schedule columns with the named algorithm (same option surface
    as :class:`repro.toolflow.SchedulerConfig`, including the l <= k
    clamp)."""
    if algorithm == "sequential":
        return _sequential_stream(cols, k, d)
    if algorithm == "rcp":
        return _rcp_stream(cols, k, d, rcp_weights)
    if algorithm == "lpfs":
        return _lpfs_stream(
            cols, k, d, min(lpfs_l, k), lpfs_simd, lpfs_refill
        )
    raise ValueError(f"unknown scheduling algorithm: {algorithm!r}")


# ---------------------------------------------------------------------------
# Movement derivation (mirror of sched.comm.derive_movement)
# ---------------------------------------------------------------------------


def iter_schedule_epochs(
    cols: StreamColumns,
    ssched: StreamedSchedule,
    machine: MultiSIMD,
    stats: CommStats,
) -> Iterator[Tuple[int, List[Move], List[Tuple[int, List[int]]]]]:
    """Derive movement epoch-at-a-time, yielding
    ``(t, moves, regions)`` per timestep and accumulating into
    ``stats`` (bill one epoch per yield, exactly as
    :func:`~repro.sched.comm.derive_movement` bills ``ts.moves``).

    The mirrored state is identical — per-qubit use cursors (packed
    ``(t << 16) | r`` in ``array('q')``), incremental resident set,
    first-move serials for eviction order — so the emitted ``Move``
    sequence per epoch is bit-identical to the materialized fast path.
    Peak memory is the use lists (one packed int per operand slot),
    never the epochs themselves.
    """
    op_q, op_off = cols.op_q, cols.op_off
    qubit_objs = cols.qubits
    n_ts = ssched.length
    stats.gate_cycles += n_ts * GATE_CYCLES
    # Per-qubit ordered use list: packed (timestep << 16) | region.
    uses: List[array] = [array("q") for _ in range(len(qubit_objs))]
    for t in range(n_ts):
        for j in range(ssched.ts_off[t], ssched.ts_off[t + 1]):
            r = ssched.flat_regions[j]
            node = ssched.flat_nodes[j]
            packed = (t << 16) | r
            for i in range(op_off[node], op_off[node + 1]):
                uses[op_q[i]].append(packed)
    next_use_idx = array("i", bytes(4 * len(qubit_objs)))

    mm = MemoryMap(k=ssched.k, local_capacity=machine.local_memory)
    pending_evictions: List[Move] = []
    resident: Dict[int, int] = {}
    serial: Dict[int, int] = {}

    next_regions = ssched.regions_at(0) if n_ts else []
    for t in range(n_ts):
        cur_regions = next_regions
        epoch: List[Move] = pending_evictions
        pending_evictions = []
        for r, nodes in cur_regions:
            target = ("region", r)
            for node in nodes:
                for i in range(op_off[node], op_off[node + 1]):
                    qid = op_q[i]
                    q = qubit_objs[qid]
                    src = mm.location(q)
                    if src == target:
                        continue
                    kind = (
                        "local" if src == ("local", r) else "teleport"
                    )
                    epoch.append(Move(q, src, target, kind))
                    mm.move(q, target)
                    resident[qid] = r
                    if qid not in serial:
                        serial[qid] = len(serial)
            for node in nodes:
                for i in range(op_off[node], op_off[node + 1]):
                    qid = op_q[i]
                    ulist = uses[qid]
                    u = next_use_idx[qid]
                    end = len(ulist)
                    while u < end and (ulist[u] >> 16) <= t:
                        u += 1
                    next_use_idx[qid] = u
        _bill_epoch(epoch, stats)
        if t + 1 < n_ts:
            next_regions = ssched.regions_at(t + 1)
            active_next = {r for r, _ in next_regions}
            used_next: Dict[int, int] = {}
            for r, nodes in next_regions:
                for node in nodes:
                    for i in range(op_off[node], op_off[node + 1]):
                        used_next[op_q[i]] = r
            candidates: List[Tuple[int, int]] = []
            dead: List[int] = []
            for qid, r in resident.items():
                if qid in used_next:
                    continue
                if r not in active_next:
                    continue
                if next_use_idx[qid] >= len(uses[qid]):
                    dead.append(qid)
                    continue
                candidates.append((serial[qid], qid))
            for qid in dead:
                del resident[qid]
            candidates.sort()
            for _, qid in candidates:
                r = resident[qid]
                next_region = uses[qid][next_use_idx[qid]] & 0xFFFF
                if (
                    next_region == r
                    and machine.has_local_memory
                    and mm.local_has_space(r)
                ):
                    dest = ("local", r)
                    kind = "local"
                else:
                    dest = ("global",)
                    kind = "teleport"
                pending_evictions.append(
                    Move(qubit_objs[qid], ("region", r), dest, kind)
                )
                mm.move(qubit_objs[qid], dest)
                del resident[qid]
        yield t, epoch, cur_regions


@spanned("stream:derive_movement")
def derive_movement_stream(
    cols: StreamColumns,
    ssched: StreamedSchedule,
    machine: MultiSIMD,
    sink: Optional[
        Callable[[int, List[Move], List[Tuple[int, List[int]]]], None]
    ] = None,
) -> CommStats:
    """Drain :func:`iter_schedule_epochs` and return the communication
    profile; ``sink`` (if given) observes each epoch as it retires —
    the out-of-core export hook."""
    stats = CommStats(
        gate_cycles=0,
        comm_cycles=0,
        teleports=0,
        local_moves=0,
        teleport_epochs=0,
        local_epochs=0,
    )
    for t, epoch, regions in iter_schedule_epochs(
        cols, ssched, machine, stats
    ):
        if sink is not None:
            sink(t, epoch, regions)
    return stats


def engine_epochs(
    cols: StreamColumns,
    ssched: StreamedSchedule,
    machine: MultiSIMD,
) -> Iterator[Tuple[List[Move], List[Tuple[int, str, int]]]]:
    """Adapt :func:`iter_schedule_epochs` to the engine's streamed
    input shape: ``(moves, [(region, gate_name, op_count), ...])`` per
    timestep, ready for
    :func:`repro.engine.executor.run_schedule_stream`. The movement is
    derived on the fly; nothing is inflated."""
    stats = CommStats(
        gate_cycles=0,
        comm_cycles=0,
        teleports=0,
        local_moves=0,
        teleport_epochs=0,
        local_epochs=0,
    )
    gate_names = cols.gate_names
    gate_ids = cols.gate_ids
    for _, epoch, regions in iter_schedule_epochs(
        cols, ssched, machine, stats
    ):
        yield epoch, [
            (r, gate_names[gate_ids[nodes[0]]], len(nodes))
            for r, nodes in regions
            if nodes
        ]


# ---------------------------------------------------------------------------
# Inflation (tests / small inputs)
# ---------------------------------------------------------------------------


def to_schedule(cols: StreamColumns, ssched: StreamedSchedule) -> Schedule:
    """Inflate a streamed schedule to a boxed :class:`Schedule` (small
    inputs and the differential battery only — this rematerializes the
    full op list)."""
    statements = [cols.operation(i) for i in range(cols.n)]
    dag = DependenceDAG(statements)
    sched = Schedule(dag, k=ssched.k, d=ssched.d, algorithm=ssched.algorithm)
    for t in range(ssched.length):
        ts = sched.append_timestep()
        for r, nodes in ssched.regions_at(t):
            ts.regions[r].extend(nodes)
    return sched
