"""Sequential baseline scheduler.

One operation per timestep, in program order (which is a valid
topological order of the dependence DAG by construction). This is the
"sequential execution" that Figure 6's speedups — and, multiplied by the
naive movement factor, Figures 7 and 8's — are measured against.
"""

from __future__ import annotations

from typing import Optional

from ..core.dag import DependenceDAG
from ..instrument import spanned
from .types import Schedule

__all__ = ["schedule_sequential"]


@spanned("schedule:sequential")
def schedule_sequential(
    dag: DependenceDAG, k: int = 1, d: Optional[int] = None
) -> Schedule:
    """Schedule one op per timestep in region 0."""
    sched = Schedule(dag, k=k, d=d, algorithm="sequential")
    for node in range(dag.n):
        ts = sched.append_timestep()
        ts.regions[0].append(node)
    return sched
