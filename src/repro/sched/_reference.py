"""Reference (pre-optimization) scheduler implementations.

These are the straightforward implementations the fast path
(:mod:`repro.fastpath`) replaced: full ready-list rescans per timestep
in RCP and LPFS, per-width re-derivation in the coarse scheduler, and a
whole-memory-map eviction scan per timestep in movement derivation.
They are kept verbatim — not as dead code, but as the executable
specification the optimizations are measured and verified against:

* the differential battery (``tests/test_differential.py``) asserts the
  fast path produces *byte-identical* ``Schedule.to_dict()`` output on
  hundreds of generated programs;
* the ``perf`` harness (:mod:`repro.service.perf`) times the same
  pinned grid through both pipelines and records the speedup in
  ``BENCH_perf.json``.

The one deliberate semantic change shared by both paths is RCP's
deterministic tie-break: ``getMaxWeightSimdOpType`` historically kept
whichever (region, gate-type) pair it *encountered first* at the
maximum weight, which depended on ready-list arrival order. Both
implementations now break weight ties by smallest gate name, then
smallest region index (see ``_max_weight_simd_optype``).

Nothing here is instrumented: the public entry points in
:mod:`repro.sched.rcp` etc. dispatch to this module from inside their
``schedule:*`` spans, so reference runs are measured under the same
span names as fast runs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..arch.machine import (
    GATE_CYCLES,
    MultiSIMD,
    epoch_cycles,
    split_epoch,
)
from ..arch.memory import MemoryMap
from ..core.module import Module
from ..core.operation import Operation, Statement
from ..core.qubits import Qubit

__all__ = [
    "dag_edges_reference",
    "schedule_rcp_reference",
    "schedule_lpfs_reference",
    "derive_movement_reference",
    "schedule_coarse_reference",
]


# -- DAG construction ----------------------------------------------------


def _operands(stmt: Statement) -> Tuple[Qubit, ...]:
    return stmt.qubits if isinstance(stmt, Operation) else stmt.args


def dag_edges_reference(
    statements: Sequence[Statement],
) -> Tuple[List[List[int]], List[List[int]]]:
    """The original per-node set-and-sort edge construction.

    Returns ``(preds, succs)`` exactly as the pre-optimization
    ``DependenceDAG.__init__`` built them.
    """
    n = len(statements)
    preds: List[List[int]] = [[] for _ in range(n)]
    succs: List[List[int]] = [[] for _ in range(n)]
    last_touch: Dict[Qubit, int] = {}
    for i, stmt in enumerate(statements):
        pred_set = set()
        for q in _operands(stmt):
            prev = last_touch.get(q)
            if prev is not None:
                pred_set.add(prev)
            last_touch[q] = i
        for p in sorted(pred_set):
            preds[i].append(p)
            succs[p].append(i)
    return preds, succs


# -- RCP -----------------------------------------------------------------


def schedule_rcp_reference(dag, k, d=None, weights=None):
    """Pre-optimization RCP: deque ready list, full rescans."""
    from .rcp import RCPWeights
    from .types import Schedule

    w = weights or RCPWeights()
    sched = Schedule(dag, k=k, d=d, algorithm="rcp")
    indeg = dag.indegrees()
    slack = dag.slack()
    ready: Deque[int] = deque(dag.sources())
    in_ready = set(ready)
    location: Dict[Qubit, Optional[int]] = {}
    scheduled = 0

    while scheduled < dag.n:
        ts = sched.append_timestep()
        available = list(range(k))
        placed_this_ts: List[int] = []
        while available and ready:
            region, gate = _max_weight_simd_optype(
                dag, ready, available, location, slack, w
            )
            batch = _extract_optype(dag, ready, in_ready, gate, d)
            ts.regions[region].extend(batch)
            placed_this_ts.extend(batch)
            for node in batch:
                for q in dag.statements[node].qubits:
                    location[q] = region
            available.remove(region)
        for node in placed_this_ts:
            for child in dag.succs[node]:
                indeg[child] -= 1
                if indeg[child] == 0 and child not in in_ready:
                    ready.append(child)
                    in_ready.add(child)
        scheduled += len(placed_this_ts)
        if not placed_this_ts:  # pragma: no cover - defensive
            raise RuntimeError("RCP made no progress (scheduler bug)")
    return sched


def _max_weight_simd_optype(
    dag,
    ready: Deque[int],
    available: List[int],
    location: Dict[Qubit, Optional[int]],
    slack: List[int],
    w,
) -> Tuple[int, str]:
    """``getMaxWeightSimdOpType`` with the deterministic tie-break:
    highest weight wins; weight ties go to the smallest gate name, then
    the smallest region index."""
    optype_count: Dict[str, int] = {}
    for node in ready:
        gate = dag.statements[node].gate
        optype_count[gate] = optype_count.get(gate, 0) + 1

    best_gate: Optional[str] = None
    best_region = -1
    best_weight = float("-inf")
    for region in available:
        for node in ready:
            op = dag.statements[node]
            resident = sum(
                1 for q in op.qubits if location.get(q) == region
            )
            weight = (
                w.w_op * optype_count[op.gate]
                + w.w_dist * resident
                - w.w_slack * slack[node]
            )
            if weight > best_weight or (
                weight == best_weight
                and (op.gate, region) < (best_gate, best_region)
            ):
                best_weight = weight
                best_gate = op.gate
                best_region = region
    assert best_gate is not None
    return best_region, best_gate


def _extract_optype(
    dag,
    ready: Deque[int],
    in_ready: set,
    gate: str,
    d: Optional[int],
) -> List[int]:
    cap = len(ready) if d is None else d
    batch: List[int] = []
    keep: List[int] = []
    while ready:
        node = ready.popleft()
        if len(batch) < cap and dag.statements[node].gate == gate:
            batch.append(node)
            in_ready.discard(node)
        else:
            keep.append(node)
    ready.extend(keep)
    return batch


# -- LPFS ----------------------------------------------------------------


def schedule_lpfs_reference(dag, k, d=None, l=1, simd=True, refill=True):
    """Pre-optimization LPFS: one shared deque, full rescans per
    region per timestep."""
    from .types import Schedule

    if not 1 <= l <= k:
        raise ValueError(f"need 1 <= l <= k, got l={l}, k={k}")
    sched = Schedule(dag, k=k, d=d, algorithm="lpfs")
    indeg = dag.indegrees()
    ready: Deque[int] = deque(dag.sources())
    in_ready: Set[int] = set(ready)
    on_path: Set[int] = set()
    done: Set[int] = set()
    paths: List[Deque[int]] = []
    for _ in range(l):
        paths.append(_claim_longest_path(dag, ready, on_path, in_ready, done))

    scheduled = 0
    while scheduled < dag.n:
        ts = sched.append_timestep()
        placed: List[int] = []
        for i in range(l):
            if refill and not paths[i]:
                paths[i] = _claim_longest_path(
                    dag, ready, on_path, in_ready, done
                )
            path = paths[i]
            if path and path[0] in in_ready:
                head = path.popleft()
                in_ready.discard(head)
                on_path.discard(head)
                ts.regions[i].append(head)
                placed.append(head)
                if simd:
                    gate = dag.statements[head].gate
                    cap = None if d is None else d - 1
                    batch = _extract_free(
                        dag, ready, in_ready, on_path, gate, cap
                    )
                    ts.regions[i].extend(batch)
                    placed.extend(batch)
            elif simd:
                gate = _most_common_free_gate(dag, ready, in_ready, on_path)
                if gate is not None:
                    batch = _extract_free(
                        dag, ready, in_ready, on_path, gate, d
                    )
                    ts.regions[i].extend(batch)
                    placed.extend(batch)
        for i in range(l, k):
            gate = _oldest_free_gate(dag, ready, in_ready, on_path)
            if gate is None:
                break
            batch = _extract_free(dag, ready, in_ready, on_path, gate, d)
            ts.regions[i].extend(batch)
            placed.extend(batch)
        if not placed:
            node = None
            while ready:
                candidate = ready.popleft()
                if candidate in in_ready:
                    node = candidate
                    break
            if node is None:  # pragma: no cover - defensive
                raise RuntimeError("LPFS deadlock (scheduler bug)")
            in_ready.discard(node)
            on_path.discard(node)
            for i in range(l):
                if paths[i] and paths[i][0] == node:
                    paths[i].popleft()
            ts.regions[0].append(node)
            placed.append(node)
        done.update(placed)
        for node in placed:
            for child in dag.succs[node]:
                indeg[child] -= 1
                if indeg[child] == 0 and child not in in_ready:
                    ready.append(child)
                    in_ready.add(child)
        scheduled += len(placed)
    return sched


def _claim_longest_path(
    dag,
    ready: Deque[int],
    on_path: Set[int],
    in_ready: Optional[Set[int]] = None,
    scheduled_set: Optional[Set[int]] = None,
) -> Deque[int]:
    live = in_ready if in_ready is not None else set(ready)
    candidates = [n for n in ready if n in live and n not in on_path]
    if not candidates:
        return deque()
    heights = dag.heights()
    start = max(candidates, key=lambda n: (heights[n], -n))
    blocked = scheduled_set or set()
    path: Deque[int] = deque()
    node: Optional[int] = start
    while node is not None and node not in on_path and node not in blocked:
        path.append(node)
        on_path.add(node)
        succs = dag.succs[node]
        node = (
            max(succs, key=lambda s: (heights[s], -s)) if succs else None
        )
    return path


def _extract_free(
    dag,
    ready: Deque[int],
    in_ready: Set[int],
    on_path: Set[int],
    gate: str,
    cap: Optional[int],
) -> List[int]:
    limit = len(ready) if cap is None else max(0, cap)
    batch: List[int] = []
    keep: List[int] = []
    while ready:
        node = ready.popleft()
        if node not in in_ready:
            continue  # stale entry
        if (
            len(batch) < limit
            and node not in on_path
            and dag.statements[node].gate == gate
        ):
            batch.append(node)
            in_ready.discard(node)
        else:
            keep.append(node)
    ready.extend(keep)
    return batch


def _most_common_free_gate(
    dag,
    ready: Deque[int],
    in_ready: Set[int],
    on_path: Set[int],
) -> Optional[str]:
    counts: Dict[str, int] = {}
    for node in ready:
        if node in in_ready and node not in on_path:
            gate = dag.statements[node].gate
            counts[gate] = counts.get(gate, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda g: (counts[g], g))


def _oldest_free_gate(
    dag,
    ready: Deque[int],
    in_ready: Set[int],
    on_path: Set[int],
) -> Optional[str]:
    for node in ready:
        if node in in_ready and node not in on_path:
            return dag.statements[node].gate
    return None


# -- movement derivation -------------------------------------------------


def _loc_label(loc: tuple) -> str:
    if loc[0] == "global":
        return "global"
    return f"{loc[0]}{loc[1]}"


def derive_movement_reference(sched, machine: MultiSIMD):
    """Pre-optimization movement derivation: the eviction pass scans
    the whole memory map every timestep."""
    from .comm import CommStats
    from .types import Move

    for ts in sched.timesteps:
        ts.moves = []

    uses: Dict[Qubit, List[Tuple[int, int]]] = {}
    for t, ts in enumerate(sched.timesteps):
        for r, nodes in enumerate(ts.regions):
            for n in nodes:
                for q in sched.dag.statements[n].qubits:
                    uses.setdefault(q, []).append((t, r))
    next_use_idx: Dict[Qubit, int] = {q: 0 for q in uses}

    mm = MemoryMap(k=sched.k, local_capacity=machine.local_memory)
    stats = CommStats(
        gate_cycles=sched.length * GATE_CYCLES,
        comm_cycles=0,
        teleports=0,
        local_moves=0,
        teleport_epochs=0,
        local_epochs=0,
    )
    pending_evictions: List[Move] = []

    for t, ts in enumerate(sched.timesteps):
        epoch: List[Move] = list(pending_evictions)
        pending_evictions = []
        for r, nodes in enumerate(ts.regions):
            target = ("region", r)
            for n in nodes:
                for q in sched.dag.statements[n].qubits:
                    src = mm.location(q)
                    if src == target:
                        continue
                    kind = (
                        "local"
                        if src == ("local", r)
                        else "teleport"
                    )
                    epoch.append(Move(q, src, target, kind))
                    mm.move(q, target)
            for n in nodes:
                for q in sched.dag.statements[n].qubits:
                    i = next_use_idx[q]
                    while i < len(uses[q]) and uses[q][i][0] <= t:
                        i += 1
                    next_use_idx[q] = i
        ts.moves = epoch
        _bill_epoch(epoch, stats)
        if t + 1 < len(sched.timesteps):
            next_ts = sched.timesteps[t + 1]
            active_next = {
                r for r, nodes in enumerate(next_ts.regions) if nodes
            }
            used_next: Dict[Qubit, int] = {}
            for r, nodes in enumerate(next_ts.regions):
                for n in nodes:
                    for q in sched.dag.statements[n].qubits:
                        used_next[q] = r
            for q, loc in list(mm.locations.items()):
                if loc[0] != "region":
                    continue
                r = loc[1]
                if used_next.get(q) is not None:
                    continue
                if r not in active_next:
                    continue
                nu = next_use_idx[q]
                if nu >= len(uses[q]):
                    continue
                next_region = uses[q][nu][1]
                if (
                    next_region == r
                    and machine.has_local_memory
                    and mm.local_has_space(r)
                ):
                    dest = ("local", r)
                    kind = "local"
                else:
                    dest = ("global",)
                    kind = "teleport"
                pending_evictions.append(Move(q, loc, dest, kind))
                mm.move(q, dest)
    return stats


def _bill_epoch(epoch, stats) -> None:
    teleports, locals_ = split_epoch(epoch)
    stats.teleports += len(teleports)
    stats.local_moves += len(locals_)
    stats.comm_cycles += epoch_cycles(len(teleports), len(locals_))
    if teleports:
        stats.teleport_epochs += 1
        stats.epr.record_epoch(
            [(_loc_label(m.src), _loc_label(m.dst)) for m in teleports]
        )
    elif locals_:
        stats.local_epochs += 1


# -- coarse scheduling ---------------------------------------------------


def schedule_coarse_reference(
    module: Module,
    callee_dims: Dict[str, Dict[int, int]],
    k: int,
    gate_cost: int = 1,
    call_overhead: int = 0,
):
    """Pre-optimization coarse scheduling: rebuilds the statement DAG
    and every dims table on each call (the toolflow called this 2x per
    candidate width per module)."""
    from ..core.dag import DependenceDAG
    from .coarse import CoarseResult, Placement

    stmts = module.body
    if not stmts:
        return CoarseResult(module.name, k, 0, 0, [])
    dims_of: List[Dict[int, int]] = []
    for stmt in stmts:
        if isinstance(stmt, Operation):
            dims_of.append({1: gate_cost})
        else:
            table = callee_dims.get(stmt.callee)
            if not table:
                raise KeyError(
                    f"no dimensions for callee {stmt.callee!r}"
                )
            dims_of.append(
                {
                    w: stmt.iterations * c + call_overhead
                    for w, c in table.items()
                }
            )
    min_costs = [min(d.values()) for d in dims_of]
    dag = DependenceDAG(stmts, weights=min_costs)
    heights = dag.heights()
    order = sorted(range(len(stmts)), key=lambda i: (-heights[i], i))

    free = [0] * k
    finish: Dict[int, int] = {}
    placements: List[Placement] = []

    idx = 0
    while idx < len(order):
        node = order[idx]
        te = max((finish[p] for p in dag.preds[node]), default=0)
        avail = sum(1 for f in free if f <= te)
        batch = [node]
        width_sum = min(dims_of[node])
        j = idx + 1
        while j < len(order) and avail > 1:
            cand = order[j]
            if any(p not in finish for p in dag.preds[cand]):
                break
            te_c = max((finish[p] for p in dag.preds[cand]), default=0)
            if te_c != te:
                break
            w_min = min(dims_of[cand])
            if width_sum + w_min > avail:
                break
            batch.append(cand)
            width_sum += w_min
            j += 1

        if len(batch) == 1:
            best: Optional[Tuple[int, int, int, int]] = None
            for w, cost in sorted(dims_of[node].items()):
                if w > k:
                    continue
                start = max(te, free[w - 1])
                fin = start + cost
                if best is None or (fin, w) < (best[0], best[1]):
                    best = (fin, w, start, cost)
            assert best is not None, "dims must contain width 1"
            fin, w, start, _ = best
            for i in range(w):
                free[i] = max(free[i], fin)
            free.sort()
            finish[node] = fin
            placements.append(Placement(node, start, fin, w))
            idx += 1
            continue

        widths = _optimize_widths(batch, dims_of, avail)
        slot = 0
        for member in batch:
            w = widths[member]
            fin = te + dims_of[member][w]
            for _ in range(w):
                free[slot] = fin
                slot += 1
            finish[member] = fin
            placements.append(Placement(member, te, fin, w))
        free.sort()
        idx += len(batch)

    total_length = max(p.finish for p in placements)
    total_width = _peak_width(placements)
    return CoarseResult(
        module.name, k, total_length, total_width, placements
    )


def _optimize_widths(
    members: List[int], dims_of: List[Dict[int, int]], budget: int
) -> Dict[int, int]:
    widths = {m: min(dims_of[m]) for m in members}

    def cost(m: int) -> int:
        return dims_of[m][widths[m]]

    while True:
        used = sum(widths.values())
        improved = False
        for m in sorted(members, key=cost, reverse=True):
            larger = [w for w in dims_of[m] if w > widths[m]]
            if not larger:
                continue
            nw = min(larger)
            if used - widths[m] + nw > budget:
                continue
            if dims_of[m][nw] >= cost(m):
                continue
            widths[m] = nw
            improved = True
            break
        if not improved:
            break
    return widths


def _peak_width(placements) -> int:
    events: List[Tuple[int, int]] = []
    for p in placements:
        events.append((p.start, p.width))
        events.append((p.finish, -p.width))
    events.sort()
    peak = cur = 0
    for _, delta in events:
        cur += delta
        peak = max(peak, cur)
    return peak
