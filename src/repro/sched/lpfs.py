"""Longest-Path-First Scheduling (LPFS) — the paper's Algorithm 2.

Many quantum benchmarks are mostly serial at the operation level
(critical-path speedup ~1.5x, Figure 6), so parallelism buys little —
but *communication* can be attacked by keeping the qubits of long serial
chains pinned in one region. LPFS dedicates ``l`` of the ``k`` SIMD
regions to the ``l`` longest dependence paths; operations on those paths
execute in their pinned region, so their qubits never move. Remaining
regions consume the *free list* (ready ops not on any pinned path) with
SIMD grouping by gate type.

Options (both enabled in the paper's experiments, with ``l = 1``):

* **SIMD** — a path region may also execute free-list ops of the same
  gate type as the path op (data parallelism), and may execute free-list
  ops outright when its path is stalled on a dependency;
* **Refill** — when a pinned path completes, the region is re-seeded
  with the longest path rooted in the current ready list.

Paths are chains (each node a DAG successor of the previous), so only a
path's *head* can ever be ready; heads stall until their off-path
dependencies resolve.

The fast path replaces the single ready deque (rescanned per free-list
query) with :class:`_FreeList`: per-gate-type buckets plus an arrival
FIFO, with lazy deletion and incremental per-gate counts, so
most-common-gate is a counter read, oldest-gate amortizes to O(1), and
extraction touches only the requested bucket. Nodes become ready exactly
once, so lazily dropped stale entries never resurface. The
pre-optimization implementation is
:func:`repro.sched._reference.schedule_lpfs_reference`; both produce
bit-identical schedules.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from ..core.dag import DependenceDAG
from ..fastpath import fast_path_enabled
from ..instrument import spanned
from .types import Schedule

__all__ = ["schedule_lpfs"]


class _FreeList:
    """Bucketed lazy-deletion ready set for LPFS.

    ``in_ready`` is the authoritative membership; ``buckets`` (per gate
    type, arrival order) and ``fifo`` (global arrival order) may hold
    stale entries, dropped when encountered. ``counts[g]`` is the live
    in-ready count per gate; ``path_counts[g]`` the live in-ready count
    claimed by a pinned path — the difference is the free-list size per
    gate, which answers ``most_common`` without a rescan.
    """

    __slots__ = (
        "gates",
        "on_path",
        "in_ready",
        "buckets",
        "fifo",
        "counts",
        "path_counts",
    )

    def __init__(self, dag: DependenceDAG, on_path: Set[int]):
        self.gates = [stmt.gate for stmt in dag.statements]
        self.on_path = on_path
        self.in_ready: Set[int] = set()
        self.buckets: Dict[str, Deque[int]] = {}
        self.fifo: Deque[int] = deque()
        self.counts: Dict[str, int] = {}
        self.path_counts: Dict[str, int] = {}

    def add(self, node: int) -> None:
        """A node's last dependency completed: it is now ready."""
        gate = self.gates[node]
        bucket = self.buckets.get(gate)
        if bucket is None:
            bucket = self.buckets[gate] = deque()
        bucket.append(node)
        self.fifo.append(node)
        self.in_ready.add(node)
        self.counts[gate] = self.counts.get(gate, 0) + 1
        if node in self.on_path:
            # A claimed path head just became ready.
            self.path_counts[gate] = self.path_counts.get(gate, 0) + 1

    def claim_mark(self, node: int) -> None:
        """A path claim just put ``node`` in ``on_path``."""
        if node in self.in_ready:
            gate = self.gates[node]
            self.path_counts[gate] = self.path_counts.get(gate, 0) + 1

    def remove_scheduled(self, node: int) -> None:
        """``node`` was scheduled outside extraction (path head or
        progress-guard fallback); its bucket/FIFO entries go stale."""
        if node in self.in_ready:
            self.in_ready.discard(node)
            gate = self.gates[node]
            self.counts[gate] -= 1
            if node in self.on_path:
                self.path_counts[gate] -= 1

    def extract(self, gate: str, cap: Optional[int]) -> List[int]:
        """Pull up to ``cap`` live, non-path ops of type ``gate`` in
        arrival order (all of them when ``cap`` is None)."""
        bucket = self.buckets.get(gate)
        if not bucket:
            return []
        limit = len(bucket) if cap is None else cap
        if limit <= 0:
            return []
        in_ready = self.in_ready
        on_path = self.on_path
        batch: List[int] = []
        stash: List[int] = []
        while bucket and len(batch) < limit:
            node = bucket.popleft()
            if node not in in_ready:
                continue  # stale entry: dropped for good
            if node in on_path:
                stash.append(node)  # path-claimed: keep, in order
                continue
            batch.append(node)
            in_ready.discard(node)
        if stash:
            bucket.extendleft(reversed(stash))
        if not bucket:
            del self.buckets[gate]
        if batch:
            self.counts[gate] -= len(batch)
        return batch

    def most_common(self) -> Optional[str]:
        """Gate type with the most free (live, non-path) ready ops;
        ties go to the lexicographically largest name."""
        path_counts = self.path_counts
        best_gate: Optional[str] = None
        best_free = 0
        for gate, count in self.counts.items():
            free = count - path_counts.get(gate, 0)
            if free <= 0:
                continue
            if free > best_free or (free == best_free and gate > best_gate):
                best_free = free
                best_gate = gate
        return best_gate

    def oldest(self) -> Optional[str]:
        """Gate type of the oldest free ready op (FIFO order)."""
        fifo = self.fifo
        in_ready = self.in_ready
        on_path = self.on_path
        # Fast path: pop stale heads in place; a live, non-path head
        # answers without any reordering.
        while fifo:
            node = fifo[0]
            if node not in in_ready:
                fifo.popleft()
                continue  # stale entry: dropped for good
            if node not in on_path:
                return self.gates[node]
            break
        else:
            return None
        # A live path head blocks the front: scan past it with a stash.
        stash: List[int] = []
        gate: Optional[str] = None
        while fifo:
            node = fifo.popleft()
            if node not in in_ready:
                continue
            stash.append(node)
            if node not in on_path:
                gate = self.gates[node]
                break
        if stash:
            fifo.extendleft(reversed(stash))
        return gate

    def fallback_pop(self) -> Optional[int]:
        """Pop the oldest live ready op (path-claimed or not) for the
        progress guard. Removes it from the ready set."""
        fifo = self.fifo
        while fifo:
            node = fifo.popleft()
            if node in self.in_ready:
                self.remove_scheduled(node)
                return node
        return None


@spanned("schedule:lpfs")
def schedule_lpfs(
    dag: DependenceDAG,
    k: int,
    d: Optional[int] = None,
    l: int = 1,
    simd: bool = True,
    refill: bool = True,
) -> Schedule:
    """Schedule ``dag`` on a Multi-SIMD(k,d) machine with LPFS.

    Args:
        k: SIMD region count.
        d: per-region data-parallel cap (None = unbounded).
        l: number of regions pinned to longest paths (1 <= l <= k).
        simd: enable opportunistic SIMD fill in path regions.
        refill: re-seed a path region when its path completes.
    """
    if not 1 <= l <= k:
        raise ValueError(f"need 1 <= l <= k, got l={l}, k={k}")
    if not fast_path_enabled():
        from ._reference import schedule_lpfs_reference

        return schedule_lpfs_reference(dag, k, d, l, simd, refill)

    sched = Schedule(dag, k=k, d=d, algorithm="lpfs")
    statements = dag.statements
    succs_all = dag.succs
    indeg = dag.indegrees()
    heights = dag.heights()
    on_path: Set[int] = set()
    done: Set[int] = set()
    free_list = _FreeList(dag, on_path)
    for node in dag.sources():
        free_list.add(node)
    paths: List[Deque[int]] = [
        _claim_longest_path(dag, heights, free_list, done)
        for _ in range(l)
    ]

    scheduled = 0
    while scheduled < dag.n:
        ts = sched.append_timestep()
        placed: List[int] = []
        # --- allocated (path-pinned) regions -----------------------------
        for i in range(l):
            if refill and not paths[i]:
                paths[i] = _claim_longest_path(
                    dag, heights, free_list, done
                )
            path = paths[i]
            if path and path[0] in free_list.in_ready:
                head = path.popleft()
                free_list.remove_scheduled(head)
                on_path.discard(head)
                ts.regions[i].append(head)
                placed.append(head)
                if simd:
                    gate = statements[head].gate
                    cap = None if d is None else d - 1
                    batch = free_list.extract(gate, cap)
                    ts.regions[i].extend(batch)
                    placed.extend(batch)
            elif simd:
                # Path empty or stalled: execute free-list ops instead.
                gate = free_list.most_common()
                if gate is not None:
                    batch = free_list.extract(gate, d)
                    ts.regions[i].extend(batch)
                    placed.extend(batch)
        # --- unallocated regions: drain the free list --------------------
        for i in range(l, k):
            gate = free_list.oldest()
            if gate is None:
                break
            batch = free_list.extract(gate, d)
            ts.regions[i].extend(batch)
            placed.extend(batch)
        # --- progress guard ----------------------------------------------
        # With k == l and SIMD off, free-list ops have no region to run
        # in; fall back to executing the oldest ready op in region 0 so
        # the schedule always completes (deviation noted in DESIGN.md).
        if not placed:
            node = free_list.fallback_pop()
            if node is None:  # pragma: no cover - defensive
                raise RuntimeError("LPFS deadlock (scheduler bug)")
            on_path.discard(node)
            for i in range(l):
                if paths[i] and paths[i][0] == node:
                    paths[i].popleft()
            ts.regions[0].append(node)
            placed.append(node)
        # --- ready-list update -------------------------------------------
        done.update(placed)
        for node in placed:
            for child in succs_all[node]:
                indeg[child] -= 1
                if indeg[child] == 0 and child not in free_list.in_ready:
                    free_list.add(child)
        scheduled += len(placed)
    return sched


def _claim_longest_path(
    dag: DependenceDAG,
    heights: List[int],
    free_list: _FreeList,
    done: Set[int],
) -> Deque[int]:
    """``getNextLongestPath``: the longest chain rooted in the current
    ready list, truncated if it runs into a node already claimed by
    another path or already scheduled. Claims its nodes in
    ``on_path``."""
    on_path = free_list.on_path
    candidates = [n for n in free_list.in_ready if n not in on_path]
    if not candidates:
        return deque()
    start = max(candidates, key=lambda n: (heights[n], -n))
    path: Deque[int] = deque()
    node: Optional[int] = start
    while node is not None and node not in on_path and node not in done:
        path.append(node)
        on_path.add(node)
        free_list.claim_mark(node)
        succs = dag.succs[node]
        node = (
            max(succs, key=lambda s: (heights[s], -s)) if succs else None
        )
    return path
