"""Longest-Path-First Scheduling (LPFS) — the paper's Algorithm 2.

Many quantum benchmarks are mostly serial at the operation level
(critical-path speedup ~1.5x, Figure 6), so parallelism buys little —
but *communication* can be attacked by keeping the qubits of long serial
chains pinned in one region. LPFS dedicates ``l`` of the ``k`` SIMD
regions to the ``l`` longest dependence paths; operations on those paths
execute in their pinned region, so their qubits never move. Remaining
regions consume the *free list* (ready ops not on any pinned path) with
SIMD grouping by gate type.

Options (both enabled in the paper's experiments, with ``l = 1``):

* **SIMD** — a path region may also execute free-list ops of the same
  gate type as the path op (data parallelism), and may execute free-list
  ops outright when its path is stalled on a dependency;
* **Refill** — when a pinned path completes, the region is re-seeded
  with the longest path rooted in the current ready list.

Paths are chains (each node a DAG successor of the previous), so only a
path's *head* can ever be ready; heads stall until their off-path
dependencies resolve.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from ..core.dag import DependenceDAG
from ..instrument import spanned
from .types import Schedule

__all__ = ["schedule_lpfs"]


@spanned("schedule:lpfs")
def schedule_lpfs(
    dag: DependenceDAG,
    k: int,
    d: Optional[int] = None,
    l: int = 1,
    simd: bool = True,
    refill: bool = True,
) -> Schedule:
    """Schedule ``dag`` on a Multi-SIMD(k,d) machine with LPFS.

    Args:
        k: SIMD region count.
        d: per-region data-parallel cap (None = unbounded).
        l: number of regions pinned to longest paths (1 <= l <= k).
        simd: enable opportunistic SIMD fill in path regions.
        refill: re-seed a path region when its path completes.
    """
    if not 1 <= l <= k:
        raise ValueError(f"need 1 <= l <= k, got l={l}, k={k}")
    sched = Schedule(dag, k=k, d=d, algorithm="lpfs")
    indeg = dag.indegrees()
    ready: Deque[int] = deque(dag.sources())
    in_ready: Set[int] = set(ready)
    on_path: Set[int] = set()
    done: Set[int] = set()
    paths: List[Deque[int]] = []
    for _ in range(l):
        paths.append(_claim_longest_path(dag, ready, on_path, in_ready, done))

    scheduled = 0
    while scheduled < dag.n:
        ts = sched.append_timestep()
        placed: List[int] = []
        # --- allocated (path-pinned) regions -----------------------------
        for i in range(l):
            if refill and not paths[i]:
                paths[i] = _claim_longest_path(
                    dag, ready, on_path, in_ready, done
                )
            path = paths[i]
            if path and path[0] in in_ready:
                head = path.popleft()
                in_ready.discard(head)  # its deque entry is now stale
                on_path.discard(head)
                ts.regions[i].append(head)
                placed.append(head)
                if simd:
                    gate = dag.statements[head].gate
                    cap = None if d is None else d - 1
                    batch = _extract_free(
                        dag, ready, in_ready, on_path, gate, cap
                    )
                    ts.regions[i].extend(batch)
                    placed.extend(batch)
            elif simd:
                # Path empty or stalled: execute free-list ops instead.
                gate = _most_common_free_gate(dag, ready, in_ready, on_path)
                if gate is not None:
                    batch = _extract_free(
                        dag, ready, in_ready, on_path, gate, d
                    )
                    ts.regions[i].extend(batch)
                    placed.extend(batch)
        # --- unallocated regions: drain the free list --------------------
        for i in range(l, k):
            gate = _oldest_free_gate(dag, ready, in_ready, on_path)
            if gate is None:
                break
            batch = _extract_free(dag, ready, in_ready, on_path, gate, d)
            ts.regions[i].extend(batch)
            placed.extend(batch)
        # --- progress guard ----------------------------------------------
        # With k == l and SIMD off, free-list ops have no region to run
        # in; fall back to executing the oldest ready op in region 0 so
        # the schedule always completes (deviation noted in DESIGN.md).
        if not placed:
            node = None
            while ready:
                candidate = ready.popleft()
                if candidate in in_ready:
                    node = candidate
                    break
            if node is None:  # pragma: no cover - defensive
                raise RuntimeError("LPFS deadlock (scheduler bug)")
            in_ready.discard(node)
            on_path.discard(node)
            for i in range(l):
                if paths[i] and paths[i][0] == node:
                    paths[i].popleft()
            ts.regions[0].append(node)
            placed.append(node)
        # --- ready-list update -------------------------------------------
        done.update(placed)
        for node in placed:
            for child in dag.succs[node]:
                indeg[child] -= 1
                if indeg[child] == 0 and child not in in_ready:
                    ready.append(child)
                    in_ready.add(child)
        scheduled += len(placed)
    return sched


def _claim_longest_path(
    dag: DependenceDAG,
    ready: Deque[int],
    on_path: Set[int],
    in_ready: Optional[Set[int]] = None,
    scheduled_set: Optional[Set[int]] = None,
) -> Deque[int]:
    """``getNextLongestPath``: the longest chain rooted in the current
    ready list, truncated if it runs into a node already claimed by
    another path or already scheduled. Claims its nodes in
    ``on_path``."""
    live = in_ready if in_ready is not None else set(ready)
    candidates = [n for n in ready if n in live and n not in on_path]
    if not candidates:
        return deque()
    heights = dag.heights()
    start = max(candidates, key=lambda n: (heights[n], -n))
    blocked = scheduled_set or set()
    path: Deque[int] = deque()
    node: Optional[int] = start
    while node is not None and node not in on_path and node not in blocked:
        path.append(node)
        on_path.add(node)
        succs = dag.succs[node]
        node = (
            max(succs, key=lambda s: (heights[s], -s)) if succs else None
        )
    return path


def _extract_free(
    dag: DependenceDAG,
    ready: Deque[int],
    in_ready: Set[int],
    on_path: Set[int],
    gate: str,
    cap: Optional[int],
) -> List[int]:
    """Pull ready, non-path ops of type ``gate`` (up to ``cap``).

    The deque may hold stale entries for ops scheduled via a pinned
    path; ``in_ready`` is the authoritative membership and stale
    entries are dropped here.
    """
    limit = len(ready) if cap is None else max(0, cap)
    batch: List[int] = []
    keep: List[int] = []
    while ready:
        node = ready.popleft()
        if node not in in_ready:
            continue  # stale entry
        if (
            len(batch) < limit
            and node not in on_path
            and dag.statements[node].gate == gate
        ):
            batch.append(node)
            in_ready.discard(node)
        else:
            keep.append(node)
    ready.extend(keep)
    return batch


def _most_common_free_gate(
    dag: DependenceDAG,
    ready: Deque[int],
    in_ready: Set[int],
    on_path: Set[int],
) -> Optional[str]:
    counts: Dict[str, int] = {}
    for node in ready:
        if node in in_ready and node not in on_path:
            gate = dag.statements[node].gate
            counts[gate] = counts.get(gate, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda g: (counts[g], g))


def _oldest_free_gate(
    dag: DependenceDAG,
    ready: Deque[int],
    in_ready: Set[int],
    on_path: Set[int],
) -> Optional[str]:
    for node in ready:
        if node in in_ready and node not in on_path:
            return dag.statements[node].gate
    return None
