"""Human-readable and machine-readable schedule reports.

Rendering helpers used by the examples, the CLI, and downstream tools:

* :func:`render_timeline` — the paper's Figure-4-style cycle-by-cycle
  listing of a fine-grained schedule (one column per SIMD region, the
  movement epoch annotated per the "0th region" convention);
* :func:`schedule_to_dict` / :func:`schedule_from_dict` and
  :func:`compile_result_to_dict` / :func:`compile_result_from_dict` —
  JSON-safe exports of schedules and whole compile results, and the
  loaders that reconstruct them (the round-trip the service-layer
  artifact cache is built on);
* :func:`profile_table` — per-module blackbox dimension tables.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..analysis.diagnostics import Diagnostic
from ..arch.machine import MultiSIMD
from ..core.dag import DependenceDAG
from ..core.module import Module, Program
from ..core.operation import CallSite, Operation
from ..core.qubits import Qubit
from .comm import CommStats
from .types import Move, Schedule

__all__ = [
    "render_coarse_gantt",
    "render_timeline",
    "schedule_to_dict",
    "schedule_from_dict",
    "compile_result_to_dict",
    "compile_result_from_dict",
    "profile_table",
]


def _op_text(sched: Schedule, node: int, show_qubits: bool) -> str:
    op = sched.operation(node)
    if not show_qubits:
        return op.gate
    qubits = ",".join(f"{q.register}{q.index}" for q in op.qubits)
    return f"{op.gate}({qubits})"


def render_timeline(
    sched: Schedule,
    max_timesteps: Optional[int] = 40,
    show_qubits: bool = True,
    column_width: int = 24,
) -> str:
    """Render a fine-grained schedule as a cycle-by-cycle table.

    Each row is one timestep; columns are the k SIMD regions; the final
    column summarises the movement epoch preceding the timestep.
    """
    header = (
        ["cycle"]
        + [f"region {r}" for r in range(sched.k)]
        + ["moves"]
    )
    lines = ["  ".join(h.ljust(column_width if i else 5)
                       for i, h in enumerate(header))]
    lines.append("-" * len(lines[0]))
    shown = sched.timesteps
    truncated = 0
    if max_timesteps is not None and len(shown) > max_timesteps:
        truncated = len(shown) - max_timesteps
        shown = shown[:max_timesteps]
    for t, ts in enumerate(shown):
        cells = [str(t + 1).ljust(5)]
        for nodes in ts.regions:
            text = " ".join(
                _op_text(sched, n, show_qubits) for n in nodes
            )
            if len(text) > column_width:
                text = text[: column_width - 1] + "…"
            cells.append(text.ljust(column_width))
        teleports = sum(1 for m in ts.moves if m.kind == "teleport")
        locals_ = sum(1 for m in ts.moves if m.kind == "local")
        move_text = []
        if teleports:
            move_text.append(f"{teleports} teleport")
        if locals_:
            move_text.append(f"{locals_} local")
        cells.append(", ".join(move_text))
        lines.append("  ".join(cells).rstrip())
    if truncated:
        lines.append(f"... ({truncated} more timesteps)")
    return "\n".join(lines)


def _qubit_name(q: Qubit) -> str:
    return f"{q.register}[{q.index}]"


def _parse_qubit(name: str) -> Qubit:
    """Inverse of :func:`_qubit_name` (``reg[i]`` -> :class:`Qubit`)."""
    register, _, index = name.rpartition("[")
    if not register or not index.endswith("]"):
        raise ValueError(f"malformed qubit name {name!r}")
    return Qubit(register, int(index[:-1]))


def schedule_to_dict(sched: Schedule) -> Dict[str, Any]:
    """A JSON-safe dict of one fine-grained schedule.

    The export is self-contained for round-tripping: ``statements``
    lists every DAG node's operation in node order, and each placed op
    carries its ``node`` index, so :func:`schedule_from_dict` can
    rebuild the dependence DAG and the exact placement.
    """
    return {
        "algorithm": sched.algorithm,
        "k": sched.k,
        "d": sched.d,
        "length": sched.length,
        "op_count": sched.op_count,
        "max_width": sched.max_width,
        "teleport_moves": sched.teleport_moves,
        "local_moves": sched.local_moves,
        "statements": [
            {
                "gate": op.gate,
                "qubits": [_qubit_name(q) for q in op.qubits],
                **({"angle": op.angle} if op.angle is not None else {}),
            }
            for op in (
                sched.operation(n) for n in range(sched.dag.n)
            )
        ],
        "timesteps": [
            {
                "regions": [
                    [
                        {
                            "node": n,
                            "gate": sched.operation(n).gate,
                            "qubits": [
                                _qubit_name(q)
                                for q in sched.operation(n).qubits
                            ],
                        }
                        for n in nodes
                    ]
                    for nodes in ts.regions
                ],
                "moves": [
                    {
                        "qubit": _qubit_name(m.qubit),
                        "src": list(m.src),
                        "dst": list(m.dst),
                        "kind": m.kind,
                    }
                    for m in ts.moves
                ],
            }
            for ts in sched.timesteps
        ],
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Reconstruct a :class:`Schedule` from :func:`schedule_to_dict`
    output (dependence DAG included)."""
    ops = [
        Operation(
            s["gate"],
            tuple(_parse_qubit(q) for q in s["qubits"]),
            angle=s.get("angle"),
        )
        for s in data["statements"]
    ]
    sched = Schedule(
        DependenceDAG(ops),
        k=data["k"],
        d=data.get("d"),
        algorithm=data.get("algorithm", ""),
    )
    for ts_data in data["timesteps"]:
        ts = sched.append_timestep()
        for r, entries in enumerate(ts_data["regions"]):
            ts.regions[r] = [e["node"] for e in entries]
        ts.moves = [
            Move(
                _parse_qubit(m["qubit"]),
                tuple(m["src"]),
                tuple(m["dst"]),
                m["kind"],
            )
            for m in ts_data["moves"]
        ]
    return sched


def _json_num(value: float) -> Any:
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


def _parse_num(value: Any) -> Optional[float]:
    """Inverse of :func:`_json_num` (``"inf"`` -> ``math.inf``)."""
    if value == "inf":
        return math.inf
    return value


def _comm_to_dict(stats: CommStats) -> Dict[str, Any]:
    return {
        "gate_cycles": stats.gate_cycles,
        "comm_cycles": stats.comm_cycles,
        "teleports": stats.teleports,
        "local_moves": stats.local_moves,
        "teleport_epochs": stats.teleport_epochs,
        "local_epochs": stats.local_epochs,
        "epr": {
            "total_pairs": stats.epr.total_pairs,
            "peak_epoch_demand": stats.epr.peak_epoch_demand,
            "pair_counts": [
                [src, dst, count]
                for (src, dst), count in sorted(stats.epr.pair_counts.items())
            ],
        },
    }


def _comm_from_dict(data: Dict[str, Any]) -> CommStats:
    from ..arch.teleport import EPRAccounting

    epr_data = data["epr"]
    epr = EPRAccounting(
        pair_counts={
            (src, dst): count
            for src, dst, count in epr_data["pair_counts"]
        },
        total_pairs=epr_data["total_pairs"],
        peak_epoch_demand=epr_data["peak_epoch_demand"],
    )
    return CommStats(
        gate_cycles=data["gate_cycles"],
        comm_cycles=data["comm_cycles"],
        teleports=data["teleports"],
        local_moves=data["local_moves"],
        teleport_epochs=data["teleport_epochs"],
        local_epochs=data["local_epochs"],
        epr=epr,
    )


def compile_result_to_dict(
    result, include_schedules: bool = False
) -> Dict[str, Any]:
    """A JSON-safe export of a :class:`~repro.toolflow.CompileResult`.

    The export carries everything :func:`compile_result_from_dict`
    needs to rebuild a metrics-equivalent result: the full scheduler
    configuration, per-module blackbox dimensions with communication
    stats, the call-graph skeleton (``callees``), non-leaf module
    bodies (``body`` — call sites with their qubit arguments and
    iteration counts, so the engine's coarse re-scheduling composes
    rehydrated results exactly), and all analyzer diagnostics. Leaf
    bodies are omitted — their ops travel inside the schedule sidecar.
    Schedule bodies are omitted unless ``include_schedules`` is set
    (they dominate the payload size).
    """
    machine = result.machine
    out = {
        "entry": result.program.entry,
        "scheduler": result.scheduler.algorithm,
        "scheduler_config": {
            "algorithm": result.scheduler.algorithm,
            "lpfs_l": result.scheduler.lpfs_l,
            "lpfs_simd": result.scheduler.lpfs_simd,
            "lpfs_refill": result.scheduler.lpfs_refill,
        },
        "machine": {
            "k": machine.k,
            "d": _json_num(machine.d if machine.d is not None else "inf"),
            "local_memory": _json_num(
                machine.local_memory
                if machine.local_memory is not None
                else None
            ),
        },
        "total_gates": result.total_gates,
        "critical_path": result.critical_path,
        "schedule_length": result.schedule_length,
        "runtime": result.runtime,
        "naive_runtime": result.naive_runtime,
        "parallel_speedup": result.parallel_speedup,
        "cp_speedup": result.cp_speedup,
        "comm_aware_speedup": result.comm_aware_speedup,
        "flattened_percent": result.flattened_percent,
        "diagnostics": [d.to_dict() for d in result.diagnostics],
        "modules": {
            name: {
                "is_leaf": p.is_leaf,
                # Call graph of the *post-flatten* view: leaf profiles
                # have no callees even when the source program is the
                # streamed pipeline's unrewritten original, and call
                # targets inlined away by flatten are filtered out.
                "callees": sorted(
                    c
                    for c in result.program.module(name).callees()
                    if c in result.profiles
                ) if name in result.program and not p.is_leaf else [],
                **(
                    {
                        "params": [
                            _qubit_name(q)
                            for q in result.program.module(name).params
                        ]
                    }
                    if name in result.program
                    else {}
                ),
                **(
                    {
                        "body": [
                            _body_stmt_to_dict(stmt)
                            for stmt in result.program.module(name).body
                        ]
                    }
                    if not p.is_leaf
                    and name in result.program
                    and all(
                        c in result.profiles
                        for c in result.program.module(name).callees()
                    )
                    else {}
                ),
                "length": {str(w): c for w, c in sorted(p.length.items())},
                "runtime": {str(w): c for w, c in sorted(p.runtime.items())},
                "comm": {
                    str(w): _comm_to_dict(s)
                    for w, s in sorted(p.comm.items())
                },
            }
            for name, p in result.profiles.items()
        },
    }
    if include_schedules:
        out["schedules"] = {
            name: schedule_to_dict(s)
            for name, s in sorted(result.schedules.items())
        }
    return out


def _body_stmt_to_dict(stmt: Any) -> Dict[str, Any]:
    """One module-body statement (op or call site), JSON-safe."""
    if isinstance(stmt, CallSite):
        return {
            "call": stmt.callee,
            "args": [_qubit_name(q) for q in stmt.args],
            **(
                {"iterations": stmt.iterations}
                if stmt.iterations != 1
                else {}
            ),
        }
    return {
        "gate": stmt.gate,
        "qubits": [_qubit_name(q) for q in stmt.qubits],
        **({"angle": stmt.angle} if stmt.angle is not None else {}),
    }


def _body_stmt_from_dict(s: Dict[str, Any]) -> Any:
    """Inverse of :func:`_body_stmt_to_dict`."""
    if "call" in s:
        return CallSite(
            s["call"],
            tuple(_parse_qubit(q) for q in s["args"]),
            iterations=s.get("iterations", 1),
        )
    return Operation(
        s["gate"],
        tuple(_parse_qubit(q) for q in s["qubits"]),
        angle=s.get("angle"),
    )


def compile_result_from_dict(data: Dict[str, Any]):
    """Reconstruct a :class:`~repro.toolflow.CompileResult` from
    :func:`compile_result_to_dict` output.

    Non-leaf modules get their real bodies back (call sites with qubit
    arguments and iteration counts, plus any direct ops), so the
    engine's coarse composition over a rehydrated result is exact. Leaf
    modules are rebuilt as empty skeletons — their ops live in the
    schedule sidecar, which is what the engine executes. Legacy
    artifacts without ``body`` fall back to zero-argument call-graph
    edges (metrics-only fidelity). Schedule bodies are restored when
    the export included them (``include_schedules=True``), else
    ``schedules`` is empty.
    """
    # Imported here: toolflow imports sched submodules, so a module-level
    # import would be cyclic.
    from ..toolflow import CompileResult, ModuleProfile, SchedulerConfig

    modules = [
        Module(
            name,
            params=tuple(
                _parse_qubit(q) for q in spec.get("params", ())
            ),
            body=(
                [_body_stmt_from_dict(s) for s in spec["body"]]
                if "body" in spec
                else [CallSite(c, ()) for c in spec.get("callees", ())]
            ),
        )
        for name, spec in data["modules"].items()
    ]
    program = Program(modules, entry=data["entry"])
    cfg = data.get("scheduler_config") or {"algorithm": data["scheduler"]}
    scheduler = SchedulerConfig(
        algorithm=cfg["algorithm"],
        lpfs_l=cfg.get("lpfs_l", 1),
        lpfs_simd=cfg.get("lpfs_simd", True),
        lpfs_refill=cfg.get("lpfs_refill", True),
    )
    m = data["machine"]
    d = _parse_num(m["d"])
    machine = MultiSIMD(
        k=m["k"],
        d=None if d is None or math.isinf(d) else int(d),
        local_memory=_parse_num(m["local_memory"]),
    )
    profiles = {}
    for name, spec in data["modules"].items():
        profile = ModuleProfile(name, spec["is_leaf"])
        profile.length = {int(w): c for w, c in spec["length"].items()}
        profile.runtime = {int(w): c for w, c in spec["runtime"].items()}
        profile.comm = {
            int(w): _comm_from_dict(s)
            for w, s in spec.get("comm", {}).items()
        }
        profiles[name] = profile
    schedules = {
        name: schedule_from_dict(s)
        for name, s in data.get("schedules", {}).items()
    }
    return CompileResult(
        program=program,
        machine=machine,
        scheduler=scheduler,
        profiles=profiles,
        schedules=schedules,
        total_gates=data["total_gates"],
        critical_path=data["critical_path"],
        flattened_percent=data["flattened_percent"],
        diagnostics=tuple(
            Diagnostic.from_dict(d) for d in data.get("diagnostics", ())
        ),
    )


def profile_table(result, metric: str = "runtime") -> str:
    """Format every module's blackbox dimensions as a table.

    Args:
        result: a CompileResult.
        metric: ``"runtime"`` or ``"length"``.
    """
    if metric not in ("runtime", "length"):
        raise ValueError(f"unknown metric {metric!r}")
    widths = sorted(
        next(iter(result.profiles.values())).length.keys()
    )
    header = ["module", "leaf"] + [f"w={w}" for w in widths]
    rows: List[List[str]] = []
    for name in result.program.topological_order():
        p = result.profiles[name]
        table = getattr(p, metric)
        rows.append(
            [name, "*" if p.is_leaf else ""]
            + [f"{table.get(w, '-'):,}" if w in table else "-"
               for w in widths]
        )
    col_w = [
        max(len(header[i]), *(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, col_w)),
    ]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, col_w)))
    return "\n".join(lines)


def render_coarse_gantt(
    result,
    max_rows: int = 40,
    width: int = 60,
) -> str:
    """Render a :class:`~repro.sched.coarse.CoarseResult` as an ASCII
    Gantt chart: one row per statement, bars spanning [start, finish).

    Args:
        result: a CoarseResult.
        max_rows: truncate after this many placements.
        width: character width of the time axis.
    """
    placements = sorted(result.placements, key=lambda p: (p.start, p.node))
    total = max(result.total_length, 1)
    lines = [
        f"coarse schedule of {result.module!r}: "
        f"{result.total_length} cycles, peak width "
        f"{result.total_width}/{result.k}"
    ]
    shown = placements[:max_rows]
    for p in shown:
        lo = int(p.start / total * width)
        hi = max(lo + 1, int(p.finish / total * width))
        bar = " " * lo + "#" * (hi - lo)
        bar = bar.ljust(width)
        lines.append(
            f"  n{p.node:<4d} |{bar}| {p.start}..{p.finish} (w={p.width})"
        )
    if len(placements) > max_rows:
        lines.append(f"  ... ({len(placements) - max_rows} more)")
    return "\n".join(lines)
