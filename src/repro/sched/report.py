"""Human-readable and machine-readable schedule reports.

Rendering helpers used by the examples, the CLI, and downstream tools:

* :func:`render_timeline` — the paper's Figure-4-style cycle-by-cycle
  listing of a fine-grained schedule (one column per SIMD region, the
  movement epoch annotated per the "0th region" convention);
* :func:`schedule_to_dict` / :func:`compile_result_to_dict` — JSON-safe
  exports of schedules and whole compile results;
* :func:`profile_table` — per-module blackbox dimension tables.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from .types import Schedule

__all__ = [
    "render_coarse_gantt",
    "render_timeline",
    "schedule_to_dict",
    "compile_result_to_dict",
    "profile_table",
]


def _op_text(sched: Schedule, node: int, show_qubits: bool) -> str:
    op = sched.operation(node)
    if not show_qubits:
        return op.gate
    qubits = ",".join(f"{q.register}{q.index}" for q in op.qubits)
    return f"{op.gate}({qubits})"


def render_timeline(
    sched: Schedule,
    max_timesteps: Optional[int] = 40,
    show_qubits: bool = True,
    column_width: int = 24,
) -> str:
    """Render a fine-grained schedule as a cycle-by-cycle table.

    Each row is one timestep; columns are the k SIMD regions; the final
    column summarises the movement epoch preceding the timestep.
    """
    header = (
        ["cycle"]
        + [f"region {r}" for r in range(sched.k)]
        + ["moves"]
    )
    lines = ["  ".join(h.ljust(column_width if i else 5)
                       for i, h in enumerate(header))]
    lines.append("-" * len(lines[0]))
    shown = sched.timesteps
    truncated = 0
    if max_timesteps is not None and len(shown) > max_timesteps:
        truncated = len(shown) - max_timesteps
        shown = shown[:max_timesteps]
    for t, ts in enumerate(shown):
        cells = [str(t + 1).ljust(5)]
        for nodes in ts.regions:
            text = " ".join(
                _op_text(sched, n, show_qubits) for n in nodes
            )
            if len(text) > column_width:
                text = text[: column_width - 1] + "…"
            cells.append(text.ljust(column_width))
        teleports = sum(1 for m in ts.moves if m.kind == "teleport")
        locals_ = sum(1 for m in ts.moves if m.kind == "local")
        move_text = []
        if teleports:
            move_text.append(f"{teleports} teleport")
        if locals_:
            move_text.append(f"{locals_} local")
        cells.append(", ".join(move_text))
        lines.append("  ".join(cells).rstrip())
    if truncated:
        lines.append(f"... ({truncated} more timesteps)")
    return "\n".join(lines)


def schedule_to_dict(sched: Schedule) -> Dict[str, Any]:
    """A JSON-safe dict of one fine-grained schedule."""
    return {
        "algorithm": sched.algorithm,
        "k": sched.k,
        "d": sched.d,
        "length": sched.length,
        "op_count": sched.op_count,
        "max_width": sched.max_width,
        "teleport_moves": sched.teleport_moves,
        "local_moves": sched.local_moves,
        "timesteps": [
            {
                "regions": [
                    [
                        {
                            "gate": sched.operation(n).gate,
                            "qubits": [
                                f"{q.register}[{q.index}]"
                                for q in sched.operation(n).qubits
                            ],
                        }
                        for n in nodes
                    ]
                    for nodes in ts.regions
                ],
                "moves": [
                    {
                        "qubit": f"{m.qubit.register}[{m.qubit.index}]",
                        "src": list(m.src),
                        "dst": list(m.dst),
                        "kind": m.kind,
                    }
                    for m in ts.moves
                ],
            }
            for ts in sched.timesteps
        ],
    }


def _json_num(value: float) -> Any:
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


def compile_result_to_dict(result) -> Dict[str, Any]:
    """A JSON-safe summary of a :class:`~repro.toolflow.CompileResult`
    (schedule bodies omitted; use :func:`schedule_to_dict` for those)."""
    machine = result.machine
    return {
        "entry": result.program.entry,
        "scheduler": result.scheduler.algorithm,
        "machine": {
            "k": machine.k,
            "d": _json_num(machine.d if machine.d is not None else "inf"),
            "local_memory": _json_num(
                machine.local_memory
                if machine.local_memory is not None
                else None
            ),
        },
        "total_gates": result.total_gates,
        "critical_path": result.critical_path,
        "schedule_length": result.schedule_length,
        "runtime": result.runtime,
        "naive_runtime": result.naive_runtime,
        "parallel_speedup": result.parallel_speedup,
        "cp_speedup": result.cp_speedup,
        "comm_aware_speedup": result.comm_aware_speedup,
        "flattened_percent": result.flattened_percent,
        "modules": {
            name: {
                "is_leaf": p.is_leaf,
                "length": {str(w): c for w, c in sorted(p.length.items())},
                "runtime": {str(w): c for w, c in sorted(p.runtime.items())},
            }
            for name, p in result.profiles.items()
        },
    }


def profile_table(result, metric: str = "runtime") -> str:
    """Format every module's blackbox dimensions as a table.

    Args:
        result: a CompileResult.
        metric: ``"runtime"`` or ``"length"``.
    """
    if metric not in ("runtime", "length"):
        raise ValueError(f"unknown metric {metric!r}")
    widths = sorted(
        next(iter(result.profiles.values())).length.keys()
    )
    header = ["module", "leaf"] + [f"w={w}" for w in widths]
    rows: List[List[str]] = []
    for name in result.program.topological_order():
        p = result.profiles[name]
        table = getattr(p, metric)
        rows.append(
            [name, "*" if p.is_leaf else ""]
            + [f"{table.get(w, '-'):,}" if w in table else "-"
               for w in widths]
        )
    col_w = [
        max(len(header[i]), *(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, col_w)),
    ]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, col_w)))
    return "\n".join(lines)


def render_coarse_gantt(
    result,
    max_rows: int = 40,
    width: int = 60,
) -> str:
    """Render a :class:`~repro.sched.coarse.CoarseResult` as an ASCII
    Gantt chart: one row per statement, bars spanning [start, finish).

    Args:
        result: a CoarseResult.
        max_rows: truncate after this many placements.
        width: character width of the time axis.
    """
    placements = sorted(result.placements, key=lambda p: (p.start, p.node))
    total = max(result.total_length, 1)
    lines = [
        f"coarse schedule of {result.module!r}: "
        f"{result.total_length} cycles, peak width "
        f"{result.total_width}/{result.k}"
    ]
    shown = placements[:max_rows]
    for p in shown:
        lo = int(p.start / total * width)
        hi = max(lo + 1, int(p.finish / total * width))
        bar = " " * lo + "#" * (hi - lo)
        bar = bar.ljust(width)
        lines.append(
            f"  n{p.node:<4d} |{bar}| {p.start}..{p.finish} (w={p.width})"
        )
    if len(placements) > max_rows:
        lines.append(f"  ... ({len(placements) - max_rows} more)")
    return "\n".join(lines)
