"""Schedule quality metrics: critical paths and the paper's speedups.

All of the paper's evaluation numbers are speedups against one of two
baselines:

* *sequential execution* — one gate per cycle, communication-free
  (Figure 6's parallelism-only view): ``speedup = gates / length``;
* *sequential naive movement* — one gate per cycle, every cycle wrapped
  in a teleport epoch (Figures 7-9): ``speedup = 5 * gates / runtime``.

The hierarchical critical path gives Figure 6's theoretical-maximum
series: per-module dependence-DAG critical paths where a call weighs
``iterations * CP(callee)``.
"""

from __future__ import annotations

from typing import Dict

from ..core.dag import DependenceDAG
from ..core.module import Program
from ..core.operation import Operation

__all__ = [
    "hierarchical_critical_path",
    "parallel_speedup",
    "comm_speedup",
]


def hierarchical_critical_path(program: Program) -> Dict[str, int]:
    """Per-module estimated critical path, calls expanded by weight.

    Returns a map module-name -> CP cycles; the entry module's value is
    the program's estimated critical path (Figure 6's "cp" bars).
    """
    cp: Dict[str, int] = {}
    for name in program.topological_order():
        mod = program.module(name)
        weights = []
        for stmt in mod.body:
            if isinstance(stmt, Operation):
                weights.append(1)
            else:
                weights.append(stmt.iterations * cp[stmt.callee])
        dag = DependenceDAG(mod.body, weights=weights)
        cp[name] = dag.critical_path_length()
    return cp


def parallel_speedup(total_gates: int, schedule_length: int) -> float:
    """Figure 6: speedup of a schedule over sequential execution,
    communication ignored."""
    if schedule_length <= 0:
        raise ValueError("schedule length must be positive")
    return total_gates / schedule_length


def comm_speedup(total_gates: int, runtime: int) -> float:
    """Figures 7-9: speedup over the sequential naive movement model
    (5 cycles per gate)."""
    from ..arch.machine import NAIVE_FACTOR

    if runtime <= 0:
        raise ValueError("runtime must be positive")
    return NAIVE_FACTOR * total_gates / runtime
