"""A minimal pass pipeline, mirroring ScaffCC's LLVM pass structure.

Each pass is a callable ``Program -> Program``; the manager runs them in
order and records per-pass wall-clock timings (useful when analysing the
scheduling-time / schedule-quality trade-off the paper discusses in
Section 3.1.1).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

from ..core.module import Program
from ..instrument import span

__all__ = ["PassManager"]

Pass = Callable[[Program], Program]


class PassManager:
    """Runs a sequence of named program transformations."""

    def __init__(self) -> None:
        self._passes: List[Tuple[str, Pass]] = []
        self.timings: Dict[str, float] = {}

    def add(self, name: str, fn: Pass) -> "PassManager":
        """Append a pass; returns self for chaining."""
        self._passes.append((name, fn))
        return self

    def run(self, program: Program) -> Program:
        """Run all passes in order, validating after each.

        Each pass is timed twice over: into :attr:`timings` (local to
        this manager) and as a ``pass:<name>`` span against any active
        :func:`repro.instrument.record_spans` scope.
        """
        self.timings = {}
        for name, fn in self._passes:
            start = time.perf_counter()
            with span(f"pass:{name}"):
                program = fn(program)
                program.validate()
            self.timings[name] = time.perf_counter() - start
        return program

    def __len__(self) -> int:
        return len(self._passes)
