"""Compiler passes: decomposition, CTQG arithmetic, flattening, resource
and qubit-count estimation."""

from . import ctqg
from .decompose import (
    DecomposeConfig,
    RotationSynthesizer,
    decompose_module,
    decompose_operation,
    decompose_program,
    toffoli_network,
)
from .flatten import (
    DEFAULT_FTH,
    FlattenResult,
    flatten_program,
    fully_flatten,
    inline_call,
)
from .manager import PassManager
from .optimize import OptimizeStats, optimize_module, optimize_program
from .qubit_count import local_footprints, minimum_qubits
from .stream import (
    FlattenPlan,
    decomposed_gate_counts,
    leaf_stream,
    plan_flatten,
    stream_decompose,
    stream_flatten,
)
from .resource import (
    GATE_COUNT_BINS,
    ResourceEstimate,
    estimate_resources,
    gate_count_histogram,
    module_invocation_counts,
    total_gate_counts,
)

__all__ = [
    "DEFAULT_FTH",
    "DecomposeConfig",
    "FlattenPlan",
    "FlattenResult",
    "GATE_COUNT_BINS",
    "PassManager",
    "ResourceEstimate",
    "RotationSynthesizer",
    "ctqg",
    "decompose_module",
    "decompose_operation",
    "decompose_program",
    "estimate_resources",
    "flatten_program",
    "fully_flatten",
    "gate_count_histogram",
    "inline_call",
    "local_footprints",
    "minimum_qubits",
    "module_invocation_counts",
    "OptimizeStats",
    "optimize_module",
    "optimize_program",
    "toffoli_network",
    "total_gate_counts",
    "decomposed_gate_counts",
    "leaf_stream",
    "plan_flatten",
    "stream_decompose",
    "stream_flatten",
]
