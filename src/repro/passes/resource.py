"""Hierarchical resource estimation (Section 3.1.1, Figure 5).

Large quantum benchmarks (10^7..10^12 gates) cannot be unrolled, so the
toolflow estimates resources *hierarchically*: per-module totals are
computed bottom-up through the call graph, with call-site iteration
counts multiplying callee totals. These totals drive:

* the Flattening-Threshold decision (which modules get inlined for
  fine-grained scheduling — :mod:`repro.passes.flatten`), and
* the paper's Figure 5 histogram of module gate counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.module import Program
from ..core.operation import Operation

__all__ = [
    "ResourceEstimate",
    "estimate_resources",
    "total_gate_counts",
    "module_invocation_counts",
    "GATE_COUNT_BINS",
    "gate_count_histogram",
]

#: Figure 5's gate-count ranges, as (label, inclusive lower, exclusive
#: upper) — ordered small to large.
GATE_COUNT_BINS: List[Tuple[str, int, float]] = [
    ("0 - 1k", 0, 1_000),
    ("1k - 5k", 1_000, 5_000),
    ("5k - 10k", 5_000, 10_000),
    ("10k - 50k", 10_000, 50_000),
    ("50k - 100k", 50_000, 100_000),
    ("100k - 150k", 100_000, 150_000),
    ("150k - 1M", 150_000, 1_000_000),
    ("1M - 2M", 1_000_000, 2_000_000),
    ("2M - 8M", 2_000_000, 8_000_000),
    ("8M - 20M", 8_000_000, 20_000_000),
    (">20M", 20_000_000, float("inf")),
]


@dataclass
class ResourceEstimate:
    """Per-program resource summary.

    Attributes:
        total_gates: gates executed by one run of the entry module, with
            every call expanded (exact integer; may be astronomically
            large).
        module_totals: per-module expanded gate counts (one invocation of
            that module).
        module_direct: per-module direct (unexpanded) gate counts.
        invocations: how many times each module runs in a full execution.
        gate_mix: total dynamic count per gate mnemonic.
    """

    total_gates: int
    module_totals: Dict[str, int]
    module_direct: Dict[str, int]
    invocations: Dict[str, int]
    gate_mix: Dict[str, int] = field(default_factory=dict)


def total_gate_counts(program: Program) -> Dict[str, int]:
    """Expanded gate count of one invocation of each reachable module."""
    totals: Dict[str, int] = {}
    for name in program.topological_order():
        mod = program.module(name)
        count = 0
        for stmt in mod.body:
            if isinstance(stmt, Operation):
                count += 1
            else:
                count += stmt.iterations * totals[stmt.callee]
        totals[name] = count
    return totals


def module_invocation_counts(program: Program) -> Dict[str, int]:
    """How many times each reachable module executes in one full run of
    the entry module."""
    invocations: Dict[str, int] = {name: 0 for name in program.reachable()}
    invocations[program.entry] = 1
    # Walk callers before callees (reverse topological order).
    for name in reversed(program.topological_order()):
        times = invocations[name]
        if times == 0:
            continue
        for call in program.module(name).calls():
            invocations[call.callee] += times * call.iterations
    return invocations


def estimate_resources(program: Program) -> ResourceEstimate:
    """Full hierarchical resource estimate for a program."""
    totals = total_gate_counts(program)
    invocations = module_invocation_counts(program)
    direct: Dict[str, int] = {}
    gate_mix: Dict[str, int] = {}
    for name in program.topological_order():
        mod = program.module(name)
        direct[name] = mod.direct_gate_count
        times = invocations[name]
        if times == 0:
            continue
        for op in mod.operations():
            gate_mix[op.gate] = gate_mix.get(op.gate, 0) + times
    return ResourceEstimate(
        total_gates=totals[program.entry],
        module_totals=totals,
        module_direct=direct,
        invocations=invocations,
        gate_mix=gate_mix,
    )


def gate_count_histogram(program: Program) -> Dict[str, float]:
    """Figure 5: the percentage of (reachable) modules whose expanded
    gate count falls in each :data:`GATE_COUNT_BINS` range."""
    totals = total_gate_counts(program)
    n = len(totals)
    histogram = {label: 0 for label, _, _ in GATE_COUNT_BINS}
    for count in totals.values():
        for label, lo, hi in GATE_COUNT_BINS:
            if lo <= count < hi:
                histogram[label] += 1
                break
    return {
        label: (100.0 * c / n if n else 0.0)
        for label, c in histogram.items()
    }
