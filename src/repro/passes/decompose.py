"""Gate decomposition onto the QASM subset (Section 3.1).

ScaffCC lowers the Scaffold gate vocabulary onto the Clifford+T QASM
subset before scheduling:

* ``Toffoli`` uses the textbook 15-gate Clifford+T network (the same one
  the paper's Figure 4 shows);
* ``Fredkin``/``CCZ``/``CZ``/``SWAP`` reduce to Toffoli/CNOT networks;
* arbitrary-angle rotations are approximated by long serial Clifford+T
  strings. The paper uses the SQCT toolbox for this; we substitute a
  :class:`RotationSynthesizer` that is *exact* for multiples of pi/4 and
  otherwise emits a deterministic angle-seeded Clifford+T string of
  length ``~ c * log2(1/epsilon)`` — the same length scaling and, most
  importantly for the schedulers, the same shape: a long chain of
  single-qubit gates on one target (cf. Table 2 and the Shor's
  discussion in Section 5.4). See DESIGN.md for the substitution record.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.gates import is_primitive
from ..core.module import Module, Program
from ..core.operation import CallSite, Operation, Statement
from ..core.qubits import Qubit

__all__ = [
    "RotationSynthesizer",
    "DecomposeConfig",
    "decompose_operation",
    "decompose_module",
    "decompose_program",
    "toffoli_network",
]

_TWO_PI = 2.0 * math.pi
_PI_4 = math.pi / 4.0

#: Exact Clifford+T realisations of Rz(m * pi/4), m = 0..7, up to global
#: phase.
_PI4_SEQUENCES: Dict[int, List[str]] = {
    0: [],
    1: ["T"],
    2: ["S"],
    3: ["S", "T"],
    4: ["Z"],
    5: ["Z", "T"],
    6: ["Sdag"],
    7: ["Tdag"],
}

#: Gate alphabet for approximate rotation strings. H is interleaved
#: explicitly; the rest are diagonal/Pauli so that strings stay "rotation
#: like".
_APPROX_ALPHABET = ["T", "Tdag", "S", "Sdag", "Z", "X", "H"]


class RotationSynthesizer:
    """Clifford+T synthesis of single-qubit Z rotations (SQCT stand-in).

    Exact for angles that are multiples of pi/4. Other angles produce a
    deterministic pseudo-random Clifford+T string whose length follows
    the ``c0 + c1 * log2(1/epsilon)`` scaling of single-qubit synthesis;
    two operations with the same angle always receive the same string.

    Args:
        epsilon: target approximation precision (drives string length).
        length_scale: multiplier ``c1`` on ``log2(1/epsilon)``.
        length_offset: additive constant ``c0``.
    """

    def __init__(
        self,
        epsilon: float = 1e-10,
        length_scale: float = 3.0,
        length_offset: int = 4,
    ):
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0,1), got {epsilon}")
        self.epsilon = epsilon
        self.length_scale = length_scale
        self.length_offset = length_offset

    @property
    def approx_length(self) -> int:
        """Length of the Clifford+T string for a generic angle."""
        return max(
            1,
            int(
                round(
                    self.length_offset
                    + self.length_scale * math.log2(1.0 / self.epsilon)
                )
            ),
        )

    def rz_sequence(self, angle: float) -> List[str]:
        """Gate mnemonics realising ``Rz(angle)`` on one qubit."""
        frac = (angle % _TWO_PI) / _PI_4
        nearest = round(frac)
        if abs(frac - nearest) < 1e-12:
            return list(_PI4_SEQUENCES[int(nearest) % 8])
        return self._approx_sequence(angle)

    def _approx_sequence(self, angle: float) -> List[str]:
        # Deterministic per-angle stream: hash the rounded angle so that
        # numerically identical rotations share one synthesis result.
        key = f"{angle % _TWO_PI:.12f}/{self.epsilon:g}".encode()
        digest = hashlib.sha256(key).digest()
        seq: List[str] = []
        n = self.approx_length
        i = 0
        stream = digest
        while len(seq) < n:
            if i >= len(stream):
                stream = hashlib.sha256(stream).digest()
                i = 0
            seq.append(_APPROX_ALPHABET[stream[i] % len(_APPROX_ALPHABET)])
            i += 1
        return seq

    def synthesize_rz(self, qubit: Qubit, angle: float) -> List[Operation]:
        """Operations realising ``Rz(angle)`` on ``qubit``."""
        return [Operation(g, (qubit,)) for g in self.rz_sequence(angle)]


def toffoli_network(a: Qubit, b: Qubit, c: Qubit) -> List[Operation]:
    """The 15-gate Clifford+T Toffoli network (controls ``a``, ``b``,
    target ``c``) — the decomposition the paper's Figure 4 schedules."""
    ops = [
        ("H", c),
        ("CNOT", b, c),
        ("Tdag", c),
        ("CNOT", a, c),
        ("T", c),
        ("CNOT", b, c),
        ("Tdag", c),
        ("CNOT", a, c),
        ("T", b),
        ("T", c),
        ("CNOT", a, b),
        ("H", c),
        ("T", a),
        ("Tdag", b),
        ("CNOT", a, b),
    ]
    return [Operation(g, tuple(qs)) for g, *qs in ops]


@dataclass(frozen=True)
class DecomposeConfig:
    """Configuration for the decomposition pass."""

    epsilon: float = 1e-10
    length_scale: float = 3.0
    length_offset: int = 4

    def synthesizer(self) -> RotationSynthesizer:
        return RotationSynthesizer(
            self.epsilon, self.length_scale, self.length_offset
        )


def decompose_operation(
    op: Operation, synth: RotationSynthesizer
) -> List[Operation]:
    """Lower one operation to QASM primitives.

    Primitive operations pass through unchanged; everything else is
    expanded recursively until only primitives remain.
    """
    if is_primitive(op.gate):
        return [op]
    if op.gate == "CZ":
        c, t = op.qubits
        return [
            Operation("H", (t,)),
            Operation("CNOT", (c, t)),
            Operation("H", (t,)),
        ]
    if op.gate == "SWAP":
        a, b = op.qubits
        return [
            Operation("CNOT", (a, b)),
            Operation("CNOT", (b, a)),
            Operation("CNOT", (a, b)),
        ]
    if op.gate == "Toffoli":
        return toffoli_network(*op.qubits)
    if op.gate == "CCZ":
        a, b, c = op.qubits
        return (
            [Operation("H", (c,))]
            + toffoli_network(a, b, c)
            + [Operation("H", (c,))]
        )
    if op.gate == "Fredkin":
        ctrl, x, y = op.qubits
        return (
            [Operation("CNOT", (y, x))]
            + toffoli_network(ctrl, x, y)
            + [Operation("CNOT", (y, x))]
        )
    if op.gate == "Rz":
        return synth.synthesize_rz(op.qubits[0], op.angle)
    if op.gate == "Rx":
        (q,) = op.qubits
        return (
            [Operation("H", (q,))]
            + synth.synthesize_rz(q, op.angle)
            + [Operation("H", (q,))]
        )
    if op.gate == "Ry":
        (q,) = op.qubits
        # Ry(t) = S . Rx(t) . Sdag  (conjugation maps X-axis to Y-axis).
        return (
            [Operation("Sdag", (q,)), Operation("H", (q,))]
            + synth.synthesize_rz(q, op.angle)
            + [Operation("H", (q,)), Operation("S", (q,))]
        )
    if op.gate == "CRz":
        c, t = op.qubits
        # CRz(t) = Rz(t/2) . CNOT . Rz(-t/2) . CNOT  on the target.
        half = op.angle / 2.0
        return (
            synth.synthesize_rz(t, half)
            + [Operation("CNOT", (c, t))]
            + synth.synthesize_rz(t, -half)
            + [Operation("CNOT", (c, t))]
        )
    if op.gate == "CRx":
        c, t = op.qubits
        inner = Operation("CRz", (c, t), op.angle)
        return (
            [Operation("H", (t,))]
            + decompose_operation(inner, synth)
            + [Operation("H", (t,))]
        )
    raise ValueError(f"no decomposition rule for gate {op.gate!r}")


def decompose_module(
    module: Module, synth: RotationSynthesizer
) -> Module:
    """Lower every gate in a module body; call sites pass through."""
    body: List[Statement] = []
    for stmt in module.body:
        if isinstance(stmt, CallSite):
            body.append(stmt)
        else:
            body.extend(decompose_operation(stmt, synth))
    return Module(module.name, module.params, body)


def decompose_program(
    program: Program, config: Optional[DecomposeConfig] = None
) -> Program:
    """Lower every module of a program to QASM primitives."""
    config = config or DecomposeConfig()
    synth = config.synthesizer()
    modules = [decompose_module(m, synth) for m in program]
    return Program(modules, program.entry)
