"""Leaf-module flattening under a gate-count threshold (Section 3.1.1).

Hierarchical scheduling loses parallelism at module boundaries (the
paper's Figure 4: two dependent Toffolis cost 24 cycles as blackboxes but
21 when conjoined and fine-scheduled). The fix is to *flatten* modules
whose expanded gate count falls below a Flattening Threshold (FTh): all
their calls are inlined, producing larger leaf modules for fine-grained
scheduling. The paper uses FTh = 2M ops (3M for SHA-1), flattening >= 80%
of modules in every benchmark.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.module import Module, Program
from ..core.operation import CallSite, Operation, Statement
from ..core.qubits import Qubit
from .resource import total_gate_counts

__all__ = ["FlattenResult", "flatten_program", "inline_call", "fully_flatten"]

#: The paper's default flattening threshold (2 million operations).
DEFAULT_FTH = 2_000_000


class FlattenResult:
    """Outcome of a flattening run.

    Attributes:
        program: the rewritten program.
        flattened: names of modules that were flattened into leaves.
        percent_flattened: share of reachable modules flattened or
            already leaves (the quantity Figure 5's caption reports).
    """

    def __init__(self, program: Program, flattened: List[str]):
        self.program = program
        self.flattened = flattened
        reachable = program.reachable()
        leaves = sum(
            1 for name in reachable if program.module(name).is_leaf
        )
        self.percent_flattened = 100.0 * leaves / len(reachable)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlattenResult({len(self.flattened)} flattened, "
            f"{self.percent_flattened:.0f}% leaves)"
        )


def _rename(q: Qubit, mapping: Dict[Qubit, Qubit], prefix: str) -> Qubit:
    """Map a callee-body qubit to the caller's namespace: formals map to
    actuals, locals get a unique per-instance register prefix."""
    mapped = mapping.get(q)
    if mapped is None:
        mapped = Qubit(f"{prefix}${q.register}", q.index)
        mapping[q] = mapped
    return mapped


def inline_call(
    call: CallSite, callee: Module, instance: str
) -> List[Statement]:
    """Expand one call site into the callee's statements.

    The callee must be a leaf. Formal parameters are substituted with the
    actual arguments; callee locals are renamed with a unique ``instance``
    prefix so that two inlined instances never alias. Iterated calls
    repeat the (identically-renamed) body — locals are reused across
    iterations, exactly as the called procedure would reuse them.
    """
    if not callee.is_leaf:
        raise ValueError(
            f"cannot inline non-leaf module {callee.name!r}"
        )
    if len(call.args) != len(callee.params):
        raise ValueError(
            f"arity mismatch inlining {callee.name!r}"
        )
    mapping: Dict[Qubit, Qubit] = dict(zip(callee.params, call.args))
    body_once: List[Statement] = []
    for op in callee.operations():
        new_qubits = tuple(
            _rename(q, mapping, instance) for q in op.qubits
        )
        body_once.append(Operation(op.gate, new_qubits, op.angle))
    return body_once * call.iterations


def _flatten_module(module: Module, program: Program) -> Module:
    """Inline every call in ``module`` (callees must already be leaves)."""
    body: List[Statement] = []
    for idx, stmt in enumerate(module.body):
        if isinstance(stmt, Operation):
            body.append(stmt)
        else:
            callee = program.module(stmt.callee)
            instance = f"{stmt.callee}@{idx}"
            body.extend(inline_call(stmt, callee, instance))
    return Module(module.name, module.params, body)


def flatten_program(
    program: Program, fth: int = DEFAULT_FTH
) -> FlattenResult:
    """Flatten every module whose expanded gate count is below ``fth``.

    Processes modules callees-first so that by the time a module is
    considered, any callee under the threshold is already a leaf (a
    callee's expanded count never exceeds its caller's, so a module under
    the threshold only calls modules under the threshold).
    """
    totals = total_gate_counts(program)
    current = program
    flattened: List[str] = []
    for name in current.topological_order():
        mod = current.module(name)
        if mod.is_leaf or totals[name] > fth:
            continue
        current = current.with_modules(
            {name: _flatten_module(mod, current)}
        )
        flattened.append(name)
    return FlattenResult(current, flattened)


def fully_flatten(program: Program) -> Module:
    """Inline absolutely everything into a single leaf module.

    Only safe for small programs (size grows to the expanded gate
    count); used by tests and the Figure 4 example.
    """
    result = flatten_program(program, fth=2 ** 63)
    entry = result.program.entry_module
    if not entry.is_leaf:
        raise AssertionError("fully_flatten left residual calls")
    return entry
