"""Minimum-qubit analysis (the paper's Table 1 quantity ``Q``).

``Q`` is "the minimum number of qubits required by the benchmark,
computed with sequential execution and maximum reuse of ancilla qubits
across functions". In a sequential execution only one call chain is live
at any instant, so the live set is: the entry module's own qubits, plus —
for the deepest-footprint call chain — each callee's *local* (non-
parameter) qubits. Sibling calls reuse each other's freed locals, hence
the ``max`` (not ``sum``) over call sites.

Table 1's values feed Figure 8: local scratchpad capacities are swept at
``Q/4`` and ``Q/2`` per benchmark.
"""

from __future__ import annotations

from typing import Dict

from ..core.module import Program

__all__ = ["minimum_qubits", "local_footprints"]


def local_footprints(program: Program) -> Dict[str, int]:
    """Per-module count of local (non-parameter) qubits it references
    directly (calls not expanded)."""
    out: Dict[str, int] = {}
    for name in program.reachable():
        mod = program.module(name)
        params = set(mod.params)
        out[name] = sum(1 for q in mod.qubits() if q not in params)
    return out


def minimum_qubits(program: Program) -> int:
    """Compute ``Q``: the sequential-execution live-qubit high-water mark
    with maximal ancilla reuse across (sibling) calls."""
    locals_of = local_footprints(program)
    # footprint[m]: locals of m plus the deepest callee chain's locals.
    footprint: Dict[str, int] = {}
    for name in program.topological_order():
        mod = program.module(name)
        deepest = max(
            (footprint[c.callee] for c in mod.calls()), default=0
        )
        footprint[name] = locals_of[name] + deepest
    return len(program.entry_module.params) + footprint[program.entry]
