"""Peephole circuit optimization: cancellation and rotation merging.

ScaffCC applies simple circuit simplifications before scheduling; this
pass implements the two that matter at the logical level:

* **inverse-pair cancellation** — two adjacent operations cancel when
  they are inverses on identical operand tuples and no other operation
  touches any of their qubits in between (``H H``, ``T Tdag``,
  ``CNOT CNOT``, ...). Cancellation cascades: removing a pair can
  expose another.
* **rotation merging** — adjacent rotations of the same axis on the
  same qubit fuse (``Rz(a) Rz(b) -> Rz(a+b)``), and a fused rotation
  whose angle is ~0 (mod 2*pi) disappears. Merging matters *before*
  decomposition: every surviving generic rotation costs a ~100-gate
  Clifford+T string (Table 2).

Both rewrites are semantics-preserving and are verified against the
statevector simulator in the test suite. Call sites are barriers: no
cancellation happens across a call (the callee is a blackbox).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..core.gates import gate_spec
from ..core.module import Module, Program
from ..core.operation import CallSite, Operation, Statement
from ..core.qubits import Qubit

__all__ = ["optimize_module", "optimize_program", "OptimizeStats"]

_TWO_PI = 2.0 * math.pi
_ANGLE_EPS = 1e-12


class OptimizeStats:
    """Counts of rewrites applied."""

    def __init__(self) -> None:
        self.cancelled_pairs = 0
        self.merged_rotations = 0
        self.dropped_rotations = 0

    @property
    def removed_ops(self) -> int:
        return (
            2 * self.cancelled_pairs
            + self.merged_rotations
            + self.dropped_rotations
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OptimizeStats(pairs={self.cancelled_pairs}, "
            f"merged={self.merged_rotations}, "
            f"dropped={self.dropped_rotations})"
        )


def _inverse_of(op: Operation, other: Operation) -> bool:
    """True if ``other`` directly cancels ``op`` (same operands)."""
    if op.qubits != other.qubits:
        return False
    spec = gate_spec(op.gate)
    if spec.inverse is None or spec.takes_angle:
        return False
    return spec.inverse == other.gate


def _mergeable_rotation(op: Operation, other: Operation) -> bool:
    return (
        op.gate == other.gate
        and gate_spec(op.gate).takes_angle
        and op.qubits == other.qubits
    )


def optimize_module(
    module: Module, stats: Optional[OptimizeStats] = None
) -> Module:
    """Apply cancellation and rotation merging to one module body."""
    stats = stats if stats is not None else OptimizeStats()
    kept: List[Statement] = []
    # For each qubit, a stack of indices into `kept` of the statements
    # touching it — popping a cancelled op re-exposes the one before
    # it, so cancellations cascade (H T Tdag H collapses completely).
    touch_stack: Dict[Qubit, List[int]] = {}

    def operands(stmt: Statement):
        return stmt.qubits if isinstance(stmt, Operation) else stmt.args

    def push(stmt: Statement) -> None:
        kept.append(stmt)
        idx = len(kept) - 1
        for q in operands(stmt):
            touch_stack.setdefault(q, []).append(idx)

    def pop_at(idx: int) -> None:
        # Replace with a tombstone; compacted at the end.
        for q in operands(kept[idx]):  # type: ignore[arg-type]
            stack = touch_stack.get(q)
            if stack and stack[-1] == idx:
                stack.pop()
        kept[idx] = None  # type: ignore[assignment]

    for stmt in module.body:
        if isinstance(stmt, CallSite):
            push(stmt)  # calls are barriers
            continue
        # The candidate is adjacent iff it is the latest toucher of
        # *all* operands of this op.
        candidate_idx = None
        adjacent = True
        for q in stmt.qubits:
            stack = touch_stack.get(q)
            idx = stack[-1] if stack else None
            if idx is None:
                adjacent = False
                break
            if candidate_idx is None:
                candidate_idx = idx
            elif idx != candidate_idx:
                adjacent = False
                break
        candidate = (
            kept[candidate_idx]
            if adjacent and candidate_idx is not None
            else None
        )
        if isinstance(candidate, Operation):
            # The candidate must also have exactly these operands,
            # otherwise an unrelated qubit of the candidate would be
            # reordered across this op.
            if set(candidate.qubits) == set(stmt.qubits):
                if _inverse_of(stmt, candidate):
                    pop_at(candidate_idx)
                    stats.cancelled_pairs += 1
                    continue
                if _mergeable_rotation(stmt, candidate):
                    angle = (candidate.angle + stmt.angle) % _TWO_PI
                    pop_at(candidate_idx)
                    if (
                        abs(angle) < _ANGLE_EPS
                        or abs(angle - _TWO_PI) < _ANGLE_EPS
                    ):
                        stats.dropped_rotations += 1
                    else:
                        stats.merged_rotations += 1
                        push(Operation(stmt.gate, stmt.qubits, angle))
                    continue
        push(stmt)

    body = [s for s in kept if s is not None]
    return Module(module.name, module.params, body)


def optimize_program(program: Program) -> "tuple[Program, OptimizeStats]":
    """Optimize every module; returns (program, stats)."""
    stats = OptimizeStats()
    modules = [optimize_module(m, stats) for m in program]
    return Program(modules, program.entry), stats
