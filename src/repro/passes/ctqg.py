"""Classical-To-Quantum-Gates (CTQG) stand-in: reversible arithmetic.

The paper's toolflow incorporates CTQG, a tool that decomposes classical
arithmetic and control constructs into reversible QASM networks
(Section 3.1), and notes that the resulting code is "highly locally
serialized" (Section 5.2). This module is our reimplementation of that
substrate: a library of reversible building blocks emitted at the
Scaffold gate level (X / CNOT / Toffoli), later lowered to Clifford+T by
the decompose pass.

All blocks are *verified* against classical semantics by the statevector
simulator in the test suite. Registers are little-endian qubit lists
(``reg[0]`` is the least significant bit).

Building blocks:

* bitwise logic: :func:`xor_into`, :func:`and_into`, :func:`not_all`,
  SHA-1's :func:`ch_into`, :func:`maj_into`, :func:`parity_into`;
* the Cuccaro ripple-carry adder (:func:`cuccaro_add`) and its
  carry-computation-only variant (:func:`compare_lt`);
* constant loading / addition (:func:`load_const`, :func:`add_const`);
* controlled and constant-operand variants used to build the schoolbook
  multiplier (:func:`multiply`) and modular adder
  (:func:`add_const_mod`) that the Shor's and Class Number generators
  rely on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.operation import Operation
from ..core.qubits import AncillaAllocator, Qubit

__all__ = [
    "xor_into",
    "and_into",
    "not_all",
    "ch_into",
    "maj_into",
    "parity_into",
    "rotl",
    "load_const",
    "cuccaro_add",
    "add_const",
    "compare_lt",
    "compare_lt_const",
    "controlled_xor",
    "controlled_add",
    "multiply",
    "add_const_mod",
]

Ops = List[Operation]


def _check_register(name: str, reg: Sequence[Qubit]) -> None:
    if len(set(reg)) != len(reg):
        raise ValueError(f"register {name} has duplicate qubits")


def _check_disjoint(a_name: str, a: Sequence[Qubit], b_name: str, b: Sequence[Qubit]) -> None:
    overlap = set(a) & set(b)
    if overlap:
        raise ValueError(
            f"registers {a_name} and {b_name} overlap: {sorted(overlap)}"
        )


# ---------------------------------------------------------------------------
# Bitwise logic
# ---------------------------------------------------------------------------


def xor_into(src: Sequence[Qubit], dst: Sequence[Qubit]) -> Ops:
    """``dst ^= src``, bitwise (transversal CNOTs)."""
    if len(src) != len(dst):
        raise ValueError("xor_into requires equal-width registers")
    _check_disjoint("src", src, "dst", dst)
    return [Operation("CNOT", (s, d)) for s, d in zip(src, dst)]


def and_into(
    x: Sequence[Qubit], y: Sequence[Qubit], dst: Sequence[Qubit]
) -> Ops:
    """``dst ^= x & y``, bitwise (transversal Toffolis)."""
    if not len(x) == len(y) == len(dst):
        raise ValueError("and_into requires equal-width registers")
    _check_disjoint("x", x, "dst", dst)
    _check_disjoint("y", y, "dst", dst)
    return [Operation("Toffoli", (a, b, d)) for a, b, d in zip(x, y, dst)]


def not_all(reg: Sequence[Qubit]) -> Ops:
    """``reg = ~reg``, bitwise (transversal X)."""
    return [Operation("X", (q,)) for q in reg]


def ch_into(
    x: Sequence[Qubit],
    y: Sequence[Qubit],
    z: Sequence[Qubit],
    dst: Sequence[Qubit],
) -> Ops:
    """SHA-1 choose: ``dst ^= (x & y) ^ (~x & z)``.

    Uses the identity ``Ch(x,y,z) = z ^ (x & (y ^ z))`` to keep the
    network to one Toffoli layer plus CNOT layers, all uncomputed except
    the contribution to ``dst``.
    """
    ops: Ops = []
    ops += xor_into(z, y)       # y ^= z          (y holds y^z)
    ops += and_into(x, y, dst)  # dst ^= x & (y^z)
    ops += xor_into(z, y)       # restore y
    ops += xor_into(z, dst)     # dst ^= z
    return ops


def maj_into(
    x: Sequence[Qubit],
    y: Sequence[Qubit],
    z: Sequence[Qubit],
    dst: Sequence[Qubit],
) -> Ops:
    """SHA-1 majority: ``dst ^= (x&y) ^ (x&z) ^ (y&z)``."""
    ops: Ops = []
    ops += and_into(x, y, dst)
    ops += and_into(x, z, dst)
    ops += and_into(y, z, dst)
    return ops


def parity_into(
    x: Sequence[Qubit],
    y: Sequence[Qubit],
    z: Sequence[Qubit],
    dst: Sequence[Qubit],
) -> Ops:
    """SHA-1 parity: ``dst ^= x ^ y ^ z``."""
    return xor_into(x, dst) + xor_into(y, dst) + xor_into(z, dst)


def rotl(reg: Sequence[Qubit], k: int) -> List[Qubit]:
    """Rotate-left by ``k`` bits: a free relabelling (no gates), exactly
    how compilers implement rotations of quantum registers."""
    n = len(reg)
    if n == 0:
        return []
    k %= n
    return list(reg[-k:]) + list(reg[:-k]) if k else list(reg)


# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------


def load_const(value: int, reg: Sequence[Qubit]) -> Ops:
    """XOR a classical constant into a (usually zeroed) register."""
    if value < 0 or value >= 2 ** len(reg):
        raise ValueError(
            f"constant {value} does not fit in {len(reg)} bits"
        )
    return [
        Operation("X", (q,)) for i, q in enumerate(reg) if (value >> i) & 1
    ]


# ---------------------------------------------------------------------------
# Cuccaro ripple-carry addition
# ---------------------------------------------------------------------------


def _maj(c: Qubit, b: Qubit, a: Qubit) -> Ops:
    return [
        Operation("CNOT", (a, b)),
        Operation("CNOT", (a, c)),
        Operation("Toffoli", (c, b, a)),
    ]


def _uma(c: Qubit, b: Qubit, a: Qubit) -> Ops:
    return [
        Operation("Toffoli", (c, b, a)),
        Operation("CNOT", (a, c)),
        Operation("CNOT", (c, b)),
    ]


def cuccaro_add(
    a: Sequence[Qubit],
    b: Sequence[Qubit],
    carry_anc: Qubit,
    carry_out: Optional[Qubit] = None,
) -> Ops:
    """Cuccaro ripple-carry adder: ``b += a`` (mod ``2**n``).

    ``carry_anc`` must start (and ends) in ``|0>``. If ``carry_out`` is
    given, it is XORed with the final carry (making the addition exact
    over ``n+1`` bits).

    Reference: Cuccaro, Draper, Kutin, Moulton, "A new quantum
    ripple-carry addition circuit" (2004) — the MAJ/UMA network.
    """
    n = len(a)
    if len(b) != n:
        raise ValueError("cuccaro_add requires equal-width registers")
    if n == 0:
        return []
    _check_register("a", a)
    _check_register("b", b)
    _check_disjoint("a", a, "b", b)
    chain: List[Qubit] = [carry_anc] + list(a)
    ops: Ops = []
    for i in range(n):
        ops += _maj(chain[i], b[i], chain[i + 1])
    if carry_out is not None:
        ops.append(Operation("CNOT", (a[-1], carry_out)))
    for i in range(n - 1, -1, -1):
        ops += _uma(chain[i], b[i], chain[i + 1])
    return ops


def add_const(
    value: int,
    b: Sequence[Qubit],
    alloc: AncillaAllocator,
    carry_out: Optional[Qubit] = None,
) -> Ops:
    """``b += value`` (mod ``2**n``) for a classical constant.

    Loads the constant into a scratch register, ripple-adds it, then
    unloads — the straightforward CTQG lowering of ``b += const``.
    """
    n = len(b)
    scratch = alloc.alloc(n)
    carry = alloc.alloc_one()
    ops = load_const(value % (2 ** n) if n else 0, scratch)
    ops += cuccaro_add(scratch, b, carry, carry_out)
    ops += load_const(value % (2 ** n) if n else 0, scratch)
    alloc.free([carry])
    alloc.free(scratch)
    return ops


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def compare_lt(
    a: Sequence[Qubit],
    b: Sequence[Qubit],
    flag: Qubit,
    carry_anc: Qubit,
) -> Ops:
    """``flag ^= (a < b)``, leaving ``a`` and ``b`` unchanged.

    Uses the identity ``a < b  <=>  carry_out(~a + b) = 1``: the MAJ
    chain of a Cuccaro adder computes the carries in place, the final
    carry is copied to ``flag``, and the chain is uncomputed.
    """
    n = len(a)
    if len(b) != n:
        raise ValueError("compare_lt requires equal-width registers")
    if n == 0:
        return []
    ops = not_all(a)
    chain: List[Qubit] = [carry_anc] + list(a)
    maj_ops: Ops = []
    for i in range(n):
        maj_ops += _maj(chain[i], b[i], chain[i + 1])
    ops += maj_ops
    ops.append(Operation("CNOT", (a[-1], flag)))
    # Uncompute the carry chain: exact inverse of the MAJ ladder (each
    # MAJ block is its own inverse read backwards gate-by-gate).
    for op in reversed(maj_ops):
        ops.append(op)
    ops += not_all(a)
    return ops


def compare_lt_const(
    a: Sequence[Qubit],
    value: int,
    flag: Qubit,
    alloc: AncillaAllocator,
) -> Ops:
    """``flag ^= (a < value)`` for a classical constant."""
    n = len(a)
    scratch = alloc.alloc(n)
    carry = alloc.alloc_one()
    ops = load_const(value % (2 ** n) if n else 0, scratch)
    ops += compare_lt(a, scratch, flag, carry)
    ops += load_const(value % (2 ** n) if n else 0, scratch)
    alloc.free([carry])
    alloc.free(scratch)
    return ops


# ---------------------------------------------------------------------------
# Controlled variants
# ---------------------------------------------------------------------------


def controlled_xor(
    ctrl: Qubit, src: Sequence[Qubit], dst: Sequence[Qubit]
) -> Ops:
    """``if ctrl: dst ^= src`` (transversal Toffolis)."""
    if len(src) != len(dst):
        raise ValueError("controlled_xor requires equal-width registers")
    return [Operation("Toffoli", (ctrl, s, d)) for s, d in zip(src, dst)]


def controlled_add(
    ctrl: Qubit,
    a: Sequence[Qubit],
    b: Sequence[Qubit],
    alloc: AncillaAllocator,
    carry_out: Optional[Qubit] = None,
) -> Ops:
    """``if ctrl: b += a`` (mod ``2**n``).

    Masks ``a`` into a scratch register under the control (so the adder
    sees either ``a`` or ``0``), adds unconditionally, then unmasks.
    """
    n = len(a)
    if len(b) != n:
        raise ValueError("controlled_add requires equal-width registers")
    scratch = alloc.alloc(n)
    carry = alloc.alloc_one()
    ops = controlled_xor(ctrl, a, scratch)
    ops += cuccaro_add(scratch, b, carry, carry_out)
    ops += controlled_xor(ctrl, a, scratch)
    alloc.free([carry])
    alloc.free(scratch)
    return ops


def multiply(
    a: Sequence[Qubit],
    b: Sequence[Qubit],
    product: Sequence[Qubit],
    alloc: AncillaAllocator,
) -> Ops:
    """Schoolbook multiplier: ``product += a * b`` (mod ``2**len(product)``).

    For each bit ``a[i]``, conditionally adds ``b << i`` into the product
    register. ``product`` must be at least as wide as ``b``.
    """
    if len(product) < len(b):
        raise ValueError("product register narrower than operand b")
    ops: Ops = []
    for i, ctrl in enumerate(a):
        window = list(product[i:])
        if not window:
            break
        # Mask b (zero-extended to the window width so carries propagate
        # across the whole remaining product) under the control bit.
        scratch = alloc.alloc(len(window))
        carry = alloc.alloc_one()
        mask = [
            Operation("Toffoli", (ctrl, b[j], scratch[j]))
            for j in range(min(len(b), len(window)))
        ]
        ops += mask
        ops += cuccaro_add(scratch, window, carry)
        ops += mask
        alloc.free([carry])
        alloc.free(scratch)
    return ops


# ---------------------------------------------------------------------------
# Modular arithmetic (Vedral-style)
# ---------------------------------------------------------------------------


def add_const_mod(
    value: int,
    reg: Sequence[Qubit],
    modulus: int,
    alloc: AncillaAllocator,
) -> Ops:
    """``reg = (reg + value) mod modulus`` for classical ``value`` and
    ``modulus``, assuming ``reg < modulus`` on entry.

    The Vedral-Barenco-Ekert construction: add the constant, compare
    with the modulus, conditionally subtract, and uncompute the
    comparison flag by comparing the result with the constant
    (``result < value  <=>  the subtraction happened``).

    Requires ``0 <= value < modulus`` and ``modulus <= 2**(n-1)`` so the
    intermediate sum fits without overflow.
    """
    n = len(reg)
    if not 0 < modulus <= 2 ** (n - 1):
        raise ValueError(
            f"modulus {modulus} needs headroom in {n}-bit register"
        )
    value %= modulus
    flag = alloc.alloc_one()
    ops: Ops = []
    # reg += value  (cannot overflow: reg < modulus, value < modulus,
    # sum < 2*modulus <= 2**n)
    ops += add_const(value, reg, alloc)
    # flag ^= (reg >= modulus)   i.e. NOT (reg < modulus)
    ops += compare_lt_const(reg, modulus, flag, alloc)
    ops.append(Operation("X", (flag,)))
    # if flag: reg -= modulus   (add 2**n - modulus)
    comp = (2 ** n - modulus) % (2 ** n)
    scratch = alloc.alloc(n)
    carry = alloc.alloc_one()
    ops += _controlled_add_const(flag, comp, reg, scratch, carry)
    alloc.free([carry])
    alloc.free(scratch)
    # Uncompute flag: after reduction, flag == (reg < value).
    ops += compare_lt_const(reg, value, flag, alloc)
    alloc.free([flag])
    return ops


def _controlled_add_const(
    ctrl: Qubit,
    value: int,
    reg: Sequence[Qubit],
    scratch: Sequence[Qubit],
    carry: Qubit,
) -> Ops:
    """``if ctrl: reg += value`` using a caller-provided scratch register
    (must be zeroed; returned zeroed)."""
    n = len(reg)
    value %= 2 ** n
    ops: Ops = [
        Operation("CNOT", (ctrl, scratch[i]))
        for i in range(n)
        if (value >> i) & 1
    ]
    ops += cuccaro_add(list(scratch), list(reg), carry)
    ops += [
        Operation("CNOT", (ctrl, scratch[i]))
        for i in range(n)
        if (value >> i) & 1
    ]
    return ops
