"""Streaming front-end adapters: lazy flatten, decompose and CTQG bodies.

The materialized pipeline runs decompose -> flatten as whole-program
rewrites, so a module with ``iterations``-heavy call sites explodes to
its expanded gate count in memory before the scheduler sees a single op.
These adapters produce the *same op sequence* lazily:

* :func:`stream_flatten` walks a module's call tree depth-first,
  composing the per-instance qubit renamings exactly as
  :func:`repro.passes.flatten.inline_call` does (formals -> actuals,
  locals -> ``"{callee}@{idx}$" `` instance prefixes, iterated calls
  replaying the identically-renamed body), so the emitted ops are
  bit-identical to flattening the module materialized;
* :func:`stream_decompose` lowers each streamed op through
  :func:`repro.passes.decompose.decompose_operation` on the fly.
  Decomposition introduces no new qubits and depends only on
  ``(gate, angle)``, so it commutes with flatten's qubit renaming —
  streaming flatten-then-decompose equals the materialized
  decompose-then-flatten order (tested in ``tests/test_opstream.py``);
* :func:`decomposed_gate_counts` computes the post-decompose expanded
  totals hierarchically (the numbers the flattening-threshold decision
  and ``total_gates`` need) without materializing anything;
* :func:`plan_flatten` reproduces :func:`repro.passes.flatten.
  flatten_program`'s decisions — which modules become leaves, and the
  percent-flattened figure — from those counts alone.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from ..core.module import Module, Program
from ..core.operation import CallSite, Operation
from ..core.opstream import GeneratorStream, OpStream
from ..core.qubits import Qubit
from .decompose import DecomposeConfig, RotationSynthesizer, decompose_operation

__all__ = [
    "stream_flatten",
    "stream_decompose",
    "leaf_stream",
    "decomposed_gate_counts",
    "call_multiplicity",
    "FlattenPlan",
    "plan_flatten",
]

_Rename = Callable[[Qubit], Qubit]


def _identity(q: Qubit) -> Qubit:
    return q


def _frame_rename(
    parent: _Rename, instance: str, mapping: Dict[Qubit, Qubit]
) -> _Rename:
    """The qubit renaming one inlined call frame applies.

    Mirrors the materialized composition: ``inline_call`` first maps a
    callee-body qubit into the *caller's* namespace (formals to the call
    site's actual arguments, locals to a ``"{instance}$"``-prefixed
    register), and the caller's own inlining later applies its renaming
    on top. Composing parent-after-frame reproduces that exactly.
    """
    cache: Dict[Qubit, Qubit] = {}

    def rename(q: Qubit) -> Qubit:
        out = cache.get(q)
        if out is None:
            caller_q = mapping.get(q)
            if caller_q is None:
                caller_q = Qubit(f"{instance}${q.register}", q.index)
            out = parent(caller_q)
            cache[q] = out
        return out

    return rename


class _Expander:
    """Depth-first lazy inliner, bit-identical to ``inline_call``.

    When ``decompose_config`` is set, the materialized pipeline being
    mirrored is decompose-*then*-flatten: every direct op in a caller
    body expands before flattening, so the ``{callee}@{idx}`` instance
    tags carry *post-decompose* statement indices. The expander
    precomputes that index table per module (prefix sums of decomposed
    op lengths, one shared per-``(gate, angle)`` length cache) without
    materializing any decomposed body.
    """

    def __init__(
        self, program: Program, decompose_config: Optional[DecomposeConfig]
    ):
        self.program = program
        self.synth = (
            decompose_config.synthesizer() if decompose_config else None
        )
        self._length_cache: Dict[Tuple[str, Optional[float]], int] = {}
        self._index_cache: Dict[str, List[int]] = {}

    def _indices(self, module: Module) -> Optional[List[int]]:
        if self.synth is None:
            return None
        table = self._index_cache.get(module.name)
        if table is None:
            table = []
            pos = 0
            for stmt in module.body:
                table.append(pos)
                if isinstance(stmt, Operation):
                    key = (stmt.gate, stmt.angle)
                    n = self._length_cache.get(key)
                    if n is None:
                        n = self._length_cache[key] = len(
                            decompose_operation(stmt, self.synth)
                        )
                    pos += n
                else:
                    pos += 1
            self._index_cache[module.name] = table
        return table

    def expand(self, module: Module, rename: _Rename) -> Iterator[Operation]:
        indices = self._indices(module)
        for idx, stmt in enumerate(module.body):
            if isinstance(stmt, Operation):
                if rename is _identity:
                    yield stmt
                else:
                    yield Operation(
                        stmt.gate,
                        tuple(rename(q) for q in stmt.qubits),
                        stmt.angle,
                    )
            else:
                callee = self.program.module(stmt.callee)
                if len(stmt.args) != len(callee.params):
                    raise ValueError(
                        f"arity mismatch inlining {stmt.callee!r}"
                    )
                inst_idx = idx if indices is None else indices[idx]
                instance = f"{stmt.callee}@{inst_idx}"
                mapping = dict(zip(callee.params, stmt.args))
                frame = _frame_rename(rename, instance, mapping)
                # Iterated calls replay the identically-renamed body:
                # the frame (and its memoized renames) is shared across
                # iterations, exactly like ``body_once * iterations``.
                for _ in range(stmt.iterations):
                    yield from self.expand(callee, frame)


def stream_flatten(
    program: Program,
    module: Optional[str] = None,
    decompose_config: Optional[DecomposeConfig] = None,
    length_hint: Optional[int] = None,
) -> OpStream:
    """Fully inline one module's call tree as a lazy op stream.

    Emits the exact op sequence ``flatten_program`` would place in the
    module's body if the module (and therefore, by the threshold
    monotonicity argument, all its transitive callees) were flattened.
    Pass ``decompose_config`` when mirroring a pipeline that decomposes
    before flattening — instance tags then use post-decompose statement
    indices (see :class:`_Expander`). The call graph is acyclic, so
    full inlining always terminates; only the call stack (call-graph
    depth) and one op are live at a time.
    """
    name = module or program.entry
    mod = program.module(name)

    def factory() -> Iterator[Operation]:
        return _Expander(program, decompose_config).expand(mod, _identity)

    return GeneratorStream(factory, length_hint=length_hint)


def stream_decompose(
    stream: OpStream,
    config: Optional[DecomposeConfig] = None,
    length_hint: Optional[int] = None,
) -> OpStream:
    """Lower a stream to QASM primitives op-by-op.

    Each upstream op expands to its (bounded-size) decomposition list
    before the next is pulled, so memory stays O(1) in the stream
    length. The synthesizer is stateless per ``(gate, angle)``, so
    replay determinism is preserved.
    """
    cfg = config or DecomposeConfig()

    def factory() -> Iterator[Operation]:
        synth = cfg.synthesizer()
        for op in stream:
            yield from decompose_operation(op, synth)

    return GeneratorStream(factory, length_hint=length_hint)


def decomposed_gate_counts(
    program: Program, config: Optional[DecomposeConfig] = None
) -> Dict[str, int]:
    """Post-decompose expanded gate count of each reachable module.

    Equals ``total_gate_counts(decompose_program(program, config))``
    without building the decomposed program: per-module direct ops are
    decomposed one at a time (their expansion length depends only on
    ``(gate, angle)``, so it is cached), and call sites multiply callee
    totals exactly as the hierarchical estimator does.
    """
    synth = (config or DecomposeConfig()).synthesizer()
    length_cache: Dict[Tuple[str, Optional[float]], int] = {}
    totals: Dict[str, int] = {}
    for name in program.topological_order():
        mod = program.module(name)
        count = 0
        for stmt in mod.body:
            if isinstance(stmt, Operation):
                key = (stmt.gate, stmt.angle)
                n = length_cache.get(key)
                if n is None:
                    n = length_cache[key] = len(
                        decompose_operation(stmt, synth)
                    )
                count += n
            else:
                count += stmt.iterations * totals[stmt.callee]
        totals[name] = count
    return totals


def call_multiplicity(program: Program, target: str) -> int:
    """How many times ``target``'s body executes per run of the entry.

    Sums ``iterations`` products over every call path from the entry —
    the number a spec's reference function must compose when verifying
    a kernel leaf against the whole-program semantics. Returns 1 when
    ``target`` is the entry itself and 0 when it is unreachable.
    """
    if target not in program:
        raise KeyError(f"no module named {target!r}")
    memo: Dict[str, int] = {target: 1}

    def visit(name: str) -> int:
        cached = memo.get(name)
        if cached is not None:
            return cached
        total = sum(
            call.iterations * visit(call.callee)
            for call in program.module(name).calls()
        )
        memo[name] = total
        return total

    return visit(program.entry)


class FlattenPlan:
    """The flattening decisions, computed without rewriting any body.

    Attributes:
        flattened: names flattened into leaves, in topological order.
        leaves: every module that is a leaf *after* flattening and still
            reachable from the entry (flattening a module orphans its
            callees, exactly as the materialized rewrite does).
        reachable: modules reachable after flattening.
        order: post-flatten topological order (callees first) over
            ``reachable``.
        percent_flattened: the Figure 5 caption quantity —
            ``100 * len(leaves) / len(reachable)``.
    """

    def __init__(self, program: Program, totals: Dict[str, int], fth: int):
        flattened: List[str] = []
        flattened_set: Set[str] = set()
        for name in program.topological_order():
            mod = program.module(name)
            if mod.is_leaf or totals[name] > fth:
                continue
            flattened.append(name)
            flattened_set.add(name)
        # Post-flatten reachability: a flattened module has no calls
        # left, so its callees drop out of the reachable set unless
        # another (unflattened) caller keeps them live.
        reachable: Set[str] = set()
        order: List[str] = []

        def visit(name: str) -> None:
            if name in reachable:
                return
            reachable.add(name)
            if name not in flattened_set:
                for callee in sorted(program.module(name).callees()):
                    visit(callee)
            order.append(name)

        visit(program.entry)
        self.flattened = flattened
        self.reachable = reachable
        self.order = order
        self.leaves = {
            name
            for name in reachable
            if name in flattened_set or program.module(name).is_leaf
        }
        self.percent_flattened = 100.0 * len(self.leaves) / len(reachable)

    def is_leaf_after(self, name: str) -> bool:
        return name in self.leaves


def plan_flatten(
    program: Program, totals: Dict[str, int], fth: int
) -> FlattenPlan:
    """Plan which modules :func:`~repro.passes.flatten.flatten_program`
    would turn into leaves under threshold ``fth``, given the expanded
    ``totals`` the decision is based on (post-decompose counts when the
    pipeline decomposes first)."""
    return FlattenPlan(program, totals, fth)


def leaf_stream(
    program: Program,
    name: str,
    decompose: bool = True,
    decompose_config: Optional[DecomposeConfig] = None,
    length_hint: Optional[int] = None,
) -> OpStream:
    """The post-pipeline body of one (possibly flattened) leaf, lazily.

    Composes :func:`stream_flatten` with :func:`stream_decompose` —
    bit-identical to the materialized decompose-then-flatten body of
    that leaf (the two orders commute; see the module docstring).
    """
    if not decompose:
        return stream_flatten(program, name, length_hint=length_hint)
    cfg = decompose_config or DecomposeConfig()
    flat = stream_flatten(program, name, decompose_config=cfg)
    return stream_decompose(flat, cfg, length_hint=length_hint)
